"""Structured JSON logging for the server.

One JSON object per line on the configured stream — machine-parseable
request/job audit trails with stable keys::

    {"ts": "2026-08-08T12:00:00.123Z", "level": "info",
     "event": "request", "request_id": "a1b2c3d4e5f6a7b8",
     "tenant": "acme", "method": "POST", "path": "/tenants/acme/batches",
     "status": 200, "duration_ms": 3.2}

The formatter serializes ``logging`` extras from a fixed allow-list so
a handler can attach context (``tenant``, ``job_id``, ...) without
free-form dict merging ever breaking the line format.
"""

from __future__ import annotations

import json
import logging
import secrets
import time
from typing import Any, TextIO

#: Extra record attributes lifted into the JSON line when present.
CONTEXT_FIELDS = (
    "event",
    "request_id",
    "tenant",
    "method",
    "path",
    "status",
    "duration_ms",
    "job_id",
    "job_type",
    "job_state",
    "batch_seq",
    "rule",
    "reason",
    "error",
)

LOGGER_NAME = "repro.server"


def get_logger() -> logging.Logger:
    """The shared ``repro.server`` logger (configured or not)."""
    return logging.getLogger(LOGGER_NAME)


def new_request_id() -> str:
    """A 64-bit random hex id, unique enough to grep a day of logs."""
    return secrets.token_hex(8)


class JsonLineFormatter(logging.Formatter):
    """``logging.Formatter`` emitting one JSON object per record."""

    def format(self, record: logging.LogRecord) -> str:
        entry: dict[str, Any] = {
            "ts": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            )
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key in CONTEXT_FIELDS:
            value = record.__dict__.get(key)
            if value is not None:
                entry[key] = value
        if record.exc_info and record.exc_info[1] is not None:
            entry["exception"] = repr(record.exc_info[1])
        return json.dumps(entry, default=str)


def configure_logging(
    stream: TextIO | None = None, level: int | str = logging.INFO
) -> logging.Logger:
    """The ``repro.server`` logger with exactly one JSON handler.

    Idempotent per stream: reconfiguring replaces the handler instead
    of stacking duplicates (tests start many servers per process).
    """
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(level)
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLineFormatter())
    logger.addHandler(handler)
    return logger
