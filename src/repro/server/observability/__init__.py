"""Observability for the dependency-checking service.

* :mod:`~repro.server.observability.logging` — structured JSON request
  and job logs with stable keys and per-request ids;
* :mod:`~repro.server.observability.metrics` — a dependency-free
  counter/gauge/histogram registry rendered in Prometheus text format
  by ``GET /metrics``, with scrape-time collectors bridging in the
  kernel layer's :class:`~repro.plan.kernels.KernelCounters`.
"""

from .logging import (
    CONTEXT_FIELDS,
    JsonLineFormatter,
    configure_logging,
    get_logger,
    new_request_id,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "CONTEXT_FIELDS",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonLineFormatter",
    "MetricsRegistry",
    "configure_logging",
    "get_logger",
    "new_request_id",
]
