"""A small, dependency-free metrics registry (Prometheus text format).

Three instrument kinds — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` — registered on a :class:`MetricsRegistry` and
rendered by :meth:`MetricsRegistry.render` in the Prometheus text
exposition format (``text/plain; version=0.0.4``), which is what the
server's ``GET /metrics`` returns.

All mutation goes through one registry lock, so request handlers on
the event loop, job threads, and the scraper never race; *collectors*
registered with :meth:`MetricsRegistry.add_collector` run at scrape
time to pull in state owned elsewhere (the kernel-layer
:class:`~repro.plan.kernels.KernelCounters` snapshot, job-queue
depths) without those layers having to push.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections.abc import Callable, Iterable, Sequence

#: Latency buckets (seconds) tuned for sub-second dependency checks.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0, 30.0,
)

LabelValues = tuple[str, ...]


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_text(names: Sequence[str], values: LabelValues) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape(v)}"' for n, v in zip(names, values, strict=True)
    )
    return "{" + inner + "}"


class _Metric:
    """Shared plumbing: name, help text, label schema, sample store."""

    kind = "untyped"

    def __init__(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(labels)
        self._lock = threading.Lock()

    def _key(self, labels: dict[str, str]) -> LabelValues:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.label_names)

    def render(self) -> list[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing sum per label combination."""

    kind = "counter"

    def __init__(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help_text, labels)
        self._values: dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_label_text(self.label_names, key)} "
            f"{_format_value(value)}"
            for key, value in items
        ]


class Gauge(_Metric):
    """A settable point-in-time value per label combination."""

    kind = "gauge"

    def __init__(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help_text, labels)
        self._values: dict[LabelValues, float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def remove(self, **labels: str) -> None:
        with self._lock:
            self._values.pop(self._key(labels), None)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_label_text(self.label_names, key)} "
            f"{_format_value(value)}"
            for key, value in items
        ]


class Histogram(_Metric):
    """Cumulative-bucket latency histogram (plus ``_sum``/``_count``).

    Also keeps the raw observations bounded-reservoir style so the
    benchmark harness can read exact p50/p99 without re-deriving them
    from buckets; the reservoir holds the most recent
    ``_RESERVOIR`` samples per label set.
    """

    kind = "histogram"
    _RESERVOIR = 4096

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labels)
        self.buckets = tuple(sorted(buckets))
        self._counts: dict[LabelValues, list[int]] = {}
        self._sums: dict[LabelValues, float] = {}
        self._totals: dict[LabelValues, int] = {}
        self._samples: dict[LabelValues, list[float]] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * len(self.buckets)
                self._counts[key] = counts
            idx = bisect_left(self.buckets, value)
            if idx < len(counts):
                counts[idx] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1
            samples = self._samples.setdefault(key, [])
            samples.append(value)
            if len(samples) > self._RESERVOIR:
                del samples[: len(samples) - self._RESERVOIR]

    def count(self, **labels: str) -> int:
        with self._lock:
            return self._totals.get(self._key(labels), 0)

    def quantile(self, q: float, **labels: str) -> float:
        """Exact quantile over the retained reservoir (0 when empty)."""
        with self._lock:
            samples = sorted(self._samples.get(self._key(labels), ()))
        if not samples:
            return 0.0
        rank = min(len(samples) - 1, max(0, round(q * (len(samples) - 1))))
        return samples[rank]

    def render(self) -> list[str]:
        out: list[str] = []
        with self._lock:
            keys = sorted(self._counts)
            for key in keys:
                running = 0
                names = (*self.label_names, "le")
                for bound, count in zip(
                    self.buckets, self._counts[key], strict=True
                ):
                    running += count
                    out.append(
                        f"{self.name}_bucket"
                        f"{_label_text(names, (*key, repr(bound)))} {running}"
                    )
                total = self._totals.get(key, 0)
                out.append(
                    f"{self.name}_bucket"
                    f"{_label_text(names, (*key, '+Inf'))} {total}"
                )
                out.append(
                    f"{self.name}_sum{_label_text(self.label_names, key)} "
                    f"{self._sums.get(key, 0.0)!r}"
                )
                out.append(
                    f"{self.name}_count"
                    f"{_label_text(self.label_names, key)} {total}"
                )
        return out


class MetricsRegistry:
    """All instruments of one server process, renderable in one pass."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Callable[[], None]] = []

    def counter(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help_text, labels))

    def gauge(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help_text, labels))

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help_text, labels, buckets))

    def _register(self, metric: _Metric) -> "_Metric":
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric) or (
                    existing.label_names != metric.label_names
                ):
                    raise ValueError(
                        f"metric {metric.name!r} re-registered with a "
                        "different type or label schema"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Run ``collector`` at every scrape, before rendering.

        Collectors pull externally owned state (kernel counters, queue
        depths) into gauges they created on this registry.
        """
        with self._lock:
            self._collectors.append(collector)

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()
        with self._lock:
            metrics = [self._metrics[k] for k in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {metric.help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"
