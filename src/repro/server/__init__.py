"""The dependency-checking service: the library as a multi-tenant API.

Layer six of the stack.  Everything below this package is a plain
synchronous library; this package puts an asyncio HTTP front on it —
tenant registration, lint-screened rule upload, changefeed batch
ingestion, a synchronous ``/check`` for small relations, background
discovery/repair jobs governed by per-request budgets, and Prometheus
metrics — using only the standard library (the ``repro[server]``
extra is intentionally empty; there is nothing to install).

Quick start::

    from repro.server import ReproApp

    app = ReproApp()
    handle = app.run_in_thread()      # ephemeral port, daemon thread
    print(handle.base_url)
    ...
    handle.stop()

or from the CLI: ``repro serve --port 8095``.
"""

from .app import ReproApp, ServerHandle
from .durability import (
    DurabilityManager,
    OverloadConfig,
    RecoveryReport,
    WriteAheadLog,
)
from .http import HttpError, Request, Response
from .jobs import Job, JobManager
from .observability import MetricsRegistry, configure_logging
from .state import Tenant, TenantRegistry

__all__ = [
    "DurabilityManager",
    "HttpError",
    "Job",
    "JobManager",
    "MetricsRegistry",
    "OverloadConfig",
    "RecoveryReport",
    "ReproApp",
    "Request",
    "Response",
    "ServerHandle",
    "Tenant",
    "TenantRegistry",
    "WriteAheadLog",
    "configure_logging",
]
