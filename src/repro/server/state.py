"""Multi-tenant state: one isolated changefeed universe per tenant.

A :class:`Tenant` owns a declared schema, the current relation, the
lint-screened rule set, and (once rules are uploaded) an
:class:`~repro.incremental.detector.IncrementalDetector` consuming that
tenant's row batches.  Tenants share nothing — the registry lock only
guards the name table, and each tenant has its own writer lock (on top
of the detector's own single-writer lock) so batch ingestion for tenant
A never blocks tenant B.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..incremental import IncrementalDetector
from ..relation import Attribute, AttributeType, Relation, Schema
from ..rules_io import RuleEntry
from .http import HttpError

_TENANT_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

_TYPE_NAMES = {t.value: t for t in AttributeType}


def parse_schema(payload: Any) -> Schema:
    """Parse the registration schema declaration.

    Accepted shapes::

        {"attributes": ["city", {"name": "price", "type": "numerical"}]}

    (a bare list is also accepted in place of the object).  Types come
    from the survey's categorization: ``categorical`` (default),
    ``text``, ``numerical``.
    """
    if isinstance(payload, dict):
        payload = payload.get("attributes")
    if not isinstance(payload, list) or not payload:
        raise HttpError(
            400,
            "schema must be a non-empty list of attributes "
            '(strings or {"name", "type"} objects)',
        )
    attrs: list[Attribute] = []
    for spec in payload:
        if isinstance(spec, str):
            attrs.append(Attribute(spec))
            continue
        if not isinstance(spec, dict) or "name" not in spec:
            raise HttpError(
                400, f"bad attribute declaration: {spec!r}"
            )
        type_name = spec.get("type", "categorical")
        dtype = _TYPE_NAMES.get(type_name)
        if dtype is None:
            raise HttpError(
                400,
                f"unknown attribute type {type_name!r} for "
                f"{spec['name']!r}; expected one of "
                f"{sorted(_TYPE_NAMES)}",
            )
        attrs.append(Attribute(str(spec["name"]), dtype))
    try:
        return Schema(attrs)
    except KeyError as exc:  # SchemaError subclasses KeyError
        raise HttpError(400, f"bad schema: {exc.args[0]}")


@dataclass
class Tenant:
    """One tenant's universe: schema, relation, rules, changefeed."""

    tenant_id: str
    schema: Schema
    relation: Relation
    created_at: float = field(default_factory=time.time)
    #: Uploaded rule entries (with source metadata), post-lint.
    rule_entries: list[RuleEntry] = field(default_factory=list)
    #: Rule label -> reason for rules the static screen skipped.
    skipped_rules: dict[str, str] = field(default_factory=dict)
    #: The raw accepted upload document (replayed verbatim on recovery).
    rules_payload: Any = None
    detector: IncrementalDetector | None = None
    #: Serializes rule uploads and batch ingestion for this tenant.
    lock: threading.Lock = field(default_factory=threading.Lock)
    batches_ingested: int = 0
    rows_ingested: int = 0

    def require_detector(self) -> IncrementalDetector:
        if self.detector is None:
            raise HttpError(
                409,
                f"tenant {self.tenant_id!r} has no rule set; "
                "PUT /tenants/{tenant}/rules first",
            )
        return self.detector

    def describe(self) -> dict[str, Any]:
        current = (
            self.detector.relation if self.detector else self.relation
        )
        return {
            "tenant": self.tenant_id,
            "created_at": self.created_at,
            "attributes": [
                {"name": a.name, "type": a.dtype.value}
                for a in self.schema
            ],
            "rows": len(current),
            "rules": len(self.rule_entries),
            "skipped_rules": dict(self.skipped_rules),
            "batches_ingested": self.batches_ingested,
            "rows_ingested": self.rows_ingested,
            "violations": (
                len(self.detector.violations()) if self.detector else None
            ),
        }


class TenantRegistry:
    """The name table of live tenants."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tenants: dict[str, Tenant] = {}

    def register(
        self, tenant_id: str, schema: Schema, rows: list[Any] | None = None
    ) -> Tenant:
        if not _TENANT_ID.match(tenant_id):
            raise HttpError(
                400,
                f"bad tenant id {tenant_id!r}: expected 1-64 chars of "
                "[A-Za-z0-9_.-], starting alphanumeric",
            )
        relation = Relation.empty(schema)
        if rows:
            relation = relation.extend(_coerce_rows(schema, rows))
        tenant = Tenant(tenant_id=tenant_id, schema=schema, relation=relation)
        with self._lock:
            if tenant_id in self._tenants:
                raise HttpError(
                    409, f"tenant {tenant_id!r} is already registered"
                )
            self._tenants[tenant_id] = tenant
        return tenant

    def restore(self, tenant: Tenant) -> None:
        """Install a recovered tenant, bypassing the HTTP-shaped checks.

        Only the durability layer calls this (the tenant id was
        validated when first registered); a live tenant with the same
        id is never silently replaced.
        """
        with self._lock:
            if tenant.tenant_id in self._tenants:
                raise ValueError(
                    f"tenant {tenant.tenant_id!r} is already live"
                )
            self._tenants[tenant.tenant_id] = tenant

    def get(self, tenant_id: str) -> Tenant:
        with self._lock:
            tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise HttpError(404, f"unknown tenant {tenant_id!r}")
        return tenant

    def remove(self, tenant_id: str) -> Tenant:
        with self._lock:
            tenant = self._tenants.pop(tenant_id, None)
        if tenant is None:
            raise HttpError(404, f"unknown tenant {tenant_id!r}")
        return tenant

    def list(self) -> list[Tenant]:
        with self._lock:
            return sorted(
                self._tenants.values(), key=lambda t: t.tenant_id
            )


def _coerce_rows(schema: Schema, rows: list[Any]) -> list[tuple[Any, ...]]:
    """Positional lists or ``{name: value}`` objects -> schema-order tuples."""
    names = schema.names()
    out: list[tuple[Any, ...]] = []
    for i, row in enumerate(rows):
        if isinstance(row, dict):
            stray = set(row) - set(names)
            if stray:
                raise HttpError(
                    400,
                    f"row {i} mentions unknown attributes "
                    f"{sorted(stray)}",
                )
            out.append(tuple(row.get(n) for n in names))
        elif isinstance(row, list):
            if len(row) != len(names):
                raise HttpError(
                    400,
                    f"row {i} has {len(row)} values for "
                    f"{len(names)} attributes",
                )
            out.append(tuple(row))
        else:
            raise HttpError(
                400,
                f"row {i} must be a list or an object, got "
                f"{type(row).__name__}",
            )
    return out
