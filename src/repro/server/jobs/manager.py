"""Background jobs: discovery and repair as submit → poll → result.

Discovery (lattice/predicate-space search) and repair (fixpoint
iteration) are the worst-case-exponential end of the family tree —
far too slow for a request/response cycle.  The :class:`JobManager`
runs them on a thread pool, governed end to end by the **request
budget**: each job stage derives a child budget
(:meth:`repro.runtime.budget.Budget.child`) from the job's
request-scoped budget, so a deadline sent as an HTTP header bounds the
whole pipeline while the parent's counters keep the cross-stage total.

Honest partials are job *state*, not an error: a stage that exhausts
its budget surfaces ``partial: true`` with the per-stage reason on the
polled job, alongside whatever the engine completed.
:class:`~repro.runtime.errors.EngineFault` is reported (job state
``failed`` with the fault site) — never swallowed.

Cancellation is cooperative and reuses the budget machinery: every job
runs under *some* budget (an unbounded one when the request set no
caps), and ``cancel`` marks it exhausted with reason ``"cancelled"`` —
the next engine checkpoint raises, the engines unwind through their
usual partial-result paths, and the job lands in state ``cancelled``
with whatever partial output existed.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections.abc import Callable
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from ...analysis import lint_rules
from ...profiler import profile_relation
from ...quality.detection import Detector
from ...quality.repair import repair_fds
from ...core.categorical.fd import FD
from ...runtime.budget import Budget, governed
from ...runtime.errors import BudgetExhausted, EngineFault
from ..http import HttpError
from ..state import Tenant

#: Job states, in lifecycle order.
QUEUED = "queued"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_TYPES = ("discovery", "repair")


@dataclass
class JobStage:
    """One budget-governed stage of a job pipeline."""

    name: str
    state: str = QUEUED
    exhausted: str = ""
    duration_s: float = 0.0

    def describe(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "state": self.state,
            "duration_s": round(self.duration_s, 6),
        }
        if self.exhausted:
            out["exhausted"] = self.exhausted
        return out


@dataclass
class Job:
    """One background job and everything a poll should see."""

    job_id: str
    tenant_id: str
    job_type: str
    params: dict[str, Any]
    budget: Budget
    state: str = QUEUED
    stages: list[JobStage] = field(default_factory=list)
    result: dict[str, Any] | None = None
    error: str | None = None
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    future: Future | None = field(default=None, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def partial(self) -> bool:
        return any(s.exhausted for s in self.stages)

    def describe(self, include_result: bool = True) -> dict[str, Any]:
        with self._lock:
            out: dict[str, Any] = {
                "job": self.job_id,
                "tenant": self.tenant_id,
                "type": self.job_type,
                "state": self.state,
                "partial": self.partial,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "stages": [s.describe() for s in self.stages],
                "budget": {
                    "candidates": self.budget.candidates,
                    "pairs": self.budget.pairs,
                    "exhausted": self.budget.exhausted,
                },
            }
            if include_result and self.result is not None:
                out["result"] = self.result
            if self.error is not None:
                out["error"] = self.error
        return out


class JobManager:
    """Submit/poll/cancel over a bounded worker pool."""

    def __init__(self, max_workers: int = 4) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-job"
        )
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        #: Called on every terminal transition: (job) -> None.
        self.on_finish: Callable[[Job], None] | None = None
        self._runners: dict[str, Callable[[Job, Tenant], dict[str, Any]]] = {
            "discovery": self._run_discovery,
            "repair": self._run_repair,
        }

    # -- lifecycle -----------------------------------------------------

    def submit(
        self,
        tenant: Tenant,
        job_type: str,
        params: dict[str, Any],
        budget: Budget | None,
    ) -> Job:
        runner = self._runners.get(job_type)
        if runner is None:
            raise HttpError(
                400,
                f"unknown job type {job_type!r}; expected one of "
                f"{sorted(self._runners)}",
            )
        job = Job(
            job_id=uuid.uuid4().hex[:16],
            tenant_id=tenant.tenant_id,
            job_type=job_type,
            params=params,
            # Every job is governed, even when the request set no caps:
            # an unbounded budget still counts work and gives
            # cancellation a checkpoint to trip.
            budget=budget if budget is not None else Budget(),
        )
        with self._lock:
            self._jobs[job.job_id] = job
        job.future = self._executor.submit(self._run, job, tenant, runner)
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        return job

    def list(self, tenant_id: str | None = None) -> list[Job]:
        with self._lock:
            jobs = list(self._jobs.values())
        if tenant_id is not None:
            jobs = [j for j in jobs if j.tenant_id == tenant_id]
        return sorted(jobs, key=lambda j: j.created_at)

    def cancel(self, job_id: str) -> Job:
        """Cooperative cancel: queued jobs unschedule, running jobs
        exhaust their budget at the next engine checkpoint."""
        job = self.get(job_id)
        with job._lock:
            if job.state in (SUCCEEDED, FAILED, CANCELLED):
                return job
            if job.future is not None and job.future.cancel():
                job.state = CANCELLED
                job.finished_at = time.time()
                self._notify(job)
                return job
            # Already running: poison the budget; the run wrapper maps
            # the resulting "cancelled" exhaustion to the final state.
            job.budget.exhausted = "cancelled"
        return job

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)

    def _notify(self, job: Job) -> None:
        if self.on_finish is not None:
            try:
                self.on_finish(job)
            # staticcheck: disable=SC008 — observer callback isolation:
            # a faulty on_finish hook must not kill the worker thread.
            except Exception:  # pragma: no cover - observer must not kill
                pass

    # -- execution -----------------------------------------------------

    def _run(
        self,
        job: Job,
        tenant: Tenant,
        runner: Callable[[Job, Tenant], dict[str, Any]],
    ) -> None:
        with job._lock:
            if job.state == CANCELLED:  # cancelled while queued, raced
                return
            job.state = RUNNING
            job.started_at = time.time()
        job.budget.start()
        try:
            result = runner(job, tenant)
        except EngineFault as exc:
            # Quarantined fault: reported on the job, never swallowed.
            with job._lock:
                job.state = FAILED
                job.error = f"engine fault: {exc}" + (
                    f" (site: {exc.site})" if exc.site else ""
                )
                job.finished_at = time.time()
            self._notify(job)
            return
        # staticcheck: disable=SC008 — job boundary: the error (typed
        # name included, BudgetExhausted too) is surfaced on the failed
        # job record, never silently dropped.
        except Exception as exc:  # noqa: BLE001 - job boundary
            with job._lock:
                job.state = FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished_at = time.time()
            self._notify(job)
            return
        with job._lock:
            job.result = result
            job.state = (
                CANCELLED if job.budget.exhausted == "cancelled"
                else SUCCEEDED
            )
            job.finished_at = time.time()
        self._notify(job)

    def _stage(
        self,
        job: Job,
        name: str,
        deadline_fraction: float,
        fn: Callable[[Budget], Any],
    ) -> Any:
        """Run one pipeline stage under a child of the job budget.

        ``deadline_fraction`` splits the *remaining* request deadline
        (full remainder for the last stage); candidate/pair headroom is
        whatever the parent has left, so the stages together can never
        overrun the request caps.
        """
        remaining = job.budget.remaining_s()
        deadline = (
            None if remaining is None else remaining * deadline_fraction
        )
        child = job.budget.child(deadline_s=deadline)
        stage = JobStage(name=name, state=RUNNING)
        with job._lock:
            job.stages.append(stage)
        started = time.perf_counter()
        try:
            result = fn(child)
        finally:
            with job._lock:
                stage.duration_s = time.perf_counter() - started
                stage.exhausted = child.exhausted or (
                    "cancelled"
                    if job.budget.exhausted == "cancelled"
                    else ""
                )
                stage.state = SUCCEEDED if not stage.exhausted else (
                    CANCELLED if stage.exhausted == "cancelled"
                    else "exhausted"
                )
        return result

    # -- job kinds -----------------------------------------------------

    def _run_discovery(self, job: Job, tenant: Tenant) -> dict[str, Any]:
        """Profile the tenant's current relation, then minimize.

        Stage 1 runs the multi-pass discovery toolbox; stage 2 runs the
        static cross-rule analysis over the discovered set, yielding
        the implied/duplicate-free minimal cover.  Each stage gets its
        own child budget.
        """
        detector = tenant.detector
        relation = detector.relation if detector else tenant.relation
        params = job.params
        report = self._stage(
            job,
            "discover",
            0.8,
            lambda child: profile_relation(
                relation,
                epsilon=float(params.get("epsilon", 0.05)),
                max_lhs_size=int(params.get("max_lhs", 2)),
                budget=child,
            ),
        )
        discovered = [r.rule for r in report.rules]

        def minimize(child: Budget) -> dict[int, str]:
            try:
                with governed(child):
                    return lint_rules(discovered).skippable
            except BudgetExhausted:
                return {}

        skippable = self._stage(job, "minimize", 1.0, minimize)
        rules_payload = [
            {
                "category": r.category,
                "rule": str(r.rule),
                "kind": r.rule.kind,
                "violations": r.violations,
                "redundant": skippable.get(i),
            }
            for i, r in enumerate(report.rules)
        ]
        return {
            "rows_profiled": len(relation),
            "rules": rules_payload,
            "minimal_cover_size": len(report.rules) - len(skippable),
            "notes": report.notes,
        }

    def _run_repair(self, job: Job, tenant: Tenant) -> dict[str, Any]:
        """Propose FD repairs for the tenant relation, then verify.

        Returns the proposed cell edits without mutating tenant state —
        repairs are advisory; applying them is the client's call (a
        future batch through the changefeed).
        """
        detector = tenant.detector
        relation = detector.relation if detector else tenant.relation
        fds = [
            e.dependency
            for e in tenant.rule_entries
            if isinstance(e.dependency, FD)
        ]
        if not fds:
            raise HttpError(
                409,
                f"tenant {tenant.tenant_id!r} has no FD rules; the "
                "repair engine needs at least one",
            )
        repaired, log = self._stage(
            job,
            "repair",
            0.8,
            lambda child: repair_fds(relation, fds, budget=child),
        )

        def verify(child: Budget) -> int | None:
            with governed(child):
                try:
                    return len(Detector(fds).detect(repaired).violations)
                except BudgetExhausted:
                    return None

        remaining = self._stage(job, "verify", 1.0, verify)
        return {
            "rows": len(relation),
            "edits": [
                {
                    "row": e.index,
                    "attribute": e.attribute,
                    "old": e.old_value,
                    "new": e.new_value,
                }
                for e in log.edits[: int(job.params.get("max_edits", 200))]
            ],
            "edit_count": len(log.edits),
            "quarantined_rows": list(log.quarantined),
            "repair_complete": log.complete,
            "repair_exhausted": log.exhausted,
            "remaining_violations": remaining,
        }
