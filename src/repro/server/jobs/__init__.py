"""Background job execution for discovery and repair pipelines."""

from .manager import (
    CANCELLED,
    FAILED,
    JOB_TYPES,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    Job,
    JobManager,
    JobStage,
)

__all__ = [
    "CANCELLED",
    "FAILED",
    "JOB_TYPES",
    "QUEUED",
    "RUNNING",
    "SUCCEEDED",
    "Job",
    "JobManager",
    "JobStage",
]
