"""FDs over uncertain relations (Section 5.1, after Sarma et al. [81]).

An :class:`UncertainRelation` gives each tuple a set of alternative
values per attribute (an x-tuple), representing a set of *possible
worlds* (ordinary relations).  Two FD semantics from [81]:

* **horizontal FDs** — the FD must hold in *every* possible world
  (certain satisfaction);
* **vertical FDs** — the FD must hold in *some* possible world
  (possible satisfaction).

Both collapse to ordinary FD satisfaction when no tuple carries
uncertainty, which is the consistency property the paper highlights —
asserted in our tests.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

from ..core.categorical import FD
from ..relation.relation import Relation
from ..relation.schema import Schema

Alternatives = tuple


class UncertainRelation:
    """A relation whose cells may hold several alternative values.

    ``rows`` entries are sequences whose items are either plain values
    (certain) or tuples/lists/sets of alternatives (uncertain).
    """

    def __init__(
        self,
        schema: Schema | Sequence[str],
        rows: Iterable[Sequence[object]],
    ) -> None:
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.schema = schema
        self._rows: list[tuple[tuple[object, ...], ...]] = []
        for row in rows:
            norm: list[tuple[object, ...]] = []
            for cell in row:
                if isinstance(cell, (tuple, list, set, frozenset)):
                    alts = tuple(sorted(cell, key=repr))
                    if not alts:
                        raise ValueError("empty alternative set in cell")
                    norm.append(alts)
                else:
                    norm.append((cell,))
            if len(norm) != len(schema):
                raise ValueError("row width does not match schema")
            self._rows.append(tuple(norm))

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def is_certain(self) -> bool:
        """No cell has more than one alternative."""
        return all(
            len(cell) == 1 for row in self._rows for cell in row
        )

    def world_count(self) -> int:
        count = 1
        for row in self._rows:
            for cell in row:
                count *= len(cell)
        return count

    def possible_worlds(self, limit: int | None = 4096) -> Iterable[Relation]:
        """Enumerate possible worlds (cross product of alternatives)."""
        cells = [cell for row in self._rows for cell in row]
        width = len(self.schema)
        produced = 0
        for choice in itertools.product(*cells):
            rows = [
                choice[k * width: (k + 1) * width]
                for k in range(len(self._rows))
            ]
            yield Relation.from_rows(self.schema, rows)
            produced += 1
            if limit is not None and produced >= limit:
                return

    def certain_world(self) -> Relation:
        """The unique world of a certain relation (raises otherwise)."""
        if not self.is_certain:
            raise ValueError("relation has uncertain cells")
        return Relation.from_rows(
            self.schema, [tuple(c[0] for c in row) for row in self._rows]
        )


def holds_horizontally(
    urel: UncertainRelation, dep: FD, limit: int | None = 4096
) -> bool:
    """Horizontal FD: holds in *every* possible world."""
    return all(dep.holds(w) for w in urel.possible_worlds(limit))


def holds_vertically(
    urel: UncertainRelation, dep: FD, limit: int | None = 4096
) -> bool:
    """Vertical FD: holds in *some* possible world."""
    return any(dep.holds(w) for w in urel.possible_worlds(limit))
