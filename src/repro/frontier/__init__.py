"""Future-direction pilots (Section 5): uncertain, graph, temporal data.

Working but deliberately small implementations of the survey's three
future-work directions; marked experimental in the documentation.
"""

from .uncertain import (
    UncertainRelation,
    holds_horizontally,
    holds_vertically,
)
from .graph import NeighborhoodConstraint, repair_labels, violating_edges
from .temporal import SpeedConstraint, repair_distance, screen_repair

__all__ = [
    "UncertainRelation",
    "holds_horizontally",
    "holds_vertically",
    "NeighborhoodConstraint",
    "violating_edges",
    "repair_labels",
    "SpeedConstraint",
    "screen_repair",
    "repair_distance",
]
