"""Neighborhood constraints on labeled graphs (Section 5.2).

Song et al. [93, 94] repair vertex labels under *neighborhood
constraints*: a set of label pairs allowed to be adjacent.  This pilot
implements the core loop over ``networkx`` graphs:

* :class:`NeighborhoodConstraint` — the allowed label-adjacency set;
* :func:`violating_edges` — edges whose endpoint labels are not
  allowed to be adjacent;
* :func:`repair_labels` — greedy label repair: relabel the vertex
  involved in the most violations to the label minimizing them.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable

import networkx as nx

Label = Hashable


class NeighborhoodConstraint:
    """Allowed adjacencies between vertex labels (undirected)."""

    def __init__(self, allowed_pairs: Iterable[tuple[Label, Label]]) -> None:
        self._allowed: set[frozenset[Label]] = {
            frozenset(p) for p in allowed_pairs
        }
        if not self._allowed:
            raise ValueError("constraint needs at least one allowed pair")

    def allows(self, a: Label, b: Label) -> bool:
        return frozenset((a, b)) in self._allowed

    def labels(self) -> set[Label]:
        out: set[Label] = set()
        for pair in self._allowed:
            out |= set(pair)
        return out

    @classmethod
    def from_specification(cls, graph: nx.Graph, label_attr: str = "label"):
        """Extract the constraint from a (clean) specification graph.

        The workflow-specification idea of [103]: allowed adjacencies
        are exactly those observed in the specification.
        """
        pairs = {
            (graph.nodes[u][label_attr], graph.nodes[v][label_attr])
            for u, v in graph.edges
        }
        return cls(pairs)


def violating_edges(
    graph: nx.Graph,
    constraint: NeighborhoodConstraint,
    label_attr: str = "label",
) -> list[tuple]:
    """Edges whose endpoint labels are not allowed adjacent."""
    return [
        (u, v)
        for u, v in graph.edges
        if not constraint.allows(
            graph.nodes[u][label_attr], graph.nodes[v][label_attr]
        )
    ]


def repair_labels(
    graph: nx.Graph,
    constraint: NeighborhoodConstraint,
    label_attr: str = "label",
    max_rounds: int | None = None,
) -> tuple[nx.Graph, list[tuple]]:
    """Greedy vertex-label repair under a neighborhood constraint.

    Each round relabels the vertex with the most violating incident
    edges to the candidate label minimizing its violations (ties to
    the lexicographically smallest for determinism).  Returns the
    repaired copy and the (vertex, old, new) relabel log.
    """
    g = graph.copy()
    log: list[tuple] = []
    labels = sorted(constraint.labels(), key=repr)
    rounds = max_rounds if max_rounds is not None else g.number_of_nodes()
    for __ in range(rounds):
        bad = violating_edges(g, constraint, label_attr)
        if not bad:
            break
        degree: Counter = Counter()
        for u, v in bad:
            degree[u] += 1
            degree[v] += 1
        victim, __count = max(
            degree.items(), key=lambda kv: (kv[1], repr(kv[0]))
        )
        old = g.nodes[victim][label_attr]
        best_label = old
        best_bad = sum(1 for e in bad if victim in e)
        for candidate in labels:
            if candidate == old:
                continue
            g.nodes[victim][label_attr] = candidate
            count = sum(
                1
                for nbr in g.neighbors(victim)
                if not constraint.allows(
                    candidate, g.nodes[nbr][label_attr]
                )
            )
            if count < best_bad:
                best_bad = count
                best_label = candidate
        g.nodes[victim][label_attr] = best_label
        if best_label == old:
            break  # no improving relabel exists; stop rather than loop
        log.append((victim, old, best_label))
    return g, log
