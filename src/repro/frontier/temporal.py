"""Speed constraints on time series (Section 5.3, after SCREEN [97]).

A :class:`SpeedConstraint` bounds the rate of change between
consecutive points of a time series: ``s_min <= (x_j - x_i)/(t_j -
t_i) <= s_max`` within a window.  SCREEN repairs a dirty series to
satisfy the constraint with minimum change; this pilot implements the
streaming median-candidate repair over a sliding window.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

Point = tuple[float, float]  # (timestamp, value)


@dataclass(frozen=True)
class SpeedConstraint:
    """Rate-of-change bounds with a window (in time units)."""

    s_min: float
    s_max: float
    window: float = float("inf")

    def __post_init__(self) -> None:
        if self.s_min > self.s_max:
            raise ValueError("s_min must be <= s_max")
        if self.window <= 0:
            raise ValueError("window must be positive")

    def violations(self, series: Sequence[Point]) -> list[tuple[int, int]]:
        """Index pairs (i, j), i < j within the window, breaking the bounds."""
        out: list[tuple[int, int]] = []
        for i in range(len(series)):
            ti, xi = series[i]
            for j in range(i + 1, len(series)):
                tj, xj = series[j]
                if tj - ti > self.window:
                    break
                if tj == ti:
                    continue
                speed = (xj - xi) / (tj - ti)
                if not self.s_min <= speed <= self.s_max:
                    out.append((i, j))
        return out

    def satisfied(self, series: Sequence[Point]) -> bool:
        return not self.violations(series)


def screen_repair(
    series: Sequence[Point], constraint: SpeedConstraint
) -> list[Point]:
    """SCREEN-style streaming repair under a speed constraint.

    Processes points in time order; each point's repaired value is the
    median of (its observed value, the minimum feasible value, the
    maximum feasible value) w.r.t. the already-repaired points inside
    the window — the online median-based fix of [97], which changes
    clean points not at all and pulls spikes to the feasible boundary.
    """
    if not series:
        return []
    ordered = sorted(series, key=lambda p: p[0])
    repaired: list[Point] = [ordered[0]]
    for k in range(1, len(ordered)):
        tk, xk = ordered[k]
        lower = -float("inf")
        upper = float("inf")
        for ti, xi in repaired:
            dt = tk - ti
            if dt <= 0 or dt > constraint.window:
                continue
            lower = max(lower, xi + constraint.s_min * dt)
            upper = min(upper, xi + constraint.s_max * dt)
        if lower > upper:
            # Conflicting bounds from earlier points (should not occur
            # when the prefix satisfies the constraint); keep midpoint.
            fixed = (lower + upper) / 2
        else:
            fixed = sorted((xk, lower, upper))[1]  # median of three
        repaired.append((tk, fixed))
    return repaired


def repair_distance(
    original: Sequence[Point], repaired: Sequence[Point]
) -> float:
    """Total absolute value change of a repair (its cost)."""
    return sum(
        abs(a[1] - b[1]) for a, b in zip(original, repaired, strict=True)
    )
