"""The paper's worked-example relations, transcribed exactly.

Tables 1, 5, 6 and 7 of the survey (plus the Section 3.4.1 dataspace)
are the datasets every definition is illustrated on; all the numbers in
the paper's Sections 2-4 are computed from these instances, and the
test suite asserts each of them literally.

Tuple subscripts in the paper are 1-based (t1..t8); tuple indices here
are 0-based (t1 = index 0).
"""

from __future__ import annotations

from ..relation import Attribute, AttributeType, Relation, Schema

_C = AttributeType.CATEGORICAL
_T = AttributeType.TEXT
_N = AttributeType.NUMERICAL


def hotel_r1() -> Relation:
    """Table 1: relation r1 of Hotel.

    fd1 = address -> region is violated by (t3, t4) [true error], by
    (t5, t6) [format variety, not an error], and *not* by (t7, t8)
    [true error the FD misses since the addresses differ].
    """
    schema = Schema(
        [
            Attribute("name", _T),
            Attribute("address", _T),
            Attribute("region", _T),
            Attribute("star", _N),
            Attribute("price", _N),
        ]
    )
    rows = [
        ("New Center", "No.5, Central Park", "New York", 3, 299),
        ("New Center Hotel", "No.5, Central Park", "New York", 3, 299),
        ("St. Regis Hotel", "#3, West Lake Rd.", "Boston", 3, 319),
        ("St. Regis", "#3, West Lake Rd.", "Chicago, MA", 3, 319),
        ("West Wood Hotel", "Fifth Avenue, 61st Street", "Chicago", 4, 499),
        ("West Wood", "Fifth Avenue, 61st Street", "Chicago, IL", 4, 499),
        ("Christina Hotel", "No.7, West Lake Rd.", "Boston, MA", 5, 599),
        ("Christina", "#7, West Lake Rd.", "San Francisco", 5, 0),
    ]
    return Relation.from_rows(schema, rows)


def hotel_r5() -> Relation:
    """Table 5: relation r5 where address -> region *almost* holds.

    The paper computes on this instance: SFD strength 2/3 (address ->
    region) and 1/2 (name -> address); PFD probability 3/4 and 1/2;
    AFD g3 error 1/4 and 1/2; NUD max fanout 2; cfd1 and ecfd1 hold;
    mvd1: address, rate ->> region.
    """
    schema = Schema(
        [
            Attribute("name", _T),
            Attribute("address", _T),
            Attribute("region", _T),
            Attribute("rate", _N),
        ]
    )
    rows = [
        ("Hyatt", "175 North Jackson Street", "Jackson", 230),
        ("Hyatt", "175 North Jackson Street", "Jackson", 250),
        ("Hyatt", "6030 Gateway Boulevard E", "El Paso", 189),
        ("Hyatt", "6030 Gateway Boulevard E", "El Paso, TX", 189),
    ]
    return Relation.from_rows(schema, rows)


def hotel_r6() -> Relation:
    """Table 6: relation r6 with tuples from heterogeneous sources.

    The paper computes on this instance: mfd1 (name, region ->^500
    price); ned1 (name^1 address^5 -> street^5, t2/t6 edit distances 0,
    1, 3); dd1 and dd2; pac1 confidence 8/11; ffd1 conflict between t1
    and t2; md1 (street≈, region≈ -> zip⇌).
    """
    schema = Schema(
        [
            Attribute("source", _C),
            Attribute("name", _T),
            Attribute("street", _T),
            Attribute("address", _T),
            Attribute("region", _T),
            Attribute("zip", _C),
            Attribute("price", _N),
            Attribute("tax", _N),
        ]
    )
    rows = [
        ("s1", "NC", "CPark", "#5, Central Park", "New York", "10041", 299, 29),
        ("s2", "NC", "12th St.", "#2 Ave, 12th St.", "San Jose", "95102", 300, 20),
        ("s1", "Regis", "CPark", "#9, Central Park", "New York", "10041", 319, 31),
        ("s2", "Chris", "61st St.", "#5 Ave, 61st St.", "Chicago", "60601", 499, 49),
        ("s2", "WD", "12th St.", "#6 Ave, 12th St.", "San Jose", "95102", 399, 27),
        ("s1", "NC", "12th Str", "#2 Aven, 12th St.", "San Jose", "95102", 300, 20),
    ]
    return Relation.from_rows(schema, rows)


def hotel_r7() -> Relation:
    """Table 7: relation r7 with multiple numerical attributes.

    The paper computes on this instance: ofd1 (subtotal ->^P taxes);
    od1 (nights^<= -> avg/night^>=); dc1 (subtotal/taxes order); sd1
    (nights ->_[100,200] subtotal, gaps 180/170/160); sd2
    (nights ->_(-inf,0] avg/night).
    """
    schema = Schema(
        [
            Attribute("nights", _N),
            Attribute("avg/night", _N),
            Attribute("subtotal", _N),
            Attribute("taxes", _N),
        ]
    )
    rows = [
        (1, 190, 190, 38),
        (2, 185, 370, 74),
        (3, 180, 540, 108),
        (4, 175, 700, 140),
    ]
    return Relation.from_rows(schema, rows)


def dataspace_person() -> Relation:
    """The Section 3.4.1 dataspace: 3 tuples with synonym attributes.

    Heterogeneous sources use region vs city and addr vs post; missing
    attributes are None.  cd1: θ(region, city) -> θ(addr, post).
    """
    schema = Schema(
        [
            Attribute("name", _T),
            Attribute("region", _T),
            Attribute("city", _T),
            Attribute("addr", _T),
            Attribute("post", _T),
        ]
    )
    rows = [
        ("Alice", "Petersburg", None, "#7 T Avenue", None),
        ("Alice", None, "St Petersburg", None, "#7 T Avenue"),
        ("Alex", "St Petersburg", None, None, "No 7 T Ave"),
    ]
    return Relation.from_rows(schema, rows)


#: Convenient name -> constructor map for the bench harness.
PAPER_RELATIONS = {
    "r1 (Table 1)": hotel_r1,
    "r5 (Table 5)": hotel_r5,
    "r6 (Table 6)": hotel_r6,
    "r7 (Table 7)": hotel_r7,
    "dataspace (Section 3.4.1)": dataspace_person,
}
