"""Synthetic workload generators with known ground truth.

The survey motivates each extension with a data pathology: dirty values
violating clean FDs (veracity), format variety across sources,
monotone numerical series with glitches.  These generators produce such
workloads *with the injected ground truth recorded*, so detection and
repair quality (precision/recall) can be scored — the Perf-3 experiment
of DESIGN.md.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from collections.abc import Sequence

from ..relation import Attribute, AttributeType, Relation, Schema

_C = AttributeType.CATEGORICAL
_T = AttributeType.TEXT
_N = AttributeType.NUMERICAL


@dataclass
class DirtyDataset:
    """A generated relation plus the ground truth of what was injected."""

    relation: Relation
    clean: Relation
    #: Indices of tuples whose values were corrupted (true errors).
    error_tuples: set[int] = field(default_factory=set)
    #: Indices of tuples rewritten into a variant format (not errors).
    variant_tuples: set[int] = field(default_factory=set)
    #: Pairs of indices that are true duplicates of one entity.
    duplicate_pairs: set[tuple[int, int]] = field(default_factory=set)
    #: The FDs that hold on the clean data.
    true_fds: list = field(default_factory=list)


def _random_word(rng: random.Random, length: int = 8) -> str:
    return "".join(rng.choices(string.ascii_lowercase, k=length))


def fd_workload(
    n_rows: int = 200,
    n_keys: int = 20,
    error_rate: float = 0.05,
    seed: int = 0,
) -> DirtyDataset:
    """Categorical data where ``code -> city, state`` holds, then dirtied.

    Each key maps to one (city, state); ``error_rate`` of the tuples get
    a wrong city — the classic FD-violation workload of Section 2.
    """
    from ..core.categorical import FD

    rng = random.Random(seed)
    schema = Schema(
        [
            Attribute("code", _C),
            Attribute("city", _C),
            Attribute("state", _C),
            Attribute("payload", _C),
        ]
    )
    keys = [f"K{k:04d}" for k in range(n_keys)]
    cities = {k: _random_word(rng).title() for k in keys}
    states = {k: _random_word(rng, 2).upper() for k in keys}
    clean_rows = []
    for __ in range(n_rows):
        k = rng.choice(keys)
        clean_rows.append((k, cities[k], states[k], _random_word(rng, 5)))
    clean = Relation.from_rows(schema, clean_rows)

    dirty_rows = [list(r) for r in clean_rows]
    errors: set[int] = set()
    for i in range(n_rows):
        if rng.random() < error_rate:
            wrong = rng.choice(
                [c for c in cities.values() if c != dirty_rows[i][1]]
            )
            dirty_rows[i][1] = wrong
            errors.add(i)
    return DirtyDataset(
        relation=Relation.from_rows(schema, dirty_rows),
        clean=clean,
        error_tuples=errors,
        true_fds=[FD("code", "city"), FD("code", "state")],
    )


def heterogeneous_workload(
    n_entities: int = 40,
    records_per_entity: int = 3,
    variant_rate: float = 0.4,
    error_rate: float = 0.05,
    seed: int = 0,
) -> DirtyDataset:
    """The Section 1.2 motivation, synthesized at scale.

    Entities (hotels) appear in several records.  With probability
    ``variant_rate`` a record's city is rendered in a variant format
    ("Chicago, IL" style — *not* an error); with probability
    ``error_rate`` the city is truly wrong (an error).  FDs flag the
    variants (false positives); similarity-based rules should not.
    """
    rng = random.Random(seed)
    schema = Schema(
        [
            Attribute("name", _T),
            Attribute("address", _T),
            Attribute("city", _T),
            Attribute("price", _N),
        ]
    )
    state_codes = ["IL", "MA", "NY", "CA", "TX", "WA"]
    entities = []
    for e in range(n_entities):
        city = _random_word(rng, 7).title()
        entities.append(
            {
                "name": f"{_random_word(rng, 6).title()} Hotel",
                "address": f"No.{rng.randrange(1, 99)}, "
                f"{_random_word(rng, 6).title()} St.",
                "city": city,
                "state": rng.choice(state_codes),
                "price": rng.randrange(80, 600),
            }
        )

    clean_rows: list[tuple] = []
    dirty_rows: list[tuple] = []
    variants: set[int] = set()
    errors: set[int] = set()
    duplicates: set[tuple[int, int]] = set()
    entity_rows: dict[int, list[int]] = {}
    idx = 0
    for e, ent in enumerate(entities):
        for __ in range(records_per_entity):
            clean_city = ent["city"]
            city = clean_city
            name = ent["name"]
            roll = rng.random()
            if roll < error_rate:
                other = rng.choice(
                    [x for x in entities if x["city"] != clean_city]
                )
                city = other["city"]
                errors.add(idx)
            elif roll < error_rate + variant_rate:
                city = f"{clean_city}, {ent['state']}"
                # Name also drops the suffix in variant records, as in
                # Table 1's "New Center" vs "New Center Hotel".
                name = name.replace(" Hotel", "")
                variants.add(idx)
            clean_rows.append(
                (ent["name"], ent["address"], clean_city, ent["price"])
            )
            dirty_rows.append((name, ent["address"], city, ent["price"]))
            entity_rows.setdefault(e, []).append(idx)
            idx += 1
    for rows in entity_rows.values():
        for a_pos, a in enumerate(rows):
            for b in rows[a_pos + 1:]:
                duplicates.add((a, b))

    from ..core.categorical import FD

    return DirtyDataset(
        relation=Relation.from_rows(schema, dirty_rows),
        clean=Relation.from_rows(schema, clean_rows),
        error_tuples=errors,
        variant_tuples=variants,
        duplicate_pairs=duplicates,
        true_fds=[FD("address", "city")],
    )


def ordered_workload(
    n_rows: int = 100,
    glitch_rate: float = 0.05,
    slope: float = 15.0,
    noise: float = 2.0,
    seed: int = 0,
) -> DirtyDataset:
    """Numerical data where ``t -> value`` increases steadily, with glitches.

    The clean series increases by ``slope ± noise`` per step (an SD with
    a tight gap interval holds); glitched tuples get a large negative
    jump, violating the OD/SD — the Section 4 workload.
    """
    rng = random.Random(seed)
    schema = Schema(
        [
            Attribute("t", _N),
            Attribute("value", _N),
            Attribute("cost", _N),
        ]
    )
    clean_rows: list[tuple] = []
    value = 100.0
    for k in range(n_rows):
        value += slope + rng.uniform(-noise, noise)
        clean_rows.append((k, round(value, 2), round(value * 0.1, 2)))
    dirty_rows = [list(r) for r in clean_rows]
    errors: set[int] = set()
    for i in range(1, n_rows):
        if rng.random() < glitch_rate:
            dirty_rows[i][1] = round(dirty_rows[i][1] - 10 * slope, 2)
            errors.add(i)
    return DirtyDataset(
        relation=Relation.from_rows(schema, dirty_rows),
        clean=Relation.from_rows(schema, clean_rows),
        error_tuples=errors,
    )


def dataspace_workload(
    n_entities: int = 60,
    seed: int = 0,
) -> Relation:
    """A two-source dataspace with synonym attributes (Section 3.4).

    Each entity appears once per source: source 1 fills region/addr,
    source 2 fills city/post with light format variants (one appended
    character).  Distinct random city stems keep cross-entity string
    distances large, so tight θ thresholds separate entities cleanly.
    """
    import string as _string

    rng = random.Random(seed)
    schema = Schema(
        [
            Attribute("name", _T),
            Attribute("region", _T),
            Attribute("city", _T),
            Attribute("addr", _T),
            Attribute("post", _T),
        ]
    )
    rows = []
    seen: set[str] = set()
    for e in range(n_entities):
        while True:
            stem = "".join(rng.choices(_string.ascii_lowercase, k=8))
            if stem not in seen:
                seen.add(stem)
                break
        city = stem.title()
        addr = f"no {e} {stem} street"
        rows.append((f"p{e}", city, None, addr, None))
        rows.append((f"p{e}", None, city + "s", None, addr + "."))
    return Relation.from_rows(schema, rows)


def multisource_workload(
    n_sources: int = 4,
    rows_per_source: int = 50,
    n_keys: int = 10,
    error_rates: Sequence[float] | None = None,
    seed: int = 0,
) -> list[DirtyDataset]:
    """Several sources over one schema with per-source dirtiness.

    The pay-as-you-go PFD setting of [104]: sources share the true
    FD ``code -> city, state`` but differ in quality.  Default error
    rates grow with the source index, so merged-probability discovery
    can pinpoint the low-quality source.
    """
    if error_rates is None:
        error_rates = [0.02 * k for k in range(n_sources)]
    if len(error_rates) != n_sources:
        raise ValueError("need one error rate per source")
    rng = random.Random(seed)
    schema = Schema(
        [
            Attribute("code", _C),
            Attribute("city", _C),
            Attribute("state", _C),
        ]
    )
    # One shared ground-truth mapping across all sources.
    keys = [f"K{k:04d}" for k in range(n_keys)]
    cities = {k: _random_word(rng).title() for k in keys}
    states = {k: _random_word(rng, 2).upper() for k in keys}

    out: list[DirtyDataset] = []
    for rate in error_rates:
        clean_rows = []
        for __ in range(rows_per_source):
            k = rng.choice(keys)
            clean_rows.append((k, cities[k], states[k]))
        dirty_rows = [list(r) for r in clean_rows]
        errors: set[int] = set()
        for i in range(rows_per_source):
            if rng.random() < rate:
                wrong = rng.choice(
                    [c for c in cities.values() if c != dirty_rows[i][1]]
                )
                dirty_rows[i][1] = wrong
                errors.add(i)
        from ..core.categorical import FD

        out.append(
            DirtyDataset(
                relation=Relation.from_rows(schema, dirty_rows),
                clean=Relation.from_rows(schema, clean_rows),
                error_tuples=errors,
                true_fds=[FD("code", "city"), FD("code", "state")],
            )
        )
    return out


def random_relation(
    n_rows: int,
    n_cols: int,
    domain_size: int = 4,
    seed: int = 0,
    numerical: bool = False,
) -> Relation:
    """A small random relation for property-based edge verification.

    Small domains make FD/MVD (non-)satisfaction likely in both
    directions, exercising both branches of equivalence checks.
    """
    rng = random.Random(seed)
    dtype = _N if numerical else _C
    schema = Schema([Attribute(f"A{c}", dtype) for c in range(n_cols)])
    rows = [
        tuple(rng.randrange(domain_size) for __ in range(n_cols))
        for __ in range(n_rows)
    ]
    return Relation.from_rows(schema, rows)
