"""Datasets: the paper's worked-example tables and synthetic workloads."""

from .paper import (
    PAPER_RELATIONS,
    dataspace_person,
    hotel_r1,
    hotel_r5,
    hotel_r6,
    hotel_r7,
)
from .generators import (
    DirtyDataset,
    dataspace_workload,
    multisource_workload,
    fd_workload,
    heterogeneous_workload,
    ordered_workload,
    random_relation,
)

__all__ = [
    "hotel_r1",
    "hotel_r5",
    "hotel_r6",
    "hotel_r7",
    "dataspace_person",
    "PAPER_RELATIONS",
    "DirtyDataset",
    "dataspace_workload",
    "multisource_workload",
    "fd_workload",
    "heterogeneous_workload",
    "ordered_workload",
    "random_relation",
]
