"""Fuzzy resemblance relations for fuzzy functional dependencies (FFDs).

Section 3.6 defines, per attribute domain, a fuzzy relation
``EQUAL mu_EQ(a, b) in [0, 1]`` expressing how "equal" two domain values
are, then lifts it to attribute sets by taking the minimum.  This module
provides the resemblance constructors the paper uses in its worked
example:

* :func:`crisp_equal` — 1 if equal else 0 (recovers classical FDs,
  Section 3.6.2);
* :func:`reciprocal_equal` — ``1 / (1 + beta * |a - b|)`` for numeric
  domains (the Table 6 ffd1 example with beta = 1 for price, 10 for tax);
* :func:`scaled_similarity` — wrap any Metric's similarity as a
  resemblance.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from .base import Metric

Value = Any
Resemblance = Callable[[Value, Value], float]


def crisp_equal(a: Value, b: Value) -> float:
    """Classical equality as a fuzzy relation: mu in {0, 1}."""
    return 1.0 if a == b else 0.0


def reciprocal_equal(beta: float = 1.0) -> Resemblance:
    """``mu_EQ(a, b) = 1 / (1 + beta * |a - b|)`` on numeric domains.

    Larger ``beta`` makes the relation stricter (values must be closer
    to count as "equal").  This is exactly the resemblance of the paper's
    ffd1 example over price (beta=1) and tax (beta=10).
    """
    if beta < 0:
        raise ValueError(f"beta must be non-negative, got {beta}")

    def mu(a: Value, b: Value) -> float:
        return 1.0 / (1.0 + beta * abs(float(a) - float(b)))

    return mu


def scaled_similarity(metric: Metric) -> Resemblance:
    """Use a metric's similarity (in [0, 1]) as a resemblance relation."""

    def mu(a: Value, b: Value) -> float:
        return metric.similarity(a, b)

    return mu


def validate_resemblance(
    mu: Resemblance, samples: list[Value], *, tolerance: float = 1e-9
) -> list[str]:
    """Check mu is reflexive (mu(a,a)=1), symmetric, and within [0, 1]."""
    problems: list[str] = []
    for a in samples:
        if abs(mu(a, a) - 1.0) > tolerance:
            problems.append(f"mu({a!r},{a!r}) != 1")
    for i, a in enumerate(samples):
        for b in samples[i + 1:]:
            v, w = mu(a, b), mu(b, a)
            if not -tolerance <= v <= 1 + tolerance:
                problems.append(f"mu({a!r},{b!r}) = {v} outside [0,1]")
            if abs(v - w) > tolerance:
                problems.append(f"mu({a!r},{b!r}) != mu({b!r},{a!r})")
    return problems
