"""Metric and similarity protocol for heterogeneous-data dependencies.

Section 3 of the survey attaches a distance metric ``d_A`` to each
attribute, required to satisfy non-negativity, identity of
indiscernibles, and symmetry (triangle inequality holds for the string
metrics shipped here but is not required by the definitions).

Two dual views are used by different notations:

* **distance** (DDs, MFDs, NEDs as normalized in the paper): smaller is
  closer; thresholds are upper bounds ``<= alpha``;
* **similarity** (MDs, the original NED formulation): larger is closer;
  thresholds are lower bounds ``>= alpha``.

:class:`Metric` carries both, with ``similarity`` derived from distance
when only one is given.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any, Protocol, runtime_checkable

Value = Any
DistanceFn = Callable[[Value, Value], float]


@runtime_checkable
class SupportsDistance(Protocol):
    """Anything exposing ``distance(a, b) -> float``."""

    def distance(self, a: Value, b: Value) -> float: ...


class Metric:
    """A named distance function over an attribute domain.

    ``None`` handling follows the convention used in constraint checking:
    the distance between two ``None`` values is 0 (indiscernible), and
    the distance between ``None`` and any concrete value is ``inf``
    (never similar) — so missing data neither fabricates nor masks
    similarity-based violations.
    """

    __slots__ = ("name", "_distance", "_similarity")

    def __init__(
        self,
        name: str,
        distance: DistanceFn,
        similarity: DistanceFn | None = None,
    ) -> None:
        self.name = name
        self._distance = distance
        self._similarity = similarity

    def distance(self, a: Value, b: Value) -> float:
        if a is None and b is None:
            return 0.0
        if a is None or b is None:
            return float("inf")
        d = self._distance(a, b)
        if d < 0:
            raise ValueError(
                f"metric {self.name!r} returned negative distance {d!r}"
            )
        return d

    def similarity(self, a: Value, b: Value) -> float:
        """Similarity in [0, 1]; defaults to ``1 / (1 + distance)``."""
        if a is None and b is None:
            return 1.0
        if a is None or b is None:
            return 0.0
        if self._similarity is not None:
            return self._similarity(a, b)
        return 1.0 / (1.0 + self.distance(a, b))

    def within(self, a: Value, b: Value, threshold: float) -> bool:
        """True iff ``distance(a, b) <= threshold``."""
        return self.distance(a, b) <= threshold

    def __call__(self, a: Value, b: Value) -> float:
        return self.distance(a, b)

    def __repr__(self) -> str:
        return f"Metric({self.name!r})"

    def __reduce__(self):
        # The shipped metrics are module-level singletons whose distance
        # functions are lambdas — unpicklable as-is, which would bar
        # every metric-bearing dependency from the parallel executor.
        # A built-in singleton pickles by *name* and resolves back to
        # the same object; custom instances use default pickling (and
        # picklability then depends on their functions, as usual).
        try:
            if _builtin_metric(self.name) is self:
                return (_builtin_metric, (self.name,))
        # staticcheck: disable=SC008 — pickling fallback: resolution
        # failure just defers to default pickling; no budget runs here.
        except Exception:
            pass
        return super().__reduce__()


def _builtin_metric(name: str) -> "Metric":
    """Resolve a shipped metric singleton by name (pickle helper)."""
    from . import fuzzy, numeric, string

    for mod in (numeric, string, fuzzy):
        for obj in vars(mod).values():
            if isinstance(obj, Metric) and obj.name == name:
                return obj
    raise LookupError(f"no built-in metric named {name!r}")


def check_metric_axioms(
    metric: Metric, samples: list[Value], *, tolerance: float = 1e-9
) -> list[str]:
    """Check non-negativity / identity / symmetry on sample values.

    Returns a list of human-readable violations (empty = all good).
    Used by tests and by the registry's self-check.
    """
    problems: list[str] = []
    for a in samples:
        if abs(metric.distance(a, a)) > tolerance:
            problems.append(f"d({a!r}, {a!r}) != 0")
    for i, a in enumerate(samples):
        for b in samples[i + 1:]:
            d_ab = metric.distance(a, b)
            d_ba = metric.distance(b, a)
            if d_ab < -tolerance:
                problems.append(f"d({a!r}, {b!r}) < 0")
            if abs(d_ab - d_ba) > tolerance:
                problems.append(f"d({a!r},{b!r}) != d({b!r},{a!r})")
    return problems
