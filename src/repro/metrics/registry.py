"""A per-attribute metric registry.

Dependencies with metric semantics (MFDs, NEDs, DDs, CDs, PACs, MDs)
need to know *which* metric applies to *which* attribute.  The
:class:`MetricRegistry` binds attribute names to metrics, with
type-aware defaults: numerical attributes fall back to absolute
difference, everything else to edit distance — matching the conventions
of the paper's examples.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..relation.schema import Attribute, AttributeType, Schema
from .base import Metric
from .numeric import ABS_DIFF
from .string import EDIT_DISTANCE


class MetricRegistry:
    """Maps attribute names to metrics, with sensible defaults."""

    def __init__(
        self,
        overrides: Mapping[str, Metric] | None = None,
        *,
        default_text: Metric = EDIT_DISTANCE,
        default_numeric: Metric = ABS_DIFF,
    ) -> None:
        self._overrides = dict(overrides or {})
        self._default_text = default_text
        self._default_numeric = default_numeric

    def bind(self, attribute: Attribute | str, metric: Metric) -> "MetricRegistry":
        """Return a new registry with one extra binding."""
        name = attribute.name if isinstance(attribute, Attribute) else attribute
        merged = dict(self._overrides)
        merged[name] = metric
        return MetricRegistry(
            merged,
            default_text=self._default_text,
            default_numeric=self._default_numeric,
        )

    def metric_for(self, attribute: Attribute | str) -> Metric:
        """The metric bound to ``attribute`` (or the type default)."""
        if isinstance(attribute, Attribute):
            if attribute.name in self._overrides:
                return self._overrides[attribute.name]
            if attribute.dtype is AttributeType.NUMERICAL:
                return self._default_numeric
            return self._default_text
        if attribute in self._overrides:
            return self._overrides[attribute]
        return self._default_text

    def for_schema(self, schema: Schema) -> dict[str, Metric]:
        """Resolve a metric for every attribute of ``schema``."""
        return {a.name: self.metric_for(a) for a in schema}

    def bound_names(self) -> Iterable[str]:
        return tuple(self._overrides)


DEFAULT_REGISTRY = MetricRegistry()
