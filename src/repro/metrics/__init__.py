"""Distance/similarity metrics for heterogeneous-data dependencies."""

from .base import Metric, SupportsDistance, check_metric_axioms
from .string import (
    DAMERAU_DISTANCE,
    EDIT_DISTANCE,
    JACCARD_METRIC,
    JARO_WINKLER_METRIC,
    QGRAM_METRIC,
    damerau_levenshtein,
    jaccard,
    jaccard_distance,
    jaro,
    jaro_winkler,
    levenshtein,
    qgram_distance,
    qgrams,
)
from .numeric import (
    ABS_DIFF,
    DISCRETE,
    REL_DIFF,
    absolute_difference,
    discrete,
    relative_difference,
)
from .fuzzy import (
    crisp_equal,
    reciprocal_equal,
    scaled_similarity,
    validate_resemblance,
)
from .registry import DEFAULT_REGISTRY, MetricRegistry

__all__ = [
    "Metric",
    "SupportsDistance",
    "check_metric_axioms",
    "EDIT_DISTANCE",
    "DAMERAU_DISTANCE",
    "JACCARD_METRIC",
    "JARO_WINKLER_METRIC",
    "QGRAM_METRIC",
    "levenshtein",
    "damerau_levenshtein",
    "jaccard",
    "jaccard_distance",
    "jaro",
    "jaro_winkler",
    "qgrams",
    "qgram_distance",
    "ABS_DIFF",
    "REL_DIFF",
    "DISCRETE",
    "absolute_difference",
    "relative_difference",
    "discrete",
    "crisp_equal",
    "reciprocal_equal",
    "scaled_similarity",
    "validate_resemblance",
    "MetricRegistry",
    "DEFAULT_REGISTRY",
]
