"""String distance/similarity metrics (edit distance family, token sets).

The survey's heterogeneous-data dependencies (Section 3) adopt string
similarity "such as edit distance (see [74] for a survey)".  We ship the
standard toolbox:

* :func:`levenshtein` — unit-cost insert/delete/substitute edit distance
  (the default used in the paper's Table 6 worked examples);
* :func:`damerau_levenshtein` — adds adjacent transposition;
* :func:`jaccard` — token-set similarity;
* :func:`qgram_distance` — q-gram profile L1 distance;
* :func:`jaro_winkler` — similarity favouring common prefixes (record
  matching practice for MDs).

All distances are implemented with plain dynamic programming and an
early-exit bound where that helps (``levenshtein(..., bound=...)``).
"""

from __future__ import annotations

from collections import Counter

from .base import Metric


def levenshtein(a: str, b: str, bound: int | None = None) -> int:
    """Unit-cost edit distance between ``a`` and ``b``.

    With ``bound`` given, returns ``bound + 1`` as soon as the true
    distance provably exceeds ``bound`` (useful for threshold checks in
    DD/MD evaluation, where the threshold is known in advance).
    """
    if a == b:
        return 0
    if len(a) > len(b):
        a, b = b, a
    if bound is not None and len(b) - len(a) > bound:
        return bound + 1
    previous = list(range(len(a) + 1))
    for j, cb in enumerate(b, start=1):
        current = [j]
        best = j
        for i, ca in enumerate(a, start=1):
            cost = 0 if ca == cb else 1
            value = min(
                previous[i] + 1,        # delete
                current[i - 1] + 1,     # insert
                previous[i - 1] + cost,  # substitute
            )
            current.append(value)
            if value < best:
                best = value
        if bound is not None and best > bound:
            return bound + 1
        previous = current
    return previous[-1]


def damerau_levenshtein(a: str, b: str) -> int:
    """Edit distance with adjacent transpositions (restricted Damerau)."""
    if a == b:
        return 0
    rows = len(a) + 1
    cols = len(b) + 1
    dist = [[0] * cols for __ in range(rows)]
    for i in range(rows):
        dist[i][0] = i
    for j in range(cols):
        dist[0][j] = j
    for i in range(1, rows):
        for j in range(1, cols):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            dist[i][j] = min(
                dist[i - 1][j] + 1,
                dist[i][j - 1] + 1,
                dist[i - 1][j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                dist[i][j] = min(dist[i][j], dist[i - 2][j - 2] + 1)
    return dist[-1][-1]


def jaccard(a: str, b: str) -> float:
    """Jaccard similarity of whitespace token sets, in [0, 1]."""
    ta, tb = set(a.split()), set(b.split())
    if not ta and not tb:
        return 1.0
    return len(ta & tb) / len(ta | tb)


def jaccard_distance(a: str, b: str) -> float:
    """1 - Jaccard similarity."""
    return 1.0 - jaccard(a, b)


def qgrams(s: str, q: int = 2) -> Counter:
    """Multiset of q-grams of ``s``, padded with ``#``/``$`` sentinels."""
    padded = "#" * (q - 1) + s + "$" * (q - 1)
    return Counter(padded[i: i + q] for i in range(len(padded) - q + 1))


def qgram_distance(a: str, b: str, q: int = 2) -> int:
    """L1 distance between q-gram profiles (a cheap edit-distance bound)."""
    pa, pb = qgrams(a, q), qgrams(b, q)
    keys = set(pa) | set(pb)
    return sum(abs(pa[k] - pb[k]) for k in keys)


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0.0
    window = max(la, lb) // 2 - 1
    window = max(window, 0)
    match_a = [False] * la
    match_b = [False] * lb
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(lb, i + window + 1)
        for j in range(lo, hi):
            if not match_b[j] and b[j] == ca:
                match_a[i] = True
                match_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    sa = [ca for i, ca in enumerate(a) if match_a[i]]
    sb = [cb for j, cb in enumerate(b) if match_b[j]]
    transpositions = sum(x != y for x, y in zip(sa, sb, strict=True)) // 2
    m = matches
    return (m / la + m / lb + (m - transpositions) / m) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity, boosting up to 4 common prefix chars."""
    base = jaro(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4], strict=False):
        if ca != cb:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


# -- packaged metrics -------------------------------------------------------

EDIT_DISTANCE = Metric(
    "edit_distance",
    lambda a, b: float(levenshtein(str(a), str(b))),
)

DAMERAU_DISTANCE = Metric(
    "damerau_levenshtein",
    lambda a, b: float(damerau_levenshtein(str(a), str(b))),
)

JACCARD_METRIC = Metric(
    "jaccard",
    lambda a, b: jaccard_distance(str(a), str(b)),
    similarity=lambda a, b: jaccard(str(a), str(b)),
)

QGRAM_METRIC = Metric(
    "qgram",
    lambda a, b: float(qgram_distance(str(a), str(b))),
)

JARO_WINKLER_METRIC = Metric(
    "jaro_winkler",
    lambda a, b: 1.0 - jaro_winkler(str(a), str(b)),
    similarity=lambda a, b: jaro_winkler(str(a), str(b)),
)
