"""Numeric distance metrics.

Section 3.3.1: "the metric on a numerical attribute can be the absolute
value of difference, i.e., d_A(a, b) = |a - b|" — that is
:data:`ABS_DIFF`, the workhorse of DDs/PACs/MFDs over prices, taxes and
rates in the paper's examples.  A relative-difference variant and an
exact-equality metric (distance 0/1) round out the toolbox.
"""

from __future__ import annotations

from .base import Metric


def absolute_difference(a: float, b: float) -> float:
    """``|a - b|``."""
    return abs(float(a) - float(b))


def relative_difference(a: float, b: float) -> float:
    """``|a - b| / max(|a|, |b|)`` with 0 when both are 0."""
    a, b = float(a), float(b)
    denom = max(abs(a), abs(b))
    if denom == 0:
        return 0.0
    return abs(a - b) / denom


def discrete(a: object, b: object) -> float:
    """The discrete metric: 0 if equal, else 1.

    Under this metric every similarity-based dependency degenerates to
    its equality-based special case — the mechanism behind several of
    the family tree's "FDs are special X" embeddings.
    """
    return 0.0 if a == b else 1.0


ABS_DIFF = Metric("abs_diff", absolute_difference)
REL_DIFF = Metric("rel_diff", relative_difference)
DISCRETE = Metric("discrete", discrete)
