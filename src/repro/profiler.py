"""One-call data profiling: discover rules, report violations.

The survey's practical pitch ("guides users to select proper data
dependencies with sufficient expressive power and reasonable discovery
cost") condensed into a single entry point: hand
:func:`profile_relation` a relation (or the CLI a CSV) and receive a
structured report —

* exact and approximate FDs (TANE);
* soft FDs / column correlations (CORDS);
* constant CFDs (CFDMiner);
* order dependencies and fitted sequential dependencies on the
  numerical columns;
* per-rule violation counts against the data itself.

The report is a plain dataclass so applications can consume it, plus a
``render()`` for terminals; :mod:`repro.cli` wraps it for the shell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from .core.base import Dependency
from .discovery import (
    cords,
    discover_constant_cfds,
    discover_pairwise_ods,
    discover_sds,
    tane,
)
from .relation.partition_cache import cache_for
from .relation.relation import Relation
from .runtime.budget import Budget, checkpoint, governed, resolve_budget
from .runtime.errors import BudgetExhausted


@dataclass
class RuleReport:
    """One discovered rule with its evidence on the profiled data."""

    rule: Dependency
    category: str
    violations: int

    def render(self) -> str:
        status = "holds" if self.violations == 0 else (
            f"{self.violations} violations"
        )
        return f"[{self.category}] {self.rule}  ({status})"


@dataclass
class ProfileReport:
    """Everything :func:`profile_relation` found."""

    relation: Relation
    rules: list[RuleReport] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def by_category(self) -> dict[str, list[RuleReport]]:
        out: dict[str, list[RuleReport]] = {}
        for r in self.rules:
            out.setdefault(r.category, []).append(r)
        return out

    def render(self, max_per_category: int = 10) -> str:
        lines = [
            f"profiled {len(self.relation)} tuples x "
            f"{len(self.relation.schema)} attributes "
            f"({', '.join(self.relation.schema.names())})",
        ]
        for category, rules in self.by_category().items():
            lines.append(f"\n{category} — {len(rules)} found:")
            for r in rules[:max_per_category]:
                lines.append(f"  {r.render()}")
            if len(rules) > max_per_category:
                lines.append(
                    f"  ... and {len(rules) - max_per_category} more"
                )
        if self.notes:
            lines.append("")
            lines.extend(f"note: {n}" for n in self.notes)
        return "\n".join(lines)


def profile_relation(
    relation: Relation,
    *,
    epsilon: float = 0.05,
    max_lhs_size: int = 2,
    sfd_strength: float = 0.9,
    cfd_min_support: int = 3,
    max_rows_for_pairwise: int = 2000,
    budget: Budget | None = None,
) -> ProfileReport:
    """Profile a relation with the survey's discovery toolbox.

    ``epsilon`` controls the AFD pass; FDs come from the exact pass.
    Pairwise-quadratic passes are skipped (with a note) past
    ``max_rows_for_pairwise`` tuples.

    ``budget`` governs the *whole* multi-pass run ambiently: each
    discovery pass inherits it, returns whatever it found when it runs
    out, and the report gains a note naming the partial passes —
    profiling under a deadline degrades to fewer rules, not an error.
    """
    from .plan import COUNTERS

    report = ProfileReport(relation)
    if len(relation) == 0:
        report.notes.append("empty relation: nothing to profile")
        return report
    kernel_examined = COUNTERS.pairs_examined
    kernel_total = COUNTERS.pairs_total

    def add(category: str, deps, result=None) -> None:
        stats = getattr(result if result is not None else deps, "stats", None)
        if stats is not None and not stats.complete:
            report.notes.append(
                f"{category}: partial — budget exhausted "
                f"({stats.exhausted})"
            )
        for dep in deps:
            checkpoint()
            count = len(dep.violations(relation))
            report.rules.append(RuleReport(dep, category, count))

    budget = resolve_budget(budget)
    with governed(budget):
        try:
            # Exact FDs.
            exact = tane(relation, max_lhs_size=max_lhs_size)
            add("exact FDs (TANE)", exact)

            # Approximate FDs, minus those already exact.
            if epsilon > 0:
                exact_strs = {str(d) for d in exact}
                approx_result = tane(
                    relation, max_lhs_size=max_lhs_size, epsilon=epsilon
                )
                approx = [
                    d
                    for d in approx_result
                    if f"{', '.join(d.lhs)} -> {', '.join(d.rhs)}"
                    not in exact_strs
                ]
                add(
                    f"approximate FDs (g3 <= {epsilon:g})",
                    approx,
                    result=approx_result,
                )

            # Soft FDs / correlations from a sample.
            soft = cords(relation, strength_threshold=sfd_strength)
            exact_pairs = {
                (d.lhs, d.rhs) for d in exact if len(d.lhs) == 1
            }
            add(
                f"soft FDs (CORDS, strength >= {sfd_strength:g})",
                [d for d in soft if (d.lhs, d.rhs) not in exact_pairs],
            )

            # Constant CFDs.
            add(
                f"constant CFDs (support >= {cfd_min_support})",
                discover_constant_cfds(
                    relation, min_support=cfd_min_support, max_lhs_size=1
                ),
            )

            # Order and sequential rules on numerical columns.
            if len(relation) <= max_rows_for_pairwise:
                add("order dependencies", discover_pairwise_ods(relation))
            else:
                report.notes.append(
                    f"skipped OD discovery (> {max_rows_for_pairwise} rows)"
                )
            add(
                "sequential dependencies (fitted gaps)",
                discover_sds(relation),
            )
        except BudgetExhausted as exc:
            report.notes.append(
                f"budget exhausted ({exc.reason}): later discovery "
                "passes skipped; the report is partial"
            )

    # Pairwise rule evaluation runs through the compiled plan kernels;
    # surface how much of the O(n²) pair space they skipped.
    examined = COUNTERS.pairs_examined - kernel_examined
    total = COUNTERS.pairs_total - kernel_total
    if total > 0:
        pruned = 1.0 - min(1.0, examined / total)
        report.notes.append(
            f"plan kernels: examined {examined} of {total} candidate "
            f"pairs ({pruned:.0%} pruned)"
        )

    # Both TANE passes, CFDMiner, and the per-rule violation counts all
    # share the relation-level partition cache; surface its effect.
    cache = cache_for(relation)
    if cache.stats.hits:
        report.notes.append(
            f"partition cache: {cache.stats.hits} hits / "
            f"{cache.stats.misses} builds across discovery passes"
        )

    return report
