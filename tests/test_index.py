"""Unit tests for inverted/sorted indexes."""

import pytest

from repro.relation import InvertedIndex, Relation, SortedIndex, build_indexes


@pytest.fixture
def rel():
    return Relation.from_rows(
        ["name", "price"],
        [("a", 10), ("b", 30), ("a", 20), ("c", None), ("b", 15)],
    )


class TestInvertedIndex:
    def test_lookup(self, rel):
        idx = InvertedIndex(rel, "name")
        assert idx.lookup("a") == (0, 2)
        assert idx.lookup("zzz") == ()

    def test_frequency_and_mode(self, rel):
        idx = InvertedIndex(rel, "name")
        assert idx.frequency("b") == 2
        mode, count = idx.most_frequent()
        assert (mode, count) in {("a", 2), ("b", 2)}

    def test_len_is_distinct_values(self, rel):
        assert len(InvertedIndex(rel, "name")) == 3

    def test_mode_of_empty_raises(self):
        idx = InvertedIndex(Relation.empty(["a"]), "a")
        with pytest.raises(ValueError):
            idx.most_frequent()


class TestSortedIndex:
    def test_excludes_missing(self, rel):
        idx = SortedIndex(rel, "price")
        assert len(idx) == 4
        assert idx.missing == (3,)

    def test_in_range(self, rel):
        idx = SortedIndex(rel, "price")
        assert set(idx.in_range(10, 20)) == {0, 2, 4}

    def test_within(self, rel):
        idx = SortedIndex(rel, "price")
        assert set(idx.within(15, 5)) == {0, 2, 4}

    def test_ordered(self, rel):
        idx = SortedIndex(rel, "price")
        assert idx.ordered_values() == (10, 15, 20, 30)
        assert idx.ordered_indices() == (0, 4, 2, 1)

    def test_gaps(self, rel):
        idx = SortedIndex(rel, "price")
        assert idx.gaps() == [5, 5, 10]


def test_build_indexes_all_columns(rel):
    idxs = build_indexes(rel)
    assert set(idxs) == {"name", "price"}
    assert idxs["name"].lookup("c") == (3,)
