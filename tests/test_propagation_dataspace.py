"""Tests for CFD view propagation and dataspace query evaluation."""

import pytest

from repro.core import CFD, SimilarityFunction, CD
from repro.datasets import dataspace_person, random_relation
from repro.quality import (
    cd_accelerated_search,
    check_propagation,
    comparable_search,
    propagate_cfds,
    propagate_to_projection,
    propagate_to_selection,
    select_view,
)
from repro.relation import Relation


class TestProjectionPropagation:
    def test_cfd_survives_when_attrs_kept(self):
        dep = CFD(["a", "b"], "c", {"a": 1})
        assert propagate_to_projection([dep], ["a", "b", "c"]) == [dep]

    def test_cfd_dropped_when_attr_projected_out(self):
        dep = CFD(["a", "b"], "c", {"a": 1})
        assert propagate_to_projection([dep], ["a", "c"]) == []


class TestSelectionPropagation:
    def test_wildcard_specialized_to_constant(self):
        dep = CFD(["cc", "zip"], "city")
        (out,) = propagate_to_selection([dep], {"cc": "44"})
        assert out.pattern.entry("cc").constant == "44"

    def test_conflicting_constant_is_vacuous(self):
        dep = CFD(["cc", "zip"], "city", {"cc": "01"})
        assert propagate_to_selection([dep], {"cc": "44"}) == []

    def test_matching_constant_unchanged(self):
        dep = CFD(["cc", "zip"], "city", {"cc": "44"})
        (out,) = propagate_to_selection([dep], {"cc": "44"})
        assert out == dep

    def test_condition_on_other_attribute_ignored(self):
        dep = CFD(["zip"], "city")
        (out,) = propagate_to_selection([dep], {"country": "UK"})
        assert out == dep


class TestSemanticOracle:
    @pytest.mark.parametrize("seed", range(10))
    def test_propagated_cfds_hold_on_views(self, seed):
        r = random_relation(15, 4, domain_size=3, seed=seed)
        dep = CFD(["A0", "A1"], "A2", {"A0": 1})
        assert check_propagation(
            r, [dep], view_attributes=["A0", "A1", "A2"], condition={"A3": 0}
        )

    def test_selection_view_materialization(self):
        r = Relation.from_rows(
            ["cc", "zip", "city"],
            [("44", "z1", "L"), ("44", "z1", "L"), ("01", "z1", "P")],
        )
        view = select_view(r, {"cc": "44"})
        assert len(view) == 2
        dep = CFD(["cc", "zip"], "city")
        assert dep.holds(r)
        for out in propagate_cfds([dep], condition={"cc": "44"}):
            assert out.holds(view)


class TestDataspaceSearch:
    @pytest.fixture
    def ds(self):
        return dataspace_person()

    @pytest.fixture
    def theta(self):
        return SimilarityFunction("region", "city", 5, 5, 5)

    def test_comparable_search_crosses_synonyms(self, ds, theta):
        """Querying region='St Petersburg' finds the record storing it
        under city, and the close-variant region records."""
        result = comparable_search(
            ds, {"region": "St Petersburg"}, [theta]
        )
        assert set(result.indices) == {0, 1, 2}
        assert result.comparisons > 0

    def test_equality_fallback_for_uncovered_attribute(self, ds, theta):
        result = comparable_search(ds, {"name": "Alice"}, [theta])
        assert set(result.indices) == {0, 1}

    def test_cd_accelerated_skips_rhs(self, ds, theta):
        theta2 = SimilarityFunction("addr", "post", 7, 9, 6)
        cd = CD([theta], theta2)
        assert cd.holds(ds)
        full = comparable_search(
            ds,
            {"region": "St Petersburg", "addr": "#7 T Avenue"},
            [theta, theta2],
        )
        fast = cd_accelerated_search(
            ds, {"region": "St Petersburg", "addr": "#7 T Avenue"}, cd
        )
        # Same answers, fewer comparisons (RHS skipped).
        assert set(fast.indices) == set(full.indices)
        assert fast.comparisons < full.comparisons
