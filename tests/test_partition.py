"""Unit tests for stripped partitions (TANE's data structure)."""

import pytest

from repro.datasets import random_relation
from repro.relation import Relation, StrippedPartition


@pytest.fixture
def rel():
    # a: [1,1,2,2,3]  b: [x,x,x,y,y]
    return Relation.from_rows(
        ["a", "b"],
        [(1, "x"), (1, "x"), (2, "x"), (2, "y"), (3, "y")],
    )


class TestBasics:
    def test_singletons_stripped(self, rel):
        pi_a = StrippedPartition.from_relation(rel, ["a"])
        assert pi_a.num_classes == 2  # {0,1} and {2,3}; singleton {4} gone
        assert pi_a.stripped_size == 4

    def test_rank_counts_all_classes(self, rel):
        pi_a = StrippedPartition.from_relation(rel, ["a"])
        assert pi_a.rank == 3  # |dom(a)|
        assert pi_a.rank == rel.distinct_count(["a"])

    def test_error(self, rel):
        pi_a = StrippedPartition.from_relation(rel, ["a"])
        assert pi_a.error() == 2  # 4 stripped tuples - 2 classes

    def test_empty_relation(self):
        r = Relation.empty(["a"])
        pi = StrippedPartition.from_relation(r, ["a"])
        assert pi.rank == 0
        assert pi.g3_error(pi) == 0.0


class TestProduct:
    def test_product_equals_direct(self, rel):
        pi_a = StrippedPartition.from_relation(rel, ["a"])
        pi_b = StrippedPartition.from_relation(rel, ["b"])
        direct = StrippedPartition.from_relation(rel, ["a", "b"])
        assert pi_a.product(pi_b) == direct

    def test_product_is_commutative(self, rel):
        pi_a = StrippedPartition.from_relation(rel, ["a"])
        pi_b = StrippedPartition.from_relation(rel, ["b"])
        assert pi_a.product(pi_b) == pi_b.product(pi_a)

    def test_product_random_relations(self):
        for seed in range(10):
            r = random_relation(20, 3, domain_size=3, seed=seed)
            pi_0 = StrippedPartition.from_relation(r, ["A0"])
            pi_1 = StrippedPartition.from_relation(r, ["A1"])
            direct = StrippedPartition.from_relation(r, ["A0", "A1"])
            assert pi_0.product(pi_1) == direct

    def test_product_size_mismatch(self, rel):
        other = StrippedPartition(3, [[0, 1]])
        with pytest.raises(ValueError):
            StrippedPartition.from_relation(rel, ["a"]).product(other)


class TestRefinesAndFD:
    def test_fd_holds_iff_refines(self):
        from repro.core import FD
        from repro.datasets import random_relation

        for seed in range(15):
            r = random_relation(15, 3, domain_size=3, seed=seed)
            pi_a = StrippedPartition.from_relation(r, ["A0"])
            pi_b = StrippedPartition.from_relation(r, ["A1"])
            assert pi_a.refines(pi_b) == FD("A0", "A1").holds(r)

    def test_rank_equality_criterion(self):
        from repro.core import FD

        for seed in range(15):
            r = random_relation(15, 3, domain_size=3, seed=seed)
            pi_x = StrippedPartition.from_relation(r, ["A0"])
            pi_xy = StrippedPartition.from_relation(r, ["A0", "A1"])
            assert (pi_x.rank == pi_xy.rank) == FD("A0", "A1").holds(r)


class TestG3:
    def test_g3_matches_afd_measure(self):
        from repro.core import AFD

        for seed in range(15):
            r = random_relation(20, 3, domain_size=3, seed=seed)
            pi_x = StrippedPartition.from_relation(r, ["A0"])
            pi_xy = StrippedPartition.from_relation(r, ["A0", "A1"])
            afd = AFD("A0", "A1", 0.5)
            assert pi_x.g3_error(pi_xy) == pytest.approx(afd.measure(r))

    def test_violating_classes(self, rel):
        pi_a = StrippedPartition.from_relation(rel, ["a"])
        pi_ab = StrippedPartition.from_relation(rel, ["a", "b"])
        bad = pi_a.violating_classes(pi_ab)
        assert bad == [(2, 3)]


class TestHashing:
    def test_equal_partitions_hash_equal(self):
        # Regression: __eq__ without __hash__ made partitions unhashable
        # as dataclass-style value objects; hashing must be structural.
        for seed in range(10):
            r = random_relation(20, 3, domain_size=3, seed=seed)
            a = StrippedPartition.from_relation(r, ["A0", "A1"])
            b = StrippedPartition.from_relation(r, ["A1", "A0"])
            assert a == b
            assert hash(a) == hash(b)

    def test_usable_in_sets_and_dicts(self):
        r = random_relation(20, 3, domain_size=3, seed=0)
        a = StrippedPartition.from_relation(r, ["A0"])
        b = StrippedPartition.from_relation(r, ["A0"])
        c = StrippedPartition.from_relation(r, ["A0", "A1"])
        pool = {a, b, c}
        assert len(pool) <= 2
        index = {a: "x"}
        assert index[b] == "x"

    def test_class_order_does_not_change_hash(self):
        a = StrippedPartition(4, [[0, 1], [2, 3]])
        b = StrippedPartition(4, [[2, 3], [0, 1]])
        assert a == b
        assert hash(a) == hash(b)
