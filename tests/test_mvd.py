"""Unit tests for MVDs, FHDs and AMVDs."""

import pytest

from repro.core import AMVD, FD, FHD, MVD, DependencyError
from repro.relation import Relation


@pytest.fixture
def course_rel():
    """Classic MVD example: course ->> teacher independent of book."""
    return Relation.from_rows(
        ["course", "teacher", "book"],
        [
            ("db", "ann", "b1"),
            ("db", "ann", "b2"),
            ("db", "bob", "b1"),
            ("db", "bob", "b2"),
            ("os", "cat", "b3"),
        ],
    )


class TestMVD:
    def test_holds_on_cross_product_groups(self, course_rel):
        assert MVD("course", "teacher").holds(course_rel)

    def test_fails_when_combination_missing(self, course_rel):
        broken = course_rel.drop([3])  # remove (db, bob, b2)
        assert not MVD("course", "teacher").holds(broken)

    def test_violations_name_missing_tuple(self, course_rel):
        broken = course_rel.drop([3])
        vs = MVD("course", "teacher").violations(broken)
        assert len(vs) > 0
        for v in vs:
            assert len(v.tuples) == 2

    def test_paper_mvd1_on_r5(self, r5):
        """Section 2.6.1: address, rate ->> region holds on r5."""
        assert MVD(["address", "rate"], "region").holds(r5)

    def test_join_decomposition_identity(self, course_rel):
        mvd = MVD("course", "teacher")
        joined = mvd.join_of_decomposition(course_rel)
        assert set(joined.rows()) == set(course_rel.distinct().rows())

    def test_spurious_fraction_zero_iff_holds(self, course_rel):
        good = MVD("course", "teacher")
        assert good.spurious_fraction(course_rel) == 0.0
        broken = course_rel.drop([3])
        assert good.spurious_fraction(broken) > 0.0

    def test_fd_implies_mvd(self, r1, r5):
        for rel in (r1, r5):
            names = rel.schema.names()
            for lhs in names:
                for rhs in names:
                    if lhs == rhs:
                        continue
                    if FD(lhs, rhs).holds(rel):
                        assert MVD.from_fd(FD(lhs, rhs)).holds(rel)

    def test_trivial_when_z_empty(self):
        r = Relation.from_rows(["a", "b"], [(1, 2), (1, 3)])
        assert MVD("a", "b").holds(r)

    def test_rhs_subset_of_lhs_rejected(self):
        with pytest.raises(DependencyError):
            MVD(["a", "b"], "a")

    def test_overlap_normalized(self):
        mvd = MVD(["a"], ["a", "b"])
        assert mvd.rhs == ("b",)


class TestFHD:
    def test_single_branch_equals_mvd(self, course_rel):
        mvd = MVD("course", "teacher")
        fhd = FHD.from_mvd(mvd)
        assert fhd.holds(course_rel) == mvd.holds(course_rel)
        broken = course_rel.drop([3])
        assert fhd.holds(broken) == mvd.holds(broken)

    def test_multi_branch_decomposition(self):
        rows = []
        for t in ("t1", "t2"):
            for b in ("b1", "b2"):
                for r_ in ("r1", "r2"):
                    rows.append(("db", t, b, r_))
        rel = Relation.from_rows(["course", "teacher", "book", "room"], rows)
        fhd = FHD("course", [["teacher"], ["book"], ["room"]])
        assert fhd.holds(rel)

    def test_multi_branch_violation(self):
        rel = Relation.from_rows(
            ["course", "teacher", "book", "room"],
            [("db", "t1", "b1", "r1"), ("db", "t2", "b2", "r2")],
        )
        fhd = FHD("course", [["teacher"], ["book"], ["room"]])
        assert not fhd.holds(rel)
        assert len(fhd.violations(rel)) > 0

    def test_as_mvds(self):
        fhd = FHD("a", [["b"], ["c"]])
        assert [str(m) for m in fhd.as_mvds()] == ["a ->> b", "a ->> c"]

    def test_overlapping_branches_rejected(self):
        with pytest.raises(DependencyError):
            FHD("a", [["b"], ["b"]])


class TestAMVD:
    def test_epsilon_zero_is_exact(self, course_rel):
        assert AMVD("course", "teacher", 0.0).holds(course_rel)
        broken = course_rel.drop([3])
        assert not AMVD("course", "teacher", 0.0).holds(broken)

    def test_tolerance_admits_spurious(self, course_rel):
        broken = course_rel.drop([3])
        measure = AMVD("course", "teacher").measure(broken)
        assert 0.0 < measure < 1.0
        assert AMVD("course", "teacher", measure).holds(broken)

    def test_threshold_validation(self):
        with pytest.raises(DependencyError):
            AMVD("a", "b", 1.0)

    def test_from_mvd(self):
        amvd = AMVD.from_mvd(MVD("a", "b"))
        assert amvd.epsilon == 0.0
