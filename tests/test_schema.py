"""Unit tests for repro.relation.schema."""

import pytest

from repro.relation import Attribute, AttributeType, Schema, SchemaError
from repro.relation.schema import as_attribute_names


class TestAttribute:
    def test_defaults_to_categorical(self):
        a = Attribute("city")
        assert a.dtype is AttributeType.CATEGORICAL

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Attribute("")

    def test_equality_is_value_based(self):
        assert Attribute("x") == Attribute("x")
        assert Attribute("x") != Attribute("x", AttributeType.NUMERICAL)

    def test_str_is_name(self):
        assert str(Attribute("price", AttributeType.NUMERICAL)) == "price"

    def test_ordered_types(self):
        assert AttributeType.NUMERICAL.is_ordered
        assert not AttributeType.CATEGORICAL.is_ordered
        assert not AttributeType.TEXT.is_ordered


class TestSchema:
    def test_accepts_strings(self):
        s = Schema(["a", "b"])
        assert s.names() == ("a", "b")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_lookup_by_name_and_index(self):
        s = Schema(["a", "b", "c"])
        assert s["b"].name == "b"
        assert s[2].name == "c"
        assert s.index_of("c") == 2

    def test_missing_attribute_raises(self):
        s = Schema(["a"])
        with pytest.raises(SchemaError):
            s["zzz"]
        with pytest.raises(SchemaError):
            s.index_of("zzz")

    def test_contains_names_and_attributes(self):
        s = Schema([Attribute("a", AttributeType.NUMERICAL)])
        assert "a" in s
        assert Attribute("a", AttributeType.NUMERICAL) in s
        assert Attribute("a") not in s  # different dtype
        assert 42 not in s

    def test_project_preserves_order_given(self):
        s = Schema(["a", "b", "c"])
        assert s.project(["c", "a"]).names() == ("c", "a")

    def test_complement(self):
        s = Schema(["a", "b", "c"])
        assert [a.name for a in s.complement(["b"])] == ["a", "c"]

    def test_complement_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).complement(["nope"])

    def test_resolve_mixed(self):
        s = Schema(["a", "b"])
        resolved = s.resolve(["b", Attribute("a")])
        assert [a.name for a in resolved] == ["b", "a"]

    def test_typed_accessors(self):
        s = Schema(
            [
                Attribute("n", AttributeType.NUMERICAL),
                Attribute("c", AttributeType.CATEGORICAL),
                Attribute("t", AttributeType.TEXT),
            ]
        )
        assert [a.name for a in s.numerical_attributes()] == ["n"]
        assert [a.name for a in s.categorical_attributes()] == ["c"]
        assert [a.name for a in s.text_attributes()] == ["t"]

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a", "b"]) != Schema(["b", "a"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))


def test_as_attribute_names():
    assert as_attribute_names(["x", Attribute("y")]) == ("x", "y")
