"""Shared fixtures: the paper's relations and common dependencies."""

import pytest

from repro.datasets import (
    dataspace_person,
    hotel_r1,
    hotel_r5,
    hotel_r6,
    hotel_r7,
)


@pytest.fixture
def r1():
    return hotel_r1()


@pytest.fixture
def r5():
    return hotel_r5()


@pytest.fixture
def r6():
    return hotel_r6()


@pytest.fixture
def r7():
    return hotel_r7()


@pytest.fixture
def dataspace():
    return dataspace_person()
