"""Tests for optimizer statistics, normalization, and fairness."""

import pytest

from repro.core import FD, MVD, NUD, OD, SFD
from repro.datasets import fd_workload
from repro.quality import (
    CorrelationMap,
    SelectivityEstimator,
    bcnf_decompose,
    bcnf_violations,
    candidate_keys,
    closure,
    fairness_violations,
    fourth_nf_decompose,
    fourth_nf_violations,
    is_bcnf,
    is_interventionally_fair,
    is_lossless,
    is_superkey,
    od_sort_reuse,
    projection_size_estimate,
    repair_for_fairness,
)
from repro.relation import Relation


class TestSelectivity:
    @pytest.fixture
    def workload(self):
        return fd_workload(300, 15, error_rate=0.0, seed=1)

    def test_sfd_estimate_beats_independence(self, workload):
        est = SelectivityEstimator(
            workload.relation, [SFD("code", "city", 0.95)]
        )
        err_indep = est.average_estimation_error(["code", "city"], False)
        err_sfd = est.average_estimation_error(["code", "city"], True)
        assert err_sfd < err_indep

    def test_true_selectivity(self, workload):
        est = SelectivityEstimator(workload.relation)
        code = workload.relation.value_at(0, "code")
        sel = est.true_selectivity({"code": code})
        assert 0.0 < sel <= 1.0

    def test_independence_is_product(self, workload):
        est = SelectivityEstimator(workload.relation)
        combined = est.independence_estimate(["code", "city"])
        assert combined == pytest.approx(
            est.single_selectivity("code") * est.single_selectivity("city")
        )

    def test_sfd_estimate_drops_determined_factor(self, workload):
        est = SelectivityEstimator(
            workload.relation, [SFD("code", "city", 0.95)]
        )
        assert est.sfd_aware_estimate(["code", "city"]) == pytest.approx(
            est.single_selectivity("code")
        )


class TestCorrelationMap:
    def test_strong_sfd_gives_small_map(self):
        w = fd_workload(200, 10, error_rate=0.0, seed=2)
        cmap = CorrelationMap(w.relation, "code", "city", buckets=8)
        # Perfect FD: each code maps to exactly one city bucket.
        for code in set(w.relation.column("code")):
            assert len(cmap.target_buckets(code)) == 1
        assert cmap.scan_fraction(w.relation.value_at(0, "code")) <= 1 / 4

    def test_unknown_value_scans_nothing(self):
        w = fd_workload(50, 5, seed=3)
        cmap = CorrelationMap(w.relation, "code", "city")
        assert cmap.target_buckets("missing") == set()


class TestNUDEstimates:
    def test_projection_bound_holds(self, r5):
        nud = NUD("address", "region", 2)
        bound, actual = projection_size_estimate(r5, nud)
        assert actual <= bound

    def test_od_sort_reuse(self, r7):
        assert od_sort_reuse(
            r7, OD([("nights", "<=")], [("subtotal", "<=")])
        )
        assert not od_sort_reuse(
            r7, OD([("nights", "<=")], [("avg/night", "<=")])
        )


class TestNormalization:
    FDS = [FD("code", "city"), FD("code", "state"), FD("city", "state")]
    NAMES = ["code", "city", "state", "payload"]

    def test_closure(self):
        assert closure(["code"], self.FDS) == {"code", "city", "state"}

    def test_superkey_and_keys(self):
        assert is_superkey(["code", "payload"], self.NAMES, self.FDS)
        keys = candidate_keys(self.NAMES, self.FDS)
        assert keys == [("code", "payload")]

    def test_bcnf_violations(self):
        bad = bcnf_violations(self.NAMES, self.FDS)
        assert bad  # code is not a key of the full schema

    def test_bcnf_decompose_is_bcnf_everywhere(self):
        parts = bcnf_decompose(self.NAMES, self.FDS)
        assert all(len(p) <= len(self.NAMES) for p in parts)
        names_union = set().union(*map(set, parts))
        assert names_union == set(self.NAMES)

    def test_bcnf_decomposition_lossless_on_data(self):
        w = fd_workload(80, 8, error_rate=0.0, seed=4)
        fds = w.true_fds
        parts = bcnf_decompose(
            list(w.relation.schema.names()), fds
        )
        projections = [w.relation.project(list(p)) for p in parts]
        assert is_lossless(w.relation, projections)

    def test_is_bcnf_after_decomposition(self):
        for part in bcnf_decompose(self.NAMES, self.FDS):
            from repro.quality.normalize import _project_fds

            local = _project_fds(part, self.FDS)
            assert is_bcnf(part, local)

    def test_4nf_decompose(self):
        rel = Relation.from_rows(
            ["course", "teacher", "book"],
            [
                ("db", "ann", "b1"),
                ("db", "ann", "b2"),
                ("db", "bob", "b1"),
                ("db", "bob", "b2"),
            ],
        )
        mvd = MVD("course", "teacher")
        assert fourth_nf_violations(rel, [mvd], [])
        parts = fourth_nf_decompose(rel, [mvd], [])
        assert len(parts) == 2
        assert is_lossless(rel, parts)


class TestFairness:
    def test_independent_data_is_fair(self):
        rows = []
        for adm in ("low", "high"):
            for prot in ("a", "b"):
                for out in ("yes", "no"):
                    rows.append((adm, prot, out))
        rel = Relation.from_rows(["adm", "prot", "outcome"], rows)
        assert is_interventionally_fair(rel, ["adm"], ["prot"])

    def test_biased_data_detected_and_repaired(self):
        rel = Relation.from_rows(
            ["adm", "prot", "outcome"],
            [
                ("low", "a", "no"),
                ("low", "b", "yes"),
                ("high", "a", "yes"),
                ("high", "a", "yes"),
            ],
        )
        assert not is_interventionally_fair(rel, ["adm"], ["prot"])
        assert len(fairness_violations(rel, ["adm"], ["prot"])) > 0
        repaired, dropped = repair_for_fairness(rel, ["adm"], ["prot"])
        assert is_interventionally_fair(repaired, ["adm"], ["prot"])
        assert dropped
        assert len(repaired) + len(dropped) == len(rel)
