"""Tests for CFD discovery (CFDMiner/CTANE-lite/greedy tableau) and MVDs."""

import pytest

from repro.core import CFD, FD, MVD
from repro.datasets import random_relation
from repro.discovery import (
    candidate_patterns,
    discover_constant_cfds,
    discover_general_cfds,
    discover_mvds_bottomup,
    discover_mvds_topdown,
    greedy_tableau,
    pattern_confidence,
)
from repro.relation import Relation


@pytest.fixture
def conditioned():
    """region 'uk': zip -> street holds; region 'us': it does not."""
    return Relation.from_rows(
        ["region", "zip", "street"],
        [
            ("uk", "z1", "high st"),
            ("uk", "z1", "high st"),
            ("uk", "z2", "low st"),
            ("us", "z1", "main st"),
            ("us", "z1", "wall st"),
        ],
    )


class TestConstantCFDs:
    def test_constant_rules_found(self, r5):
        found = discover_constant_cfds(r5, min_support=2, max_lhs_size=1)
        rendered = {str(d) for d in found}
        assert any("'Jackson'" in s for s in rendered)

    def test_discovered_cfds_hold(self, r5, conditioned):
        for rel in (r5, conditioned):
            for dep in discover_constant_cfds(rel, min_support=2):
                assert dep.holds(rel)

    def test_support_respected(self, conditioned):
        for dep in discover_constant_cfds(conditioned, min_support=2):
            matches = dep.matching_indices(conditioned)
            assert len(matches) >= 2

    def test_minimality_no_redundant_superpattern(self, conditioned):
        found = discover_constant_cfds(conditioned, min_support=2,
                                       max_lhs_size=2)
        items = [
            (dep.rhs[0], frozenset(dep.pattern.constants().items())
             - {(dep.rhs[0], dep.pattern.constants().get(dep.rhs[0]))})
            for dep in found
        ]
        for rhs, lhs_items in items:
            for rhs2, lhs2 in items:
                if rhs == rhs2 and lhs_items != lhs2:
                    assert not (lhs2 < lhs_items)


class TestGeneralCFDs:
    def test_finds_conditioned_fd(self, conditioned):
        found = discover_general_cfds(conditioned, min_support=2)
        assert any(
            d.pattern.constants().get("region") == "uk"
            and d.rhs == ("street",)
            and "zip" in d.lhs
            for d in found
        )

    def test_plain_fd_reported_when_it_holds(self):
        r = Relation.from_rows(
            ["a", "b", "c"], [(1, 2, 1), (1, 2, 2), (3, 4, 1)]
        )
        found = discover_general_cfds(r, min_support=2)
        assert any(
            d.pattern.is_pure_wildcard(d.lhs + d.rhs)
            and d.lhs == ("a",) and d.rhs == ("b",)
            for d in found
        )

    def test_all_results_hold(self, conditioned):
        for dep in discover_general_cfds(conditioned, min_support=2):
            assert dep.holds(conditioned)


class TestGreedyTableau:
    def test_covers_conditioned_subset(self, conditioned):
        # Condition on region (part of the embedded FD's LHS): the
        # 'uk' row covers 3/5 tuples at confidence 1.
        fd = FD(["region", "zip"], "street")
        tab = greedy_tableau(
            conditioned, fd, support_target=0.5, min_confidence=1.0
        )
        assert tab.holds(conditioned)
        assert tab.support(conditioned) >= 0.5

    def test_pure_wildcard_used_when_fd_holds(self, conditioned):
        fd = FD(["region", "zip"], "street")
        sub = conditioned.take([0, 1, 2])
        tab = greedy_tableau(sub, fd, support_target=0.9)
        assert tab.support(sub) == 1.0
        assert len(tab) == 1  # the all-wildcard row suffices

    def test_confidence_gate(self, conditioned):
        fd = FD("zip", "street")
        # With confidence 1.0, no pattern covering the 'us' rows is
        # allowed (zip z1 maps to two streets there).
        tab = greedy_tableau(
            conditioned, fd, support_target=1.0, min_confidence=1.0
        )
        covered = set()
        for row in tab:
            covered.update(row.matching_indices(conditioned))
        assert not ({3, 4} <= covered)

    def test_pattern_confidence(self, conditioned):
        perfect = CFD(["region", "zip"], "street", {"region": "uk"})
        assert pattern_confidence(conditioned, perfect) == 1.0
        broken = CFD(["region", "zip"], "street", {"region": "us"})
        assert pattern_confidence(conditioned, broken) < 1.0

    def test_candidate_patterns_include_wildcard(self, conditioned):
        fd = FD("zip", "street")
        pats = candidate_patterns(conditioned, fd, max_constants=1)
        assert any(p.is_pure_wildcard(("zip",)) for p in pats)

    def test_empty_relation(self):
        r = Relation.empty(["a", "b"])
        tab = greedy_tableau(r, FD("a", "b"))
        assert len(tab) == 0


class TestMVDDiscovery:
    def test_topdown_results_hold(self, r5):
        for dep in discover_mvds_topdown(r5):
            assert dep.holds(r5)

    def test_strategies_agree(self):
        for seed in range(6):
            r = random_relation(10, 4, domain_size=2, seed=seed)
            top = {str(d) for d in discover_mvds_topdown(r)}
            bottom = {str(d) for d in discover_mvds_bottomup(r)}
            assert top == bottom

    def test_paper_mvd_found(self, r5):
        found = {str(d) for d in discover_mvds_topdown(r5)}
        # address, rate ->> region holds; a more general LHS subset
        # version may subsume it — verify it's implied by the output.
        target = MVD(["address", "rate"], "region")
        assert target.holds(r5)
        assert any("region" in s for s in found)

    def test_minimality(self):
        r = random_relation(12, 4, domain_size=2, seed=9)
        found = discover_mvds_topdown(r).dependencies
        for a in found:
            for b in found:
                if a is not b and set(a.rhs) == set(b.rhs):
                    assert not (set(a.lhs) < set(b.lhs))
