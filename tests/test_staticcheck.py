"""Seeded fixtures for every stable SC code of the invariant analyzer.

Mirrors ``test_lint_diagnostics.py``: one deliberately broken source
fixture (true positive) and one compliant twin (true negative) per code
SC001..SC008, the SC000 suppression-hygiene contract, and — for the
acceptance path — the ``repro staticcheck`` CLI with its exit-code
contract plus the zero-findings gate over the real ``src/`` tree.
"""

from __future__ import annotations

import json
import os
import textwrap

import repro
from repro.analysis.staticcheck import (
    SC_CODES,
    default_passes,
    load_source,
    render_json,
    render_text,
    run_paths,
)
from repro.analysis.staticcheck.concurrency_passes import (
    AsyncBlockingPass,
    LockOrderPass,
)
from repro.analysis.staticcheck.kernels_passes import (
    BudgetCheckpointPass,
    EngineNeutralityPass,
)
from repro.analysis.staticcheck.memory_passes import (
    ForkSafetyPass,
    SharedMemoryLifecyclePass,
)
from repro.analysis.staticcheck.reliability_passes import (
    ExceptionDisciplinePass,
    WalBeforeAckPass,
)
from repro.cli import main

SRC_ROOT = os.path.dirname(os.path.dirname(repro.__file__))


def module_from(text: str, path: str = "pkg/mod.py"):
    return load_source(path, text=textwrap.dedent(text))


def run_pass(check, text: str, path: str = "pkg/mod.py"):
    module = module_from(text, path)
    return list(check.run(module)) + list(check.run_project([module]))


# -- SC001: budget checkpoints in kernel candidate loops ---------------


class TestBudgetCheckpointPass:
    PATH = "pkg/plan/kernels.py"

    def test_guarded_yield_loop_without_checkpoint_fires(self):
        findings = run_pass(
            BudgetCheckpointPass(),
            """
            def gen(rows):
                for r in rows:
                    if r > 0:
                        yield r
            """,
            self.PATH,
        )
        assert [f.code for f in findings] == ["SC001"]
        assert findings[0].context == "gen"

    def test_verify_loop_without_checkpoint_fires(self):
        findings = run_pass(
            BudgetCheckpointPass(),
            """
            def refine(cands, verify):
                out = []
                for c in cands:
                    if verify(c):
                        out.append(c)
                return out
            """,
            self.PATH,
        )
        assert [f.code for f in findings] == ["SC001"]

    def test_checkpointed_loop_is_clean(self):
        findings = run_pass(
            BudgetCheckpointPass(),
            """
            def gen(rows):
                for r in rows:
                    checkpoint()
                    if r > 0:
                        yield r
            """,
            self.PATH,
        )
        assert findings == []

    def test_pure_streaming_loop_is_clean(self):
        # Every iteration yields: the consumer charges per candidate.
        findings = run_pass(
            BudgetCheckpointPass(),
            """
            def gen(rows):
                for r in rows:
                    yield r
            """,
            self.PATH,
        )
        assert findings == []

    def test_non_kernel_module_is_out_of_scope(self):
        findings = run_pass(
            BudgetCheckpointPass(),
            """
            def gen(rows):
                for r in rows:
                    if r > 0:
                        yield r
            """,
            "pkg/analysis/kernels_passes.py",
        )
        assert findings == []


# -- SC002: engine neutrality ------------------------------------------


class TestEngineNeutralityPass:
    PATH = "pkg/plan/kernels_vec.py"

    def test_relation_import_fires(self):
        findings = run_pass(
            EngineNeutralityPass(),
            """
            from ..relation import Relation

            def kernel(ctx):
                return ctx.n
            """,
            self.PATH,
        )
        assert findings and all(f.code == "SC002" for f in findings)

    def test_relation_identifier_fires(self):
        findings = run_pass(
            EngineNeutralityPass(),
            """
            def kernel(relation):
                return len(relation)
            """,
            self.PATH,
        )
        assert findings and all(f.code == "SC002" for f in findings)

    def test_slab_consumer_is_clean(self):
        findings = run_pass(
            EngineNeutralityPass(),
            """
            from .slabs import ExecutionContext

            def kernel(ctx):
                return ctx.column("a")
            """,
            self.PATH,
        )
        assert findings == []


# -- SC003: shared-memory lifecycle ------------------------------------


class TestSharedMemoryLifecyclePass:
    def test_unreleased_handle_fires(self):
        findings = run_pass(
            SharedMemoryLifecyclePass(),
            """
            def leaky(n):
                shm = SharedMemory(create=True, size=n)
                shm.buf[0] = 1
                return shm.name
            """,
        )
        assert [f.code for f in findings] == ["SC003"]
        assert "'shm'" in findings[0].message

    def test_attribute_read_is_not_an_escape(self):
        # Storing token.name (a str) hands off a derived value, not
        # the resource — exactly the execute_parallel leak shape.
        findings = run_pass(
            SharedMemoryLifecyclePass(),
            """
            def leaky(spec):
                token = ShardToken.create(4)
                spec["token"] = token.name
                run(spec)
            """,
        )
        assert [f.code for f in findings] == ["SC003"]

    def test_finally_release_is_clean(self):
        findings = run_pass(
            SharedMemoryLifecyclePass(),
            """
            def careful(n):
                shm = SharedMemory(create=True, size=n)
                try:
                    work(shm)
                finally:
                    shm.close()
                    shm.unlink()
            """,
        )
        assert findings == []

    def test_release_helper_in_finally_is_clean(self):
        findings = run_pass(
            SharedMemoryLifecyclePass(),
            """
            def careful(n):
                token = ShardToken.create(n)

                def release_token():
                    token.close()
                    token.unlink()

                try:
                    work(token)
                finally:
                    release_token()
            """,
        )
        assert findings == []

    def test_returned_handle_is_an_ownership_transfer(self):
        findings = run_pass(
            SharedMemoryLifecyclePass(),
            """
            def make(n):
                shm = SharedMemory(create=True, size=n)
                return Handle(shm, n)
            """,
        )
        assert findings == []


# -- SC004: lock ordering ----------------------------------------------


class TestLockOrderPass:
    def test_opposite_order_cycle_fires(self):
        # Alpha.one holds Alpha._lock while taking Beta._lock (via
        # beta.poke); Beta.poke holds Beta._lock while calling
        # alpha.grab, which takes Alpha._lock — a classic AB/BA cycle.
        findings = run_pass(
            LockOrderPass(),
            """
            import threading

            class Alpha:
                def __init__(self):
                    self._lock = threading.Lock()

                def one(self, beta):
                    with self._lock:
                        beta.poke(self)

                def grab(self):
                    with self._lock:
                        pass

            class Beta:
                def __init__(self):
                    self._lock = threading.Lock()

                def poke(self, alpha):
                    with self._lock:
                        alpha.grab()
            """,
        )
        assert any(
            f.code == "SC004" and "cycle" in f.message for f in findings
        )

    def test_consistent_order_is_clean(self):
        findings = run_pass(
            LockOrderPass(),
            """
            import threading

            class Alpha:
                def __init__(self):
                    self._lock = threading.Lock()

                def one(self, beta):
                    with self._lock:
                        beta.poke()

            class Beta:
                def __init__(self):
                    self._lock = threading.Lock()

                def poke(self):
                    with self._lock:
                        pass
            """,
        )
        assert findings == []

    def test_lock_held_across_await_fires(self):
        findings = run_pass(
            LockOrderPass(),
            """
            import asyncio
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()

                async def bad(self):
                    with self._lock:
                        await asyncio.sleep(0)
            """,
        )
        assert any(
            f.code == "SC004" and "await" in f.message for f in findings
        )

    def test_async_with_async_lock_is_clean(self):
        findings = run_pass(
            LockOrderPass(),
            """
            import asyncio

            class Box:
                def __init__(self):
                    self._lock = asyncio.Lock()

                async def fine(self):
                    async with self._lock:
                        await asyncio.sleep(0)
            """,
        )
        assert findings == []


# -- SC005: fork safety ------------------------------------------------


class TestForkSafetyPass:
    def test_unguarded_pool_creation_fires(self):
        findings = run_pass(
            ForkSafetyPass(),
            """
            from concurrent.futures import ProcessPoolExecutor

            def get_pool(n):
                return ProcessPoolExecutor(n)
            """,
        )
        assert [f.code for f in findings] == ["SC005"]
        assert "main_thread" in findings[0].message

    def test_lambda_submit_fires(self):
        findings = run_pass(
            ForkSafetyPass(),
            """
            import threading
            from concurrent.futures import ProcessPoolExecutor

            def run(x):
                if threading.current_thread() is threading.main_thread():
                    pool = ProcessPoolExecutor(2)
                    pool.submit(lambda: x + 1)
            """,
        )
        assert [f.code for f in findings] == ["SC005"]
        assert "lambda" in findings[0].message

    def test_bound_method_submit_fires(self):
        findings = run_pass(
            ForkSafetyPass(),
            """
            import threading
            from concurrent.futures import ProcessPoolExecutor

            def run(worker):
                if threading.current_thread() is threading.main_thread():
                    pool = ProcessPoolExecutor(2)
                    pool.submit(worker.step, 1)
            """,
        )
        assert [f.code for f in findings] == ["SC005"]

    def test_guarded_pool_with_module_level_target_is_clean(self):
        findings = run_pass(
            ForkSafetyPass(),
            """
            import threading
            from concurrent.futures import ProcessPoolExecutor

            def shard_task(blob):
                return blob

            def run(blob):
                if threading.current_thread() is not threading.main_thread():
                    return None
                pool = ProcessPoolExecutor(2)
                return pool.submit(shard_task, blob)
            """,
        )
        assert findings == []


# -- SC006: WAL append before ack --------------------------------------


class TestWalBeforeAckPass:
    PATH = "pkg/server/routes.py"

    def test_commit_before_append_fires(self):
        findings = run_pass(
            WalBeforeAckPass(),
            """
            def apply_batch(app, tenant, delta):
                change = tenant.detector.apply(delta)
                app.durability.log_batch(tenant, delta)
                return change
            """,
            self.PATH,
        )
        assert [f.code for f in findings] == ["SC006"]
        assert "crash" in findings[0].message

    def test_append_then_commit_is_clean(self):
        findings = run_pass(
            WalBeforeAckPass(),
            """
            def apply_batch(app, tenant, delta):
                app.durability.log_batch(tenant, delta)
                change = tenant.detector.apply(delta)
                return change
            """,
            self.PATH,
        )
        assert findings == []

    def test_non_server_module_is_out_of_scope(self):
        findings = run_pass(
            WalBeforeAckPass(),
            """
            def apply_batch(app, tenant, delta):
                change = tenant.detector.apply(delta)
                app.durability.log_batch(tenant, delta)
                return change
            """,
            "pkg/incremental/detector.py",
        )
        assert findings == []


# -- SC007: blocking calls in async defs -------------------------------


class TestAsyncBlockingPass:
    def test_direct_blocking_call_fires(self):
        findings = run_pass(
            AsyncBlockingPass(),
            """
            async def handler(request, app):
                report = app.engine.violations(request.tenant)
                return report
            """,
        )
        assert [f.code for f in findings] == ["SC007"]
        assert "violations" in findings[0].message

    def test_time_sleep_fires_but_asyncio_sleep_does_not(self):
        findings = run_pass(
            AsyncBlockingPass(),
            """
            import asyncio
            import time

            async def handler():
                time.sleep(1)
                await asyncio.sleep(1)
            """,
        )
        assert [f.code for f in findings] == ["SC007"]
        assert "time.sleep" in findings[0].message

    def test_run_sync_wrapped_work_is_clean(self):
        # The lambda/nested-def is its own scope: the blocking call
        # executes on the worker thread, not the event loop.
        findings = run_pass(
            AsyncBlockingPass(),
            """
            async def handler(request, app):
                return await app.run_sync(
                    lambda: app.engine.violations(request.tenant)
                )
            """,
        )
        assert findings == []


# -- SC008: exception discipline ---------------------------------------


class TestExceptionDisciplinePass:
    def test_broad_handler_fires(self):
        findings = run_pass(
            ExceptionDisciplinePass(),
            """
            def f():
                try:
                    g()
                except Exception:
                    return None
            """,
        )
        assert [f.code for f in findings] == ["SC008"]

    def test_bare_except_fires(self):
        findings = run_pass(
            ExceptionDisciplinePass(),
            """
            def f():
                try:
                    g()
                except:
                    return None
            """,
        )
        assert [f.code for f in findings] == ["SC008"]

    def test_earlier_budget_clause_exempts(self):
        findings = run_pass(
            ExceptionDisciplinePass(),
            """
            def f():
                try:
                    g()
                except BudgetExhausted:
                    raise
                except Exception:
                    return None
            """,
        )
        assert findings == []

    def test_reraising_handler_is_clean(self):
        findings = run_pass(
            ExceptionDisciplinePass(),
            """
            def f():
                try:
                    g()
                except Exception as exc:
                    log(exc)
                    raise
            """,
        )
        assert findings == []

    def test_narrow_handler_is_clean(self):
        findings = run_pass(
            ExceptionDisciplinePass(),
            """
            def f():
                try:
                    g()
                except (ValueError, OSError):
                    return None
            """,
        )
        assert findings == []


# -- SC000 + suppressions ----------------------------------------------


class TestSuppressions:
    def test_suppression_with_reason_silences(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent(
            """
            def f():
                try:
                    g()
                # staticcheck: disable=SC008 — boundary: error is
                # surfaced on the job record, not swallowed.
                except Exception:
                    return None
            """
        ))
        report = run_paths([str(path)])
        assert report.findings == []
        assert len(report.suppressed) == 1
        finding, sup = report.suppressed[0]
        assert finding.code == "SC008"
        assert "boundary" in sup.reason

    def test_suppression_without_reason_is_sc000(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent(
            """
            def f():
                try:
                    g()
                except Exception:  # staticcheck: disable=SC008
                    return None
            """
        ))
        report = run_paths([str(path)])
        codes = sorted(f.code for f in report.findings)
        # The suppression is rejected (SC000) and therefore does NOT
        # silence the underlying SC008.
        assert codes == ["SC000", "SC008"]

    def test_invalid_code_is_sc000(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "x = 1  # staticcheck: disable=SC9999 — nonsense\n"
        )
        report = run_paths([str(path)])
        assert [f.code for f in report.findings] == ["SC000"]

    def test_string_literal_is_not_a_suppression(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            's = "# staticcheck: disable=SC008"\n'
        )
        report = run_paths([str(path)])
        assert report.findings == []

    def test_syntax_error_file_is_reported(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        report = run_paths([str(path)])
        assert [f.code for f in report.findings] == ["SC000"]
        assert "does not parse" in report.findings[0].message


# -- runner, baseline, registry ----------------------------------------


class TestRunner:
    def test_every_code_is_registered(self):
        assert sorted(SC_CODES) == [
            "SC000", "SC001", "SC002", "SC003",
            "SC004", "SC005", "SC006", "SC007", "SC008",
        ]
        pass_codes = {p.code for p in default_passes()}
        assert pass_codes == set(SC_CODES) - {"SC000"}

    def test_baseline_waives_known_findings(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text(textwrap.dedent(
            """
            def f():
                try:
                    g()
                except Exception:
                    return None
            """
        ))
        first = run_paths([str(bad)])
        assert len(first.findings) == 1
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(json.dumps(render_json(first)))
        from repro.analysis.staticcheck import load_baseline

        second = run_paths(
            [str(bad)], baseline=load_baseline(str(baseline_file))
        )
        assert second.findings == []
        assert len(second.baselined) == 1

    def test_render_text_and_json_shapes(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text(textwrap.dedent(
            """
            def f():
                try:
                    g()
                except Exception:
                    return None
            """
        ))
        report = run_paths([str(bad)])
        text = render_text(report)
        assert "SC008" in text and "1 finding(s)" in text
        payload = render_json(report)
        assert payload["counts"] == {"SC008": 1}
        assert payload["findings"][0]["code"] == "SC008"


# -- acceptance: the real tree and the CLI -----------------------------


class TestAcceptance:
    def test_src_tree_is_clean(self):
        report = run_paths([SRC_ROOT])
        rendered = render_text(report)
        assert report.findings == [], rendered
        # Every suppression in the tree carries a written reason.
        assert all(sup.reason for _, sup in report.suppressed)

    def test_cli_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main(["staticcheck", str(good)]) == 0
        bad = tmp_path / "bad.py"
        bad.write_text(textwrap.dedent(
            """
            def f():
                try:
                    g()
                except Exception:
                    return None
            """
        ))
        assert main(["staticcheck", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "SC008" in out

    def test_cli_json_format(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main(["staticcheck", str(good), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []

    def test_cli_baseline_flow(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(textwrap.dedent(
            """
            def f():
                try:
                    g()
                except Exception:
                    return None
            """
        ))
        assert main(
            ["staticcheck", str(bad), "--format", "json"]
        ) == 1
        baseline = tmp_path / "baseline.json"
        baseline.write_text(capsys.readouterr().out)
        assert main(
            ["staticcheck", str(bad), "--baseline", str(baseline)]
        ) == 0
