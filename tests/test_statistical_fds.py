"""Unit tests for the statistical FD extensions: SFD, PFD, AFD, NUD."""

import pytest

from repro.core import AFD, FD, NUD, PFD, SFD, DependencyError, g3_error
from repro.relation import Relation


class TestSFD:
    def test_paper_strengths_on_r5(self, r5):
        """Section 2.1.1: S(address->region)=2/3, S(name->address)=1/2."""
        assert SFD("address", "region").measure(r5) == pytest.approx(2 / 3)
        assert SFD("name", "address").measure(r5) == pytest.approx(1 / 2)

    def test_holds_compares_threshold(self, r5):
        assert SFD("address", "region", 0.6).holds(r5)
        assert not SFD("address", "region", 0.7).holds(r5)

    def test_strength_one_iff_fd(self, r5):
        assert SFD("address", "name", 1.0).holds(r5) == FD(
            "address", "name"
        ).holds(r5)

    def test_threshold_validation(self):
        with pytest.raises(DependencyError):
            SFD("a", "b", 0.0)
        with pytest.raises(DependencyError):
            SFD("a", "b", 1.5)

    def test_empty_relation_strength_one(self):
        assert SFD("a", "b").measure(Relation.empty(["a", "b"])) == 1.0

    def test_strength_bounds(self, r1, r5, r6):
        for rel in (r1, r5, r6):
            for lhs in rel.schema.names():
                for rhs in rel.schema.names():
                    if lhs != rhs:
                        s = SFD(lhs, rhs).measure(rel)
                        assert 0.0 < s <= 1.0

    def test_violation_evidence_is_embedded_fd(self, r5):
        sfd = SFD("address", "region", 0.6)
        assert sfd.holds(r5)
        assert len(sfd.violations(r5)) > 0  # evidence despite holding

    def test_from_fd_is_strength_one(self):
        sfd = SFD.from_fd(FD("a", "b"))
        assert sfd.strength == 1.0


class TestPFD:
    def test_paper_probabilities_on_r5(self, r5):
        """Section 2.2.1: P(address->region)=3/4, P(name->address)=1/2."""
        assert PFD("address", "region").measure(r5) == pytest.approx(3 / 4)
        assert PFD("name", "address").measure(r5) == pytest.approx(1 / 2)

    def test_per_value_probabilities(self, r5):
        per = PFD("address", "region").per_value_probability(r5)
        assert per[("175 North Jackson Street",)] == pytest.approx(1.0)
        assert per[("6030 Gateway Boulevard E",)] == pytest.approx(1 / 2)

    def test_holds(self, r5):
        assert PFD("address", "region", 0.75).holds(r5)
        assert not PFD("address", "region", 0.8).holds(r5)

    def test_violations_flag_non_modal_tuples(self, r5):
        vs = PFD("address", "region").violations(r5)
        flagged = vs.tuple_indices()
        # One of t3/t4 (0-based 2/3) deviates from the group's mode.
        assert flagged <= {2, 3} and len(flagged) == 1

    def test_probability_one_iff_fd(self, r5, r1):
        for rel in (r5, r1):
            for lhs in rel.schema.names():
                for rhs in rel.schema.names():
                    if lhs == rhs:
                        continue
                    p = PFD(lhs, rhs).measure(rel)
                    assert (p == 1.0) == FD(lhs, rhs).holds(rel)

    def test_threshold_validation(self):
        with pytest.raises(DependencyError):
            PFD("a", "b", 0.0)


class TestAFD:
    def test_paper_g3_on_r5(self, r5):
        """Section 2.3.1: g3(address->region)=1/4, g3(name->address)=1/2."""
        assert AFD("address", "region").measure(r5) == pytest.approx(1 / 4)
        assert AFD("name", "address").measure(r5) == pytest.approx(1 / 2)

    def test_holds(self, r5):
        assert AFD("address", "region", 0.25).holds(r5)
        assert not AFD("address", "region", 0.2).holds(r5)

    def test_removal_set_realizes_g3(self, r5):
        afd = AFD("name", "address", 0.5)
        removed = afd.removal_set(r5)
        assert len(removed) / len(r5) == pytest.approx(afd.measure(r5))
        assert afd.embedded.holds(r5.drop(removed))

    def test_g3_zero_iff_fd(self, r1, r5):
        for rel in (r1, r5):
            for lhs in rel.schema.names():
                for rhs in rel.schema.names():
                    if lhs == rhs:
                        continue
                    err = g3_error(FD(lhs, rhs), rel)
                    assert (err == 0.0) == FD(lhs, rhs).holds(rel)

    def test_empty_relation(self):
        assert AFD("a", "b").measure(Relation.empty(["a", "b"])) == 0.0

    def test_threshold_validation(self):
        with pytest.raises(DependencyError):
            AFD("a", "b", 1.0)
        with pytest.raises(DependencyError):
            AFD("a", "b", -0.1)


class TestNUD:
    def test_paper_nud1_on_r5(self, r5):
        """Section 2.4.1: address ->_2 region holds (El Paso variants)."""
        assert NUD("address", "region", 2).holds(r5)
        assert NUD("address", "region", 1).holds(r5) is False

    def test_max_fanout(self, r5):
        assert NUD("address", "region", 1).max_fanout(r5) == 2
        assert NUD("address", "name", 1).max_fanout(r5) == 1

    def test_weight_one_iff_fd(self, r5):
        for lhs in r5.schema.names():
            for rhs in r5.schema.names():
                if lhs != rhs:
                    assert NUD(lhs, rhs, 1).holds(r5) == FD(lhs, rhs).holds(
                        r5
                    )

    def test_violations_cite_whole_group(self, r5):
        vs = NUD("address", "region", 1).violations(r5)
        assert len(vs) == 1
        assert vs[0].tuples == (2, 3)

    def test_projection_size_bound(self, r5):
        nud = NUD("address", "region", 2)
        bound = nud.projection_size_bound(r5)
        actual = r5.distinct_count(["address", "region"])
        assert actual <= bound == 4

    def test_weight_validation(self):
        with pytest.raises(DependencyError):
            NUD("a", "b", 0)

    def test_empty_relation_holds(self):
        assert NUD("a", "b", 1).holds(Relation.empty(["a", "b"]))
