"""Tests for the incremental validation engine (ISSUE-7 tentpole).

Covers the :class:`~repro.incremental.Delta` model and its validation,
``Relation.apply_delta`` semantics (column sharing, cache patching,
codebook extension), the changefeed contract of
:class:`~repro.incremental.IncrementalDetector`, the mixed-notation
rule-file loader, and the ``repro watch`` CLI.  The statistical
equivalence with cold recomputation lives in
``test_incremental_parity.py``.
"""

import json

import pytest

from repro.cli import main
from repro.core import DC, DD, FD, MD, MFD, MVD, OD, SD, AFD, CFD
from repro.incremental import (
    CHECKER_REGISTRY,
    Delta,
    DeltaError,
    FullRecomputeChecker,
    IncrementalDetector,
    checker_for,
    parse_mutation_log,
)
from repro.incremental.checkers import PairProbeChecker
from repro.relation import (
    Attribute,
    AttributeType,
    Relation,
    Schema,
    StrippedPartition,
)
from repro.relation.partition_cache import cache_for
from repro.rules_io import RuleFileError, load_rules, parse_rule, parse_rules

_C = AttributeType.CATEGORICAL
_N = AttributeType.NUMERICAL


def _rel(rows, names=("a", "b"), numerical=()):
    schema = Schema(
        [
            Attribute(n, _N if n in numerical else _C)
            for n in names
        ]
    )
    return Relation.from_rows(schema, rows)


class TestDeltaModel:
    def test_normalization_sorts_and_dedupes(self):
        d = Delta(deletes=[3, 1, 3], updates=[(2, {"a": "x"}), (0, [("a", "y")])])
        assert d.deletes == (1, 3)
        assert d.updates == ((0, (("a", "y"),)), (2, (("a", "x"),)))

    def test_later_update_wins(self):
        d = Delta(updates=[(1, {"a": "old"}), (1, {"a": "new", "b": "z"})])
        assert d.updates == ((1, (("a", "new"), ("b", "z"))),)

    def test_remap_is_monotone(self):
        d = Delta(deletes=[1, 3])
        assert d.remap(5) == [0, None, 1, None, 2]
        assert Delta().remap(3) == [0, 1, 2]

    def test_new_size(self):
        d = Delta(inserts=[("x", "y")], deletes=[0, 2])
        assert d.new_size(4) == 3

    def test_validate_rejects_out_of_range(self):
        r = _rel([("p", "q")])
        with pytest.raises(DeltaError):
            Delta(deletes=[5]).validate(r)
        with pytest.raises(DeltaError):
            Delta(updates=[(9, {"a": "x"})]).validate(r)
        with pytest.raises(DeltaError):
            Delta(updates=[(0, {"nope": "x"})]).validate(r)
        with pytest.raises(DeltaError):
            Delta(inserts=[("too", "many", "cols")]).validate(r)

    def test_from_json_forms(self):
        r = _rel([("p", "q")])
        d = Delta.from_json(
            {
                "insert": [["x", "y"], {"b": "only"}],
                "update": [{"row": 0, "set": {"a": "z"}}],
                "delete": [0],
            },
            r.schema,
        )
        assert d.inserts == (("x", "y"), (None, "only"))
        assert d.updates == ((0, (("a", "z"),)),)
        with pytest.raises(DeltaError):
            Delta.from_json({"bogus": []}, r.schema)
        with pytest.raises(DeltaError):
            Delta.from_json({"update": [{"row": 0, "set": {}}]}, r.schema)

    def test_parse_mutation_log_skips_blanks_and_comments(self):
        r = _rel([("p", "q")])
        lines = [
            "# header comment",
            "",
            json.dumps({"insert": [["x", "y"]]}),
        ]
        deltas = list(parse_mutation_log(lines, r.schema))
        assert len(deltas) == 1
        assert deltas[0].inserts == (("x", "y"),)

    def test_to_json_emits_the_canonical_wire_format(self):
        d = Delta(
            inserts=[("x", "y")],
            deletes=[2, 0],
            updates=[(1, {"a": "z"})],
        )
        assert d.to_json() == {
            "insert": [["x", "y"]],
            "delete": [0, 2],
            "update": [{"row": 1, "set": {"a": "z"}}],
        }
        assert Delta().to_json() == {}  # empty sections are dropped


# ---------------------------------------------------------------------------
# property: Delta wire-format round trip (the WAL record contract)


from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_RT_SCHEMA = Schema(["a", "b"])

# Cell values a batch may legitimately carry: None, bools, ints,
# floats including NaN/±inf (the WAL JSON encoder allows them), text.
_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.text(max_size=8),
)

_rows = st.lists(
    st.tuples(_values, _values), max_size=5
)
_deletes = st.lists(
    st.integers(min_value=0, max_value=99), max_size=5
)
_updates = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=99),
        st.dictionaries(
            st.sampled_from(["a", "b"]), _values, min_size=1, max_size=2
        ),
    ),
    max_size=4,
)


def _canonical(payload):
    """NaN-tolerant structural equality via canonical JSON text."""
    return json.dumps(payload, sort_keys=True, allow_nan=True)


class TestDeltaRoundTripProperty:
    @settings(max_examples=200, deadline=None)
    @given(inserts=_rows, deletes=_deletes, updates=_updates)
    def test_to_json_from_json_round_trip(self, inserts, deletes, updates):
        delta = Delta(
            inserts=inserts, deletes=deletes, updates=updates
        )
        wire = delta.to_json()
        # The wire format survives real JSON serialization (this is
        # exactly what a WAL batch record goes through)...
        over_the_wire = json.loads(
            json.dumps(wire, allow_nan=True), parse_constant=float
        )
        back = Delta.from_json(over_the_wire, _RT_SCHEMA)
        # ... and re-encoding the parsed delta is byte-identical:
        # NaN/Infinity, None, -0.0, and mixed insert notations all
        # normalize to one canonical form.
        assert _canonical(back.to_json()) == _canonical(wire)

    @settings(max_examples=50, deadline=None)
    @given(inserts=_rows)
    def test_object_form_inserts_normalize_to_positional(self, inserts):
        names = _RT_SCHEMA.names()
        mixed = {
            "insert": [
                dict(zip(names, row)) if i % 2 else list(row)
                for i, row in enumerate(inserts)
            ]
        }
        positional = Delta.from_json(
            {"insert": [list(r) for r in inserts]}, _RT_SCHEMA
        )
        objectish = Delta.from_json(mixed, _RT_SCHEMA)
        assert _canonical(objectish.to_json()) == _canonical(
            positional.to_json()
        )


class TestApplyDelta:
    def test_order_updates_deletes_inserts(self):
        r = _rel([("a0", "b0"), ("a1", "b1"), ("a2", "b2")])
        d = Delta(
            inserts=[("a3", "b3")],
            deletes=[0],
            updates=[(1, {"b": "patched"}), (0, {"b": "discarded"})],
        )
        out = r.apply_delta(d)
        assert out.rows() == [
            ("a1", "patched"),
            ("a2", "b2"),
            ("a3", "b3"),
        ]

    def test_empty_delta_returns_self(self):
        r = _rel([("p", "q")])
        assert r.apply_delta(Delta()) is r

    def test_untouched_columns_share_tuples(self):
        r = _rel([("a0", "b0"), ("a1", "b1")])
        out = r.apply_delta(Delta(updates=[(0, {"b": "new"})]))
        assert out._columns[0] is r._columns[0]  # column "a" untouched
        assert out._columns[1] == ("new", "b1")

    def test_accepts_json_mapping(self):
        r = _rel([("p", "q")])
        out = r.apply_delta({"insert": [["x", "y"]]})
        assert len(out) == 2


class TestCachePatching:
    def test_patched_groups_match_fresh(self):
        r = _rel([("k1", "v1"), ("k2", "v2"), ("k1", "v3")])
        r.cached_group_by(["a"])  # warm the parent cache
        r.cached_group_by(["a", "b"])
        out = r.apply_delta(
            Delta(inserts=[("k2", "v4")], deletes=[0], updates=[(1, {"a": "k3"})])
        )
        fresh = Relation.from_rows(out.schema, out.rows())
        for attrs in (["a"], ["a", "b"]):
            assert out.cached_group_by(attrs) == fresh.group_by(attrs)

    def test_insert_only_shares_untouched_group_lists(self):
        r = _rel([("k1", "v1"), ("k2", "v2")])
        parent_groups = r.cached_group_by(["a"])
        out = r.apply_delta(Delta(inserts=[("k2", "v9")]))
        child_groups = out.cached_group_by(["a"])
        # k1's member list is untouched and shared; k2's grew (copied).
        assert child_groups[("k1",)] is parent_groups[("k1",)]
        assert child_groups[("k2",)] == [1, 2]
        assert parent_groups[("k2",)] == [1]

    def test_patched_partition_matches_fresh(self):
        r = _rel([("k1", "v1"), ("k1", "v2"), ("k2", "v3")])
        cache_for(r).partition(["a"])  # warm
        out = r.apply_delta(Delta(deletes=[1], inserts=[("k2", "v4")]))
        patched = cache_for(out).partition(["a"])
        assert patched == StrippedPartition.from_relation(
            Relation.from_rows(out.schema, out.rows()), ["a"]
        )

    def test_codebooks_extended_on_insert_only(self):
        r = _rel([("k1", "v1"), ("k2", "v2")])
        r.cached_group_by(["a"])  # force encoding build
        if r._enc is None:
            pytest.skip("encoded substrate disabled")
        out = r.apply_delta(Delta(inserts=[("k3", "v1")]))
        assert out._enc is not None
        fresh = Relation.from_rows(out.schema, out.rows())
        cc = out._enc.column_codes(0)
        assert cc.codes == fresh.encoding().column_codes(0).codes
        assert cc.codebook == fresh.encoding().column_codes(0).codebook

    def test_no_encoding_inheritance_under_updates(self):
        r = _rel([("k1", "v1"), ("k2", "v2")])
        r.cached_group_by(["a"])
        out = r.apply_delta(Delta(updates=[(0, {"a": "k9"})]))
        assert out._enc is None  # must rebuild, codes would be stale


class TestStaleness:
    """Satellite (b): derived relations never serve stale parent state."""

    def _warmed(self):
        r = _rel(
            [("k1", "v1"), ("k1", "v2"), ("k2", "v3"), ("k3", "v4")],
        )
        r.cached_group_by(["a"])
        cache_for(r).partition(["a"])
        return r

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda r: r.take([2, 0]),
            lambda r: r.drop([0, 3]),
            lambda r: r.extend([("k9", "v9")]),
            lambda r: r.with_values(0, {"a": "k2"}),
        ],
        ids=["take", "drop", "extend", "with_values"],
    )
    def test_mutated_relation_groups_are_fresh(self, mutate):
        r = self._warmed()
        out = mutate(r)
        fresh = Relation.from_rows(out.schema, out.rows())
        assert out.cached_group_by(["a"]) == fresh.group_by(["a"])
        assert cache_for(out).partition(["a"]) == (
            StrippedPartition.from_relation(fresh, ["a"])
        )
        # And the parent's own cache still answers for the parent.
        assert r.cached_group_by(["a"]) == fresh_parent_groups(r)


def fresh_parent_groups(r):
    return Relation.from_rows(r.schema, r.rows()).group_by(["a"])


class TestChangefeed:
    def _detector(self):
        r = _rel([("k1", "v1"), ("k1", "v1"), ("k2", "v2")])
        return IncrementalDetector([FD("a", "b")], r)

    def test_insert_adds_violations(self):
        det = self._detector()
        change = det.apply(Delta(inserts=[("k1", "CONFLICT")]))
        added = {v.tuples for v in change.added}
        assert added == {(0, 3), (1, 3)}
        assert len(change.resolved) == 0
        assert change.total == 2

    def test_fixing_update_resolves(self):
        det = self._detector()
        det.apply(Delta(inserts=[("k1", "CONFLICT")]))
        change = det.apply(Delta(updates=[(3, {"b": "v1"})]))
        assert {v.tuples for v in change.resolved} == {(0, 3), (1, 3)}
        assert len(change.added) == 0
        assert det.holds()

    def test_shifted_violation_neither_added_nor_resolved(self):
        r = _rel(
            [("z", "z"), ("k1", "v1"), ("k1", "CONFLICT")],
        )
        det = IncrementalDetector([FD("a", "b")], r)
        assert {v.tuples for v in det.violations()} == {(1, 2)}
        change = det.apply(Delta(deletes=[0]))
        assert len(change.added) == 0 and len(change.resolved) == 0
        assert {v.tuples for v in det.violations()} == {(0, 1)}

    def test_delete_resolves(self):
        det = self._detector()
        det.apply(Delta(inserts=[("k1", "CONFLICT")]))
        change = det.apply(Delta(deletes=[3]))
        assert len(change.resolved) == 2
        assert det.holds()

    def test_render_and_summary(self):
        det = self._detector()
        change = det.apply(Delta(inserts=[("k1", "CONFLICT")]))
        assert "batch 1: +2 -0" in change.summary()
        assert change.render(limit=1).count("\n") == 2  # summary + 1 + more
        assert "more changes" in change.render(limit=1)

    def test_matches_batch_detector_report(self):
        from repro.quality import Detector

        det = self._detector()
        det.apply(Delta(inserts=[("k1", "CONFLICT"), ("k2", "v2")]))
        cold = Detector([FD("a", "b")]).detect(
            Relation.from_rows(det.relation.schema, det.relation.rows())
        )
        assert {v.tuples for v in det.report().violations} == {
            v.tuples for v in cold.violations
        }


class TestDispatch:
    def test_registry_covers_issue_families(self):
        assert set(CHECKER_REGISTRY) == {"FD", "AFD", "CFD", "MFD", "DC", "SD"}

    def test_pairwise_rules_use_reprobe(self):
        r = _rel([("x", "1"), ("y", "2")], numerical=("b",))
        c = checker_for(DD({"b": (0, 1)}, {"b": (0, 5)}), r)
        assert isinstance(c, PairProbeChecker)

    def test_unsupported_rule_falls_back(self):
        r = _rel([("x", "1"), ("y", "2")])
        c = checker_for(MVD("a", "b"), r)
        assert type(c) is FullRecomputeChecker


class TestRulesIO:
    def test_parse_each_kind(self):
        rules = parse_rules(
            {
                "rules": [
                    {"kind": "FD", "lhs": ["a"], "rhs": ["b"]},
                    {"kind": "AFD", "lhs": "a", "rhs": "b", "max_error": 0.1},
                    {"kind": "CFD", "lhs": ["a"], "rhs": ["b"],
                     "pattern": {"a": "k1", "b": "_"}},
                    {"kind": "MFD", "lhs": ["a"], "rhs": ["c"], "delta": 2},
                    {"kind": "DD", "lhs": {"c": [0, 1]}, "rhs": {"d": 5}},
                    {"kind": "MD", "lhs": {"a": 1}, "rhs": ["b"]},
                    {"kind": "OD", "lhs": ["c"], "rhs": [["d", ">="]]},
                    {"kind": "SD", "lhs": ["c"], "rhs": "d", "gap": [1, None]},
                    {"kind": "DC", "predicates": [
                        {"attr1": "c", "op": ">", "attr2": "c"},
                        {"attr": "d", "op": ">", "const": 10}]},
                ]
            }
        )
        kinds = [type(r).__name__ for r in rules]
        assert kinds == [
            "FD", "AFD", "CFD", "MFD", "DD", "MD", "OD", "SD", "DC",
        ]

    def test_wildcard_pattern_entries_dropped(self):
        cfd = parse_rule(
            {"kind": "CFD", "lhs": ["a"], "rhs": ["b"],
             "pattern": {"a": "_", "b": "x"}}
        )
        assert "a" not in cfd.pattern.constants()

    def test_known_notation_without_builder(self):
        with pytest.raises(RuleFileError, match="Multivalued"):
            parse_rule({"kind": "MVD", "lhs": ["a"], "rhs": ["b"]})

    def test_unknown_kind_lists_table2(self):
        with pytest.raises(RuleFileError, match="Table 2"):
            parse_rule({"kind": "XYZ"})

    def test_missing_field_and_bad_json(self, tmp_path):
        with pytest.raises(RuleFileError, match="missing"):
            parse_rule({"kind": "FD", "lhs": ["a"]})
        bad = tmp_path / "rules.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(RuleFileError, match="invalid JSON"):
            load_rules(bad)
        with pytest.raises(RuleFileError, match="rules"):
            parse_rules({"no": "rules"})


@pytest.fixture
def watch_files(tmp_path):
    csv = tmp_path / "data.csv"
    csv.write_text(
        "a,b\nk1,v1\nk1,v1\nk2,v2\n", encoding="utf-8"
    )
    rules = tmp_path / "rules.json"
    rules.write_text(
        json.dumps({"rules": [{"kind": "FD", "lhs": ["a"], "rhs": ["b"]}]}),
        encoding="utf-8",
    )
    log = tmp_path / "log.jsonl"
    log.write_text(
        json.dumps({"insert": [["k1", "BAD"]]})
        + "\n"
        + json.dumps({"delete": [3]})
        + "\n",
        encoding="utf-8",
    )
    return csv, rules, log


class TestWatchCLI:
    def test_replay_clean_exit(self, watch_files, capsys):
        csv, rules, log = watch_files
        code = main(["watch", str(csv), "--rules", str(rules),
                     "--log", str(log)])
        out = capsys.readouterr().out
        assert code == 0
        assert "batch 1: +2 -0" in out
        assert "batch 2: +0 -2" in out
        assert "0 violations remaining" in out

    def test_dirty_final_state_exits_1(self, watch_files, tmp_path, capsys):
        csv, rules, __ = watch_files
        log = tmp_path / "dirty.jsonl"
        log.write_text(
            json.dumps({"insert": [["k1", "BAD"]]}) + "\n", encoding="utf-8"
        )
        code = main(["watch", str(csv), "--rules", str(rules),
                     "--log", str(log)])
        assert code == 1
        assert "2 violations remaining" in capsys.readouterr().out

    def test_bad_batch_exits_2(self, watch_files, tmp_path, capsys):
        csv, rules, __ = watch_files
        log = tmp_path / "bad.jsonl"
        log.write_text('{"delete": [99]}\n', encoding="utf-8")
        code = main(["watch", str(csv), "--rules", str(rules),
                     "--log", str(log)])
        assert code == 2
        assert "bad mutation batch" in capsys.readouterr().out

    def test_check_accepts_rule_file(self, watch_files, capsys):
        csv, rules, __ = watch_files
        code = main(["check", str(csv), "--rules", str(rules)])
        assert code == 0
        assert "[ok]" in capsys.readouterr().out

    def test_check_requires_some_rule(self, watch_files, capsys):
        csv, __, __ = watch_files
        code = main(["check", str(csv)])
        assert code == 2
        assert "nothing to check" in capsys.readouterr().out
