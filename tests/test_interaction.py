"""Tests for interleaved matching + repairing (Section 3.7.4)."""


from repro.core import CFD, FD, MD
from repro.quality import interactive_clean
from repro.relation import Attribute, AttributeType, Relation, Schema


def source_relation():
    """Two records of one hotel with divergent names and a wrong zip,
    plus a CFD anchor record.

    Matching on address identifies the zips; once zips agree, the CFD
    (zip -> city) can repair the city — the mutual-enablement story.
    """
    schema = Schema(
        [
            Attribute("name", AttributeType.TEXT),
            Attribute("address", AttributeType.TEXT),
            Attribute("zip", AttributeType.CATEGORICAL),
            Attribute("city", AttributeType.CATEGORICAL),
        ]
    )
    return Relation.from_rows(
        schema,
        [
            ("Grand Hotel", "1 Main St", "10001", "New York"),
            ("Grand Htl", "1 Main St", "99999", "Newark"),
            ("Plaza", "5 Side Ave", "10001", "New York"),
        ],
    )


class TestInteractiveClean:
    def test_matching_enables_repair(self):
        r = source_relation()
        mds = [MD({"address": 0}, "zip")]
        cfds = [CFD("zip", "city")]
        # The CFD alone cannot fire on t2: its wrong zip (99999) is
        # internally consistent with its wrong city, so zip -> city
        # holds on the dirty data; only matching exposes the conflict.
        assert CFD("zip", "city").holds(r)
        assert not FD("address", "zip").holds(r)
        cleaned, trace = interactive_clean(r, cfds, mds)
        assert CFD("zip", "city").holds(cleaned)
        assert FD("address", "zip").holds(cleaned)
        assert cleaned.value_at(1, "zip") == "10001"
        assert cleaned.value_at(1, "city") == "New York"
        assert trace.converged
        assert trace.total_changes() >= 2

    def test_clean_input_converges_immediately(self):
        r = source_relation()
        mds = [MD({"address": 0}, "zip")]
        cfds = [CFD("zip", "city")]
        cleaned, __ = interactive_clean(r, cfds, mds)
        again, trace = interactive_clean(cleaned, cfds, mds)
        assert again == cleaned
        assert len(trace.rounds) == 1
        assert trace.rounds[0].total == 0

    def test_round_cap_respected(self):
        r = source_relation()
        __, trace = interactive_clean(
            r, [CFD("zip", "city")], [MD({"address": 0}, "zip")],
            max_rounds=1,
        )
        assert len(trace.rounds) == 1

    def test_no_rules_is_noop(self):
        r = source_relation()
        cleaned, trace = interactive_clean(r, [], [MD({"address": 0}, "zip")])
        # identification may still fire; but with no CFDs only matching
        # changes the data, and the loop still terminates.
        assert trace.rounds
