"""Property tests: compiled plan kernels must agree with the naive scan.

Every notation with a pair plan is driven over random relations —
mixed ``None``/NaN/bool/int/float/str cells, the same hostile pool as
``test_encoding_parity`` — and the violations produced by the pruned
kernels (``plan_mode("plan")``) must be *identical*, in order, to the
reference quadratic scan (``plan_mode("naive")``): same pairs, same
reasons.  ``holds()`` and the kernel-level ``restrict``/``first_only``
modes are covered as well.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.heterogeneous.cd import CD, SimilarityFunction
from repro.core.heterogeneous.dd import CDD, DD
from repro.core.heterogeneous.ffd import FFD
from repro.core.heterogeneous.md import CMD, MD
from repro.core.heterogeneous.mfd import MFD
from repro.core.heterogeneous.ned import NED
from repro.core.heterogeneous.pac import PAC
from repro.core.categorical.fd import FD
from repro.core.numerical.dc import DC, pred2, predc
from repro.core.numerical.od import OD
from repro.core.numerical.ofd import OFD
from repro.plan import pairwise_violations, plan_mode
from repro.relation import Attribute, AttributeType, Relation, Schema

# A single shared NaN object: dict-key semantics (identity shortcut)
# make repeated occurrences group together; both paths must agree.
NAN = float("nan")

MIXED = st.sampled_from(
    [None, 0, 1, 2, 3, True, False, 1.0, 2.5, -1, "x", "y", "", NAN]
)


@st.composite
def relations(draw, max_cols=3, max_rows=16):
    n_cols = draw(st.integers(min_value=3, max_value=max_cols))
    n_rows = draw(st.integers(min_value=0, max_value=max_rows))
    schema = Schema(
        [
            Attribute(f"A{c}", AttributeType.CATEGORICAL)
            for c in range(n_cols)
        ]
    )
    rows = [
        tuple(draw(MIXED) for __ in range(n_cols)) for __ in range(n_rows)
    ]
    return Relation.from_rows(schema, rows)


def make_dependencies():
    """One representative per plan-compiled notation, over A0..A2."""
    return [
        FD(["A0"], ["A1"]),
        FD(["A0", "A1"], ["A2"]),
        MFD(["A0"], ["A1"], 1.0),
        NED({"A0": 2.0}, {"A1": 1.0}),
        DD({"A0": ("<=", 2.0)}, {"A1": (">", 1.0)}),
        DD({"A0": (">=", 3.0)}, {"A1": ("<=", 2.0)}),
        CDD({"A0": ("<=", 2.0)}, {"A1": (">", 1.0)}, {"A2": "x"}),
        MD({"A0": 2.0}, ["A1"]),
        CMD({"A0": 2.0}, "A1", {"A2": 1}),
        CD(
            [SimilarityFunction("A0", "A1", threshold_ij=2.0)],
            SimilarityFunction("A1", "A2", threshold_ij=1.0),
        ),
        FFD(["A0"], ["A1"]),
        PAC({"A0": 2.0}, {"A1": 1.0}, 0.8),
        OD([("A0", "<=")], [("A1", "<=")]),
        OD([("A0", "<")], [("A1", ">=")]),
        OFD(["A0"], ["A1"], ordering="pointwise"),
        OFD(["A0", "A1"], ["A2"], ordering="lex"),
        DC([pred2("A0", "="), pred2("A1", "!=")]),
        DC([pred2("A0", "<="), pred2("A1", ">")]),
        DC([pred2("A0", "<", "A1")]),
        DC([predc("A0", ">", 1.0), predc("A1", "<=", 2.0)]),
        DC([pred2("A0", "="), predc("A2", "=", "x")]),
    ]


def snapshot(dep, relation):
    """Violations as a comparable, order-preserving list."""
    return [(v.tuples, v.reason) for v in dep.violations(relation)]


@given(relations())
@settings(max_examples=60, deadline=None)
def test_violations_parity(relation):
    for dep in make_dependencies():
        with plan_mode("naive"):
            expected = snapshot(dep, relation)
        with plan_mode("plan"):
            got = snapshot(dep, relation)
        assert got == expected, f"plan/naive divergence for {dep.label()}"


@given(relations())
@settings(max_examples=40, deadline=None)
def test_holds_parity(relation):
    for dep in make_dependencies():
        with plan_mode("naive"):
            expected = dep.holds(relation)
        with plan_mode("plan"):
            got = dep.holds(relation)
        assert got == expected, f"holds() divergence for {dep.label()}"


@given(relations(), st.sets(st.integers(min_value=0, max_value=15)))
@settings(max_examples=40, deadline=None)
def test_restrict_parity(relation, restrict):
    """Kernel ``restrict`` equals the naive scan filtered to touched rows.

    This is the contract ``PairProbeChecker`` relies on when it re-probes
    only pairs involving a changed row.
    """
    restrict = {r for r in restrict if r < len(relation)}
    pairwise = [
        d
        for d in make_dependencies()
        if hasattr(type(d), "pair_violation") and not isinstance(d, PAC)
    ]
    for dep in pairwise:
        with plan_mode("naive"):
            expected = [
                ((i, j), reason)
                for i, j in relation.tuple_pairs()
                if (i in restrict or j in restrict)
                and (reason := dep.pair_violation(relation, i, j))
                is not None
            ]
        with plan_mode("plan"):
            got = [
                (v.tuples, v.reason)
                for v in pairwise_violations(dep, relation, restrict=restrict)
            ]
        assert got == expected, f"restrict divergence for {dep.label()}"


@given(relations())
@settings(max_examples=40, deadline=None)
def test_first_only_matches_existence(relation):
    pairwise = [
        d
        for d in make_dependencies()
        if hasattr(type(d), "pair_violation") and not isinstance(d, PAC)
    ]
    for dep in pairwise:
        with plan_mode("naive"):
            any_naive = any(
                dep.pair_violation(relation, i, j) is not None
                for i, j in relation.tuple_pairs()
            )
        with plan_mode("plan"):
            first = pairwise_violations(dep, relation, first_only=True)
        assert bool(first) == any_naive, (
            f"first_only divergence for {dep.label()}"
        )
