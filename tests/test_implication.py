"""Tests for FD implication reasoning (Armstrong toolkit)."""

import itertools
import random

import pytest

from repro.core import FD
from repro.core.implication import (
    armstrong_relation,
    closed_sets,
    closure,
    equivalent,
    implies,
    minimal_cover,
)

ABC = ["a", "b", "c", "d"]


class TestClosureAndImplication:
    def test_closure_transitivity(self):
        fds = [FD("a", "b"), FD("b", "c")]
        assert closure(["a"], fds) == {"a", "b", "c"}

    def test_implies_transitive_fd(self):
        fds = [FD("a", "b"), FD("b", "c")]
        assert implies(fds, FD("a", "c"))
        assert not implies(fds, FD("c", "a"))

    def test_reflexivity_always_implied(self):
        assert implies([], FD(["a", "b"], "a"))

    def test_augmentation(self):
        fds = [FD("a", "b")]
        assert implies(fds, FD(["a", "c"], ["b", "c"]))

    def test_equivalent_covers(self):
        a = [FD("a", ["b", "c"])]
        b = [FD("a", "b"), FD("a", "c")]
        assert equivalent(a, b)
        assert not equivalent(a, [FD("a", "b")])


class TestMinimalCover:
    def test_splits_rhs(self):
        cover = minimal_cover([FD("a", ["b", "c"])])
        assert all(len(dep.rhs) == 1 for dep in cover)

    def test_removes_redundant(self):
        fds = [FD("a", "b"), FD("b", "c"), FD("a", "c")]
        cover = minimal_cover(fds)
        assert equivalent(cover, fds)
        assert len(cover) == 2  # a -> c is implied transitively

    def test_left_reduction(self):
        fds = [FD("a", "b"), FD(["a", "c"], "b")]
        cover = minimal_cover(fds)
        assert equivalent(cover, fds)
        assert all(dep.lhs == ("a",) for dep in cover)

    def test_drops_trivial(self):
        assert minimal_cover([FD(["a", "b"], "a")]) == []

    @pytest.mark.parametrize("seed", range(8))
    def test_random_sets_stay_equivalent(self, seed):
        rng = random.Random(seed)
        fds = []
        for __ in range(5):
            lhs = rng.sample(ABC, rng.randint(1, 2))
            rhs = rng.sample([x for x in ABC if x not in lhs], 1)
            fds.append(FD(lhs, rhs))
        cover = minimal_cover(fds)
        assert equivalent(cover, fds)


class TestClosedSets:
    def test_full_set_always_closed(self):
        sets = closed_sets(ABC, [FD("a", "b")])
        assert frozenset(ABC) in sets

    def test_closed_property(self):
        fds = [FD("a", "b"), FD("c", "d")]
        for s in closed_sets(ABC, fds):
            assert closure(s, fds) == s


class TestArmstrongRelation:
    @pytest.mark.parametrize(
        "fds",
        [
            [],
            [FD("a", "b")],
            [FD("a", "b"), FD("b", "c")],
            [FD(["a", "b"], "c")],
            [FD("a", "b"), FD("b", "a")],
        ],
        ids=["empty", "single", "chain", "composite", "cycle"],
    )
    def test_satisfies_exactly_implied_fds(self, fds):
        names = ["a", "b", "c"]
        rel = armstrong_relation(names, fds)
        for size in (1, 2):
            for lhs in itertools.combinations(names, size):
                for a in names:
                    if a in lhs:
                        continue
                    candidate = FD(lhs, (a,))
                    assert candidate.holds(rel) == implies(fds, candidate), (
                        f"{candidate} disagrees"
                    )

    def test_nonempty(self):
        rel = armstrong_relation(["a", "b"], [FD("a", "b")])
        assert len(rel) >= 2
