"""Tests for the future-direction pilots (Section 5)."""

import networkx as nx
import pytest

from repro.core import FD
from repro.frontier import (
    NeighborhoodConstraint,
    SpeedConstraint,
    UncertainRelation,
    holds_horizontally,
    holds_vertically,
    repair_distance,
    repair_labels,
    screen_repair,
    violating_edges,
)


class TestUncertain:
    def test_certain_relation_consistency(self, r5):
        """Horizontal/vertical FDs coincide with plain FDs when the
        relation carries no uncertainty — the [81] consistency property."""
        urel = UncertainRelation(r5.schema, r5.rows())
        for lhs in ("address", "name"):
            dep = FD(lhs, "region")
            expected = dep.holds(r5)
            assert holds_horizontally(urel, dep) == expected
            assert holds_vertically(urel, dep) == expected

    def test_vertical_weaker_than_horizontal(self):
        urel = UncertainRelation(
            ["k", "v"],
            [(1, ("a", "b")), (1, "a")],
        )
        dep = FD("k", "v")
        assert not holds_horizontally(urel, dep)  # world with v=b breaks
        assert holds_vertically(urel, dep)        # world with v=a works

    def test_world_count(self):
        urel = UncertainRelation(["a"], [(("x", "y"),)])
        assert urel.world_count() == 2
        assert len(list(urel.possible_worlds())) == 2

    def test_certain_world_extraction(self, r7):
        urel = UncertainRelation(r7.schema, r7.rows())
        assert urel.certain_world() == r7

    def test_certain_world_raises_on_uncertain(self):
        urel = UncertainRelation(["a"], [(("x", "y"),)])
        with pytest.raises(ValueError):
            urel.certain_world()

    def test_empty_alternatives_rejected(self):
        with pytest.raises(ValueError):
            UncertainRelation(["a"], [((),)])


class TestGraph:
    def _line_graph(self, labels):
        g = nx.path_graph(len(labels))
        for i, lab in enumerate(labels):
            g.nodes[i]["label"] = lab
        return g

    def test_violating_edges(self):
        constraint = NeighborhoodConstraint([("a", "b"), ("b", "c")])
        g = self._line_graph(["a", "b", "a", "c"])
        bad = violating_edges(g, constraint)
        assert bad == [(2, 3)]  # a-c not allowed

    def test_repair_fixes_labels(self):
        constraint = NeighborhoodConstraint([("a", "b")])
        g = self._line_graph(["a", "b", "a", "c"])
        repaired, log = repair_labels(g, constraint)
        assert violating_edges(repaired, constraint) == []
        assert log  # something was relabeled

    def test_from_specification(self):
        spec = self._line_graph(["start", "work", "end"])
        constraint = NeighborhoodConstraint.from_specification(spec)
        assert constraint.allows("start", "work")
        assert not constraint.allows("start", "end")

    def test_clean_graph_untouched(self):
        constraint = NeighborhoodConstraint([("a", "b")])
        g = self._line_graph(["a", "b", "a"])
        repaired, log = repair_labels(g, constraint)
        assert log == []


class TestTemporal:
    def test_violations_within_window(self):
        sc = SpeedConstraint(-5, 5, window=10)
        series = [(0, 0), (1, 3), (2, 100)]
        bad = sc.violations(series)
        assert (1, 2) in bad
        assert (0, 1) not in bad

    def test_window_limits_comparisons(self):
        sc = SpeedConstraint(-1, 1, window=1)
        series = [(0, 0), (10, 100)]  # outside the window
        assert sc.satisfied(series)

    def test_screen_repair_fixes_spike(self):
        sc = SpeedConstraint(-5, 5, window=100)
        series = [(t, 2.0 * t) for t in range(10)]
        dirty = list(series)
        dirty[5] = (5, 500.0)
        repaired = screen_repair(dirty, sc)
        assert sc.satisfied(repaired)
        # Clean points unchanged.
        for k in (0, 1, 2, 3, 4, 6, 7, 8, 9):
            assert repaired[k][1] == pytest.approx(dirty[k][1])

    def test_repair_cost_only_from_spike(self):
        sc = SpeedConstraint(-5, 5, window=100)
        series = [(t, 2.0 * t) for t in range(10)]
        dirty = list(series)
        dirty[5] = (5, 500.0)
        repaired = screen_repair(dirty, sc)
        cost = repair_distance(dirty, repaired)
        assert cost > 0
        assert repair_distance(series, screen_repair(series, sc)) == 0

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            SpeedConstraint(5, -5)
        with pytest.raises(ValueError):
            SpeedConstraint(0, 1, window=0)

    def test_empty_series(self):
        assert screen_repair([], SpeedConstraint(-1, 1)) == []
