"""Error paths of the rule-file loader: every malformed input is a
typed, actionable :class:`RuleFileError` (an ``InputError``)."""

import json

import pytest

from repro.rules_io import RuleFileError, load_rules, parse_rule, parse_rules
from repro.runtime import InputError, ReproError


class TestUnknownNotation:
    def test_typo_lists_table2_vocabulary(self):
        with pytest.raises(RuleFileError, match="Table 2"):
            parse_rule({"kind": "FDD", "lhs": ["a"], "rhs": ["b"]})

    def test_known_notation_without_constructor(self):
        # MVD is a Table-2 notation but has no rule-file builder yet;
        # the message must say so, distinctly from a typo.
        with pytest.raises(RuleFileError, match="no rule-file constructor"):
            parse_rule({"kind": "MVD", "lhs": ["a"], "rhs": ["b"]})

    def test_missing_kind(self):
        with pytest.raises(RuleFileError, match="no 'kind'"):
            parse_rule({"lhs": ["a"], "rhs": ["b"]})

    def test_non_object_rule(self):
        with pytest.raises(RuleFileError, match="JSON object"):
            parse_rule(["FD", "a", "b"])


class TestMissingFields:
    @pytest.mark.parametrize(
        "rule, missing",
        [
            ({"kind": "FD", "lhs": ["a"]}, "rhs"),
            ({"kind": "FD", "rhs": ["b"]}, "lhs"),
            ({"kind": "AFD", "lhs": "a"}, "rhs"),
            ({"kind": "MFD", "lhs": ["a"], "rhs": ["b"]}, "delta"),
            ({"kind": "DD", "lhs": {"a": 1}}, "rhs"),
            ({"kind": "MD", "rhs": ["b"]}, "lhs"),
            ({"kind": "OD", "lhs": ["a"]}, "rhs"),
            ({"kind": "SD", "rhs": "b"}, "lhs"),
            ({"kind": "DC"}, "predicates"),
        ],
    )
    def test_missing_field_named_in_message(self, rule, missing):
        with pytest.raises(RuleFileError, match=missing):
            parse_rule(rule)


class TestWrongTypes:
    def test_dd_side_must_be_mapping(self):
        with pytest.raises(RuleFileError, match="non-empty"):
            parse_rule({"kind": "DD", "lhs": ["a"], "rhs": {"b": 0}})

    def test_md_lhs_must_be_mapping(self):
        with pytest.raises(RuleFileError, match="threshold"):
            parse_rule({"kind": "MD", "lhs": ["street"], "rhs": ["zip"]})

    def test_dc_predicates_must_be_nonempty_list(self):
        with pytest.raises(RuleFileError, match="non-empty"):
            parse_rule({"kind": "DC", "predicates": []})

    def test_dc_predicate_must_be_object(self):
        with pytest.raises(RuleFileError, match="predicate"):
            parse_rule({"kind": "DC", "predicates": ["a < b"]})

    def test_dc_constant_atom_needs_const(self):
        with pytest.raises(RuleFileError, match="const"):
            parse_rule(
                {"kind": "DC", "predicates": [{"attr": "x", "op": "<"}]}
            )

    def test_builder_crash_is_wrapped(self):
        # Structurally present fields with garbage inside must surface
        # as a RuleFileError naming the kind, not a raw TypeError.
        with pytest.raises(RuleFileError, match="bad FD rule"):
            parse_rule({"kind": "FD", "lhs": 42, "rhs": ["b"]})


class TestDocumentShape:
    def test_missing_rules_key(self):
        with pytest.raises(RuleFileError, match="'rules'"):
            parse_rules({"rule": []})

    def test_rules_not_a_list(self):
        with pytest.raises(RuleFileError, match="non-empty list"):
            parse_rules({"rules": "FD"})

    def test_empty_rules_list(self):
        with pytest.raises(RuleFileError, match="non-empty list"):
            parse_rules({"rules": []})

    def test_invalid_json_file(self, tmp_path):
        p = tmp_path / "rules.json"
        p.write_text("{not json", encoding="utf-8")
        with pytest.raises(RuleFileError, match="invalid JSON"):
            load_rules(p)

    def test_valid_file_roundtrip(self, tmp_path):
        p = tmp_path / "rules.json"
        p.write_text(
            json.dumps({"rules": [{"kind": "FD", "lhs": ["a"],
                                   "rhs": ["b"]}]}),
            encoding="utf-8",
        )
        (rule,) = load_rules(p)
        assert str(rule) == "a -> b"


class TestRuleIds:
    def test_duplicate_id_names_both_locations(self):
        payload = {
            "rules": [
                {"kind": "FD", "lhs": ["a"], "rhs": ["b"], "id": "r1"},
                {"kind": "FD", "lhs": ["b"], "rhs": ["c"]},
                {"kind": "FD", "lhs": ["a"], "rhs": ["c"], "id": "r1"},
            ]
        }
        with pytest.raises(RuleFileError, match="first declared at") as ei:
            parse_rules(payload)
        message = str(ei.value)
        assert "duplicate rule id 'r1'" in message
        assert "#rules[0]" in message
        assert "#rules[2]" in message

    def test_duplicate_id_in_file_names_the_file(self, tmp_path):
        p = tmp_path / "rules.json"
        p.write_text(
            json.dumps(
                {
                    "rules": [
                        {"kind": "FD", "lhs": ["a"], "rhs": ["b"],
                         "id": "x"},
                        {"kind": "FD", "lhs": ["b"], "rhs": ["a"],
                         "id": "x"},
                    ]
                }
            ),
            encoding="utf-8",
        )
        with pytest.raises(RuleFileError, match="duplicate rule id") as ei:
            load_rules(p)
        assert str(p) in str(ei.value)

    def test_non_string_id_rejected(self):
        with pytest.raises(RuleFileError, match="'id' must be a string"):
            parse_rules(
                {"rules": [{"kind": "FD", "lhs": ["a"], "rhs": ["b"],
                            "id": 7}]}
            )

    def test_distinct_ids_accepted_and_exposed(self):
        from repro.rules_io import parse_rules_with_meta

        entries = parse_rules_with_meta(
            {
                "rules": [
                    {"kind": "FD", "lhs": ["a"], "rhs": ["b"],
                     "id": "zip-city"},
                    {"kind": "FD", "lhs": ["b"], "rhs": ["c"]},
                ]
            },
            source="inline.json",
        )
        assert entries[0].name == "zip-city"
        assert entries[1].name == entries[1].dependency.label()
        assert entries[0].location == "inline.json#rules[0]"


class TestTaxonomyIntegration:
    def test_rule_file_error_is_typed(self):
        try:
            parse_rule({"kind": "nope"})
        except RuleFileError as exc:
            assert isinstance(exc, InputError)
            assert isinstance(exc, ReproError)
            assert isinstance(exc, ValueError)
        else:  # pragma: no cover
            pytest.fail("expected RuleFileError")

    def test_cli_reports_rule_file_error(self, tmp_path, capsys):
        from repro.cli import main

        csv = tmp_path / "d.csv"
        csv.write_text("a,b\n1,2\n", encoding="utf-8")
        rules = tmp_path / "rules.json"
        rules.write_text('{"rules": [{"kind": "XX"}]}', encoding="utf-8")
        code = main(["check", str(csv), "--rules", str(rules)])
        assert code == 2
        assert "[error]" in capsys.readouterr().out
