"""End-to-end integration: discovery -> detection -> repair pipelines."""


from repro.core import DD, FD, MD, SD
from repro.datasets import (
    fd_workload,
    heterogeneous_workload,
    ordered_workload,
)
from repro.discovery import (
    discover_csd_tableau,
    discover_dds,
    tane,
)
from repro.quality import Deduplicator, Detector, repair_fds, verify_repair


class TestCategoricalPipeline:
    def test_discover_detect_repair(self):
        """AFD discovery on dirty data -> exact repair -> all FDs hold."""
        w = fd_workload(150, 15, error_rate=0.05, seed=11)
        # 1. Discover approximate FDs tolerant to the injected noise.
        approx = tane(w.relation, epsilon=0.1, max_lhs_size=1)
        rules = [
            FD(d.lhs, d.rhs)
            for d in approx
            if d.lhs == ("code",) and d.rhs[0] in ("city", "state")
        ]
        assert rules, "expected code -> city/state to be discovered"
        # 2. Detect: injected errors are all flagged.
        quality = Detector(rules).score(w.relation, w.error_tuples)
        assert quality.recall == 1.0
        # 3. Repair: majority restores exact satisfaction.
        repaired, log = repair_fds(w.relation, rules)
        assert verify_repair(repaired, rules)
        # 4. Most repairs match the hidden clean data.
        agree = sum(
            1
            for i in range(len(repaired))
            if repaired.tuple_at(i) == w.clean.tuple_at(i)
        )
        assert agree / len(repaired) > 0.95

    def test_discovered_rules_hold_after_repair(self):
        w = fd_workload(100, 10, error_rate=0.06, seed=12)
        rules = [FD("code", "city"), FD("code", "state")]
        repaired, __ = repair_fds(w.relation, rules)
        post = tane(repaired, max_lhs_size=1)
        found = {str(d) for d in post}
        assert "code -> city" in found and "code -> state" in found


class TestHeterogeneousPipeline:
    def test_dd_discovery_then_dedup(self):
        """Discover a DD on heterogeneous data; use MD dedup to cluster."""
        w = heterogeneous_workload(
            15, 3, variant_rate=0.5, error_rate=0.0, seed=13
        )
        dds = discover_dds(
            w.relation, ["address"], ["city"], max_lhs_attrs=1
        )
        assert all(dd.holds(w.relation) for dd in dds)
        dedup = Deduplicator([MD({"address": 0}, "city")])
        quality = dedup.score(w.relation, w.duplicate_pairs)
        assert quality.f1 == 1.0

    def test_identification_then_fd_holds(self):
        """After enforcing the matching operator, the FD address->city
        (broken by format variants) holds again."""
        w = heterogeneous_workload(
            15, 3, variant_rate=0.5, error_rate=0.0, seed=14
        )
        fd = FD("address", "city")
        assert not fd.holds(w.relation)
        dedup = Deduplicator([MD({"address": 0}, "city")])
        identified = dedup.identify(w.relation)
        assert fd.holds(identified)


class TestNumericalPipeline:
    def test_sd_detection_and_csd_recovery(self):
        """Glitched series: the SD fails globally, the discovered CSD
        tableau isolates the clean stretches."""
        w = ordered_workload(60, glitch_rate=0.08, seed=3)
        sd = SD("t", "value", (0, 50))
        detector = Detector([sd])
        quality = detector.score(w.relation, w.error_tuples)
        assert quality.recall == 1.0  # every glitch breaks a gap
        csd = discover_csd_tableau(w.relation, sd, min_confidence=1.0)
        assert csd is not None and csd.holds(w.relation)

    def test_clean_series_needs_single_interval(self):
        w = ordered_workload(40, glitch_rate=0.0, seed=4)
        sd = SD("t", "value", (0, 50))
        csd = discover_csd_tableau(w.relation, sd)
        assert csd is not None
        assert len(csd.intervals) == 1
