"""Tests for metric-dependency discovery: MFD verify, DDs, MDs."""


from repro.core import MD, MFD
from repro.datasets import heterogeneous_workload
from repro.discovery import (
    candidate_thresholds,
    concise_matching_keys,
    discover_dds,
    discover_mds,
    discover_mds_approximate,
    discover_mfds,
    minimal_delta,
    pairwise_distances,
    verify_mfd,
    verify_mfd_approximate,
)


class TestMFDVerification:
    def test_verify_matches_holds(self, r6):
        mfd = MFD(["name", "region"], "price", 500)
        assert verify_mfd(r6, mfd) == mfd.holds(r6)
        assert verify_mfd_approximate(r6, mfd) == mfd.holds(r6)

    def test_minimal_delta_is_tight(self, r6):
        delta = minimal_delta(r6, ["region"], ["price"])
        assert MFD(["region"], "price", delta).holds(r6)
        if delta > 0:
            assert not MFD(["region"], "price", delta - 0.01).holds(r6)

    def test_minimal_delta_zero_for_fd(self, r6):
        # name,region -> price has distance 0 in every group of r6.
        assert minimal_delta(r6, ["name", "region"], ["price"]) == 0.0

    def test_discover_mfds_respects_cap(self, r6):
        found = discover_mfds(r6, max_delta=50.0)
        for dep in found:
            assert dep.delta <= 50.0
            assert dep.holds(r6)

    def test_discovered_deltas_are_minimal(self, r6):
        for dep in discover_mfds(r6, max_delta=100.0):
            if dep.delta > 0:
                tighter = MFD(dep.lhs, dep.rhs, dep.delta - 0.01,
                              registry=dep.registry)
                assert not tighter.holds(r6)


class TestThresholdDetermination:
    def test_pairwise_distances_sorted(self, r6):
        d = pairwise_distances(r6, "price")
        assert d == sorted(d)
        assert len(d) == 15  # C(6, 2)

    def test_candidate_thresholds_from_distribution(self):
        assert candidate_thresholds([0, 0, 1, 5, 100]) != []
        assert candidate_thresholds([]) == [0.0]
        small = candidate_thresholds([1.0, 2.0])
        assert small == [1.0, 2.0]

    def test_candidates_exclude_inf(self):
        cands = candidate_thresholds([1.0, float("inf")])
        assert float("inf") not in cands

    def test_sampled_when_large(self):
        from repro.datasets import fd_workload

        w = fd_workload(300, 10, seed=0)
        d = pairwise_distances(w.relation, "city", max_pairs=500)
        assert len(d) <= 500


class TestDDDiscovery:
    def test_discovered_dds_hold(self, r6):
        res = discover_dds(
            r6, ["name", "street"], ["address"], max_lhs_attrs=2
        )
        assert len(res) > 0
        for dep in res:
            assert dep.holds(r6)

    def test_subsumption_pruned(self, r6):
        res = discover_dds(r6, ["name", "street"], ["address"],
                           max_lhs_attrs=2)
        deps = list(res)
        for a in deps:
            for b in deps:
                assert a is b or not a.subsumes(b)


class TestMDDiscovery:
    def test_discovered_mds_meet_thresholds(self, r6):
        res = discover_mds(
            r6, "zip", ["street", "region"],
            min_support=0.01, min_confidence=1.0,
        )
        assert len(res) > 0
        for dep in res:
            assert dep.support(r6) >= 0.01
            assert dep.confidence(r6) == 1.0

    def test_workload_recall(self):
        w = heterogeneous_workload(15, 3, 0.4, 0.0, seed=1)
        res = discover_mds(
            w.relation, "city", ["address"],
            min_support=0.001, min_confidence=0.9,
        )
        # address similarity identifies same-entity records whose city
        # should be identified -> at least one matching rule survives
        # at lower confidence... with variants city differs, so
        # confidence may drop; just require the search to terminate
        # and all returned rules to meet their thresholds.
        for dep in res:
            assert dep.confidence(w.relation) >= 0.9

    def test_approximate_prefix(self, r6):
        res = discover_mds_approximate(
            r6, "zip", k=4, lhs_attributes=["street", "region"],
            min_support=0.01, min_confidence=1.0,
        )
        assert res.algorithm.startswith("MD-approx")

    def test_concise_matching_keys_cover(self, r6):
        candidates = [
            MD({"street": 5}, "zip"),
            MD({"region": 2}, "zip"),
            MD({"street": 5, "region": 2}, "zip"),
        ]
        target = [(1, 5), (1, 4), (4, 5)]
        chosen = concise_matching_keys(r6, candidates, target)
        assert chosen
        covered = {
            p
            for p in target
            if any(md.similar_on_lhs(r6, *p) for md in chosen)
        }
        full = {
            p
            for p in target
            if any(md.similar_on_lhs(r6, *p) for md in candidates)
        }
        assert covered == full

    def test_concise_keys_respects_cap(self, r6):
        candidates = [
            MD({"street": 5}, "zip"),
            MD({"region": 2}, "zip"),
        ]
        chosen = concise_matching_keys(
            r6, candidates, [(0, 2), (1, 5)], max_keys=1
        )
        assert len(chosen) <= 1
