"""Seeded fixtures for every stable diagnostic code of the analyzer.

One deliberately broken rule (or rule pair) per code DD001..DD009,
checked through :func:`repro.analysis.lint_entries`/``lint_rules`` and
— for the acceptance path — through the ``repro lint`` CLI with its
exit-code contract and ``--fix`` output.  The check/watch wiring
(implied-rule skipping, unsatisfiable fail-fast) is covered at the
detector and CLI levels.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    CODES,
    Severity,
    lint_entries,
    lint_rules,
    minimal_cover_entries,
    screen_rules,
    skippable_rules,
)
from repro.cli import main
from repro.core.categorical.afd import AFD
from repro.core.categorical.cfd import CFD
from repro.core.categorical.fd import FD
from repro.core.heterogeneous.dd import DD
from repro.core.numerical.dc import DC, pred2, predc
from repro.core.numerical.od import OD
from repro.core.numerical.sd import SD
from repro.incremental import IncrementalDetector
from repro.relation import Attribute, AttributeType, Relation, Schema
from repro.rules_io import parse_rules_with_meta
from repro.runtime import InputError

SCHEMA = Schema(
    [
        Attribute("zip", AttributeType.CATEGORICAL),
        Attribute("city", AttributeType.CATEGORICAL),
        Attribute("price", AttributeType.NUMERICAL),
        Attribute("name", AttributeType.TEXT),
    ]
)


def codes_of(report):
    return [d.code for d in report.diagnostics]


class TestPerRuleDiagnostics:
    def test_dd001_unknown_attribute(self):
        report = lint_rules([FD(["zip"], ["nope"])], schema=SCHEMA)
        assert codes_of(report) == ["DD001"]
        diag = report.diagnostics[0]
        assert diag.severity is Severity.ERROR
        assert "nope" in diag.message

    def test_dd002_order_comparison_on_categorical(self):
        dc = DC([pred2("zip", "<", "zip")])
        report = lint_rules([dc], schema=SCHEMA)
        assert "DD002" in codes_of(report)
        assert all(
            d.severity is not Severity.ERROR
            for d in report.diagnostics
            if d.code == "DD002"
        )

    def test_dd002_metric_on_categorical(self):
        report = lint_rules(
            [DD({"city": (0.0, 2.0)}, {"price": (0.0, 10.0)})],
            schema=SCHEMA,
        )
        assert "DD002" in codes_of(report)

    def test_dd002_sd_gap_on_categorical(self):
        report = lint_rules(
            [SD(["price"], "city", (0.0, 5.0))], schema=SCHEMA
        )
        assert "DD002" in codes_of(report)

    def test_dd003_unsatisfiable_dc(self):
        dc = DC([pred2("price", "<"), pred2("price", ">")])
        report = lint_rules([dc])
        assert codes_of(report) == ["DD003"]
        assert report.has_errors
        assert report.skippable == {0: "unsatisfiable"}

    def test_dd003_constant_interval_contradiction(self):
        dc = DC([predc("price", ">", 5.0), predc("price", "<", 3.0)])
        report = lint_rules([dc])
        assert codes_of(report) == ["DD003"]

    def test_dd004_trivial_fd_not_reported_as_unsatisfiable(self):
        # A trivial FD also compiles to an all-dead plan; DD004 must
        # win over DD003 (it holds everywhere, it doesn't "never fire").
        report = lint_rules([FD(["zip", "city"], ["zip"])])
        assert codes_of(report) == ["DD004"]
        assert report.skippable == {0: "trivial"}

    def test_dd004_trivial_od_and_dd_and_afd(self):
        report = lint_rules(
            [
                OD([("price", "<")], [("price", "<=")]),
                DD({"price": (0.0, 2.0)}, {"price": (0.0, 5.0)}),
                AFD(["zip", "city"], ["city"], 0.1),
            ]
        )
        assert codes_of(report) == ["DD004", "DD004", "DD004"]

    def test_dd005_partially_dead_clauses(self):
        # One live consequent (city) plus one contradicting a guard
        # (zip): exactly one deny clause is dead.
        report = lint_rules([FD(["zip"], ["city", "zip"])])
        assert codes_of(report) == ["DD005"]
        assert not report.has_errors
        assert report.skippable == {}

    def test_dd006_redundant_atom(self):
        dc = DC(
            [
                pred2("price", "<"),
                pred2("price", "<="),
                pred2("city", "="),
            ]
        )
        report = lint_rules([dc])
        assert "DD006" in codes_of(report)
        assert report.max_severity is Severity.INFO


class TestCrossRuleDiagnostics:
    def test_dd007_fd_implied_by_armstrong(self):
        report = lint_rules(
            [FD(["zip"], ["city"]), FD(["zip", "name"], ["city"])]
        )
        assert codes_of(report) == ["DD007"]
        assert report.diagnostics[0].rule == "FD: zip, name -> city"
        assert report.skippable == {1: "implied"}

    def test_dd007_fd_implied_by_wildcard_cfd(self):
        # The family-tree edge: a variable CFD with an all-wildcard
        # pattern is exactly its embedded FD.
        report = lint_rules(
            [CFD(["zip"], ["city"], {}), FD(["zip"], ["city"])]
        )
        assert codes_of(report) == ["DD007"]

    def test_dd007_dd_implied_by_tighter_dd(self):
        looser_lhs_tighter_rhs = DD(
            {"name": (0.0, 5.0)}, {"city": (0.0, 1.0)}
        )
        implied = DD({"name": (0.0, 3.0)}, {"city": (0.0, 2.0)})
        report = lint_rules([looser_lhs_tighter_rhs, implied])
        assert codes_of(report) == ["DD007"]
        assert report.diagnostics[0].location.endswith("rules[1]")

    def test_dd007_od_mark_weakening(self):
        report = lint_rules(
            [
                OD([("price", "<=")], [("name", "<")]),
                OD([("price", "<=")], [("name", "<=")]),
            ]
        )
        assert codes_of(report) == ["DD007"]

    def test_dd007_sd_gap_containment(self):
        report = lint_rules(
            [
                SD(["zip"], "price", (1.0, 2.0)),
                SD(["zip"], "price", (0.0, 5.0)),
            ]
        )
        assert codes_of(report) == ["DD007"]

    def test_fd_implies_afd_but_not_vice_versa(self):
        report = lint_rules(
            [FD(["zip"], ["city"]), AFD(["zip"], ["city"], 0.05)]
        )
        assert codes_of(report) == ["DD007"]
        # Order-independent: the AFD is the implied one either way (an
        # AFD never implies its exact FD, whose g3 tolerance is 0).
        report = lint_rules(
            [AFD(["zip"], ["city"], 0.05), FD(["zip"], ["city"])]
        )
        assert codes_of(report) == ["DD007"]
        assert report.diagnostics[0].rule.startswith("AFD")

    def test_md_does_not_imply_fd(self):
        # Unsound family-tree shortcut (NaN distances escape MDs).
        from repro.core.heterogeneous.md import MD

        report = lint_rules(
            [MD({"name": 0.0}, ["city"]), FD(["name"], ["city"])]
        )
        assert codes_of(report) == []

    def test_dd008_duplicate_rule(self):
        report = lint_rules([FD(["zip"], ["city"]), FD(["zip"], ["city"])])
        assert codes_of(report) == ["DD008"]
        assert report.skippable == {1: "duplicate"}

    def test_dd009_conflicting_sd_gaps(self):
        report = lint_rules(
            [
                SD(["zip"], "price", (0.0, 1.0)),
                SD(["zip"], "price", (2.0, 3.0)),
            ]
        )
        assert codes_of(report) == ["DD009"]
        assert report.has_errors

    def test_dd009_conflicting_od_marks(self):
        report = lint_rules(
            [
                OD([("price", "<")], [("name", "<")]),
                OD([("price", "<")], [("name", ">")]),
            ]
        )
        assert codes_of(report) == ["DD009"]

    def test_dd009_conflicting_constant_cfds(self):
        report = lint_rules(
            [
                CFD(["zip"], ["city"], {"zip": "10001", "city": "NYC"}),
                CFD(["zip"], ["city"], {"zip": "10001", "city": "LA"}),
            ]
        )
        assert codes_of(report) == ["DD009"]

    def test_dd009_conflicting_dd_ranges(self):
        report = lint_rules(
            [
                DD({"name": (0.0, 2.0)}, {"price": (0.0, 1.0)}),
                DD({"name": (0.0, 2.0)}, {"price": (5.0, 9.0)}),
            ]
        )
        assert codes_of(report) == ["DD009"]

    def test_minimal_cover_drops_implied_and_duplicates(self):
        entries = parse_rules_with_meta(
            {
                "rules": [
                    {"kind": "FD", "lhs": ["zip"], "rhs": ["city"]},
                    {"kind": "FD", "lhs": ["zip"], "rhs": ["city"]},
                    {"kind": "FD", "lhs": ["zip", "name"], "rhs": ["city"]},
                    {"kind": "SD", "lhs": ["zip"], "rhs": "price",
                     "gap": [0, 5]},
                ]
            }
        )
        kept = minimal_cover_entries(entries)
        assert [e.index for e in kept] == [0, 3]


class TestEvaluationWiring:
    def test_skippable_rules_fast_path(self):
        rules = [
            FD(["zip", "city"], ["zip"]),
            FD(["zip"], ["city"]),
            FD(["zip", "name"], ["city"]),
        ]
        assert skippable_rules(rules) == {0: "trivial", 2: "implied"}

    def test_screen_rules_raises_on_unsatisfiable(self):
        rules = [DC([pred2("price", "<"), pred2("price", ">")])]
        with pytest.raises(InputError, match="unsatisfiable"):
            screen_rules(rules)

    def test_detector_analyze_skips_and_reports(self):
        relation = Relation.from_rows(
            SCHEMA,
            [
                ("10001", "NYC", 5.0, "a"),
                ("10001", "LA", 7.0, "a"),
            ],
        )
        rules = [
            FD(["zip", "city"], ["zip"]),
            FD(["zip"], ["city"]),
            FD(["zip", "name"], ["city"]),
        ]
        detector = IncrementalDetector(rules, relation, analyze=True)
        assert detector.skipped_rules == {
            "FD: zip, city -> zip": "trivial",
            "FD: zip, name -> city": "implied",
        }
        # The active rule still reports its violations.
        assert len(detector.violations()) == 1
        # Default stays off: full parity with the cold detector.
        cold = IncrementalDetector(rules, relation)
        assert cold.skipped_rules == {}
        assert len(cold.violations()) == 2

    def test_detector_analyze_raises_on_unsatisfiable(self):
        relation = Relation.from_rows(SCHEMA, [])
        rules = [DC([pred2("price", "<"), pred2("price", ">")])]
        with pytest.raises(InputError, match="unsatisfiable"):
            IncrementalDetector(rules, relation, analyze=True)


@pytest.fixture()
def seeded_rule_file(tmp_path):
    path = tmp_path / "rules.json"
    path.write_text(
        json.dumps(
            {
                "rules": [
                    {
                        "id": "unsat-dc",
                        "kind": "DC",
                        "predicates": [
                            {"attr1": "price", "op": "<", "attr2": "price"},
                            {"attr1": "price", "op": ">", "attr2": "price"},
                        ],
                    },
                    {
                        "id": "trivial-fd",
                        "kind": "FD",
                        "lhs": ["zip", "city"],
                        "rhs": ["zip"],
                    },
                    {
                        "id": "zip-city",
                        "kind": "FD",
                        "lhs": ["zip"],
                        "rhs": ["city"],
                    },
                    {
                        "id": "implied-fd",
                        "kind": "FD",
                        "lhs": ["zip", "name"],
                        "rhs": ["city"],
                    },
                ]
            }
        ),
        encoding="utf-8",
    )
    return path


class TestLintCli:
    def test_acceptance_fixture_reports_three_codes(
        self, seeded_rule_file, capsys
    ):
        # ISSUE acceptance: unsatisfiable DC + tautological FD +
        # family-tree-implied rule -> three distinct codes, exit 1.
        assert main(["lint", str(seeded_rule_file)]) == 1
        out = capsys.readouterr().out
        for code, rule in (
            ("DD003", "unsat-dc"),
            ("DD004", "trivial-fd"),
            ("DD007", "implied-fd"),
        ):
            line = next(ln for ln in out.splitlines() if code in ln)
            assert rule in line
            assert "#rules[" in line  # source location is cited

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.json"
        path.write_text(
            json.dumps(
                {"rules": [{"kind": "FD", "lhs": ["zip"], "rhs": ["city"]}]}
            ),
            encoding="utf-8",
        )
        assert main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_warnings_only_exits_zero(self, tmp_path):
        path = tmp_path / "warn.json"
        path.write_text(
            json.dumps(
                {
                    "rules": [
                        {"kind": "FD", "lhs": ["zip", "city"],
                         "rhs": ["zip"]},
                    ]
                }
            ),
            encoding="utf-8",
        )
        assert main(["lint", str(path)]) == 0

    def test_fix_writes_minimized_rule_set(self, seeded_rule_file, capsys):
        out_path = seeded_rule_file.parent / "fixed.json"
        code = main(
            [
                "lint",
                str(seeded_rule_file),
                "--fix",
                "--output",
                str(out_path),
            ]
        )
        assert code == 1  # findings still reported
        fixed = json.loads(out_path.read_text(encoding="utf-8"))
        assert [r["id"] for r in fixed["rules"]] == ["zip-city"]
        # The minimized file lints clean.
        assert main(["lint", str(out_path)]) == 0

    def test_fix_defaults_to_in_place(self, seeded_rule_file):
        main(["lint", str(seeded_rule_file), "--fix"])
        fixed = json.loads(seeded_rule_file.read_text(encoding="utf-8"))
        assert [r["id"] for r in fixed["rules"]] == ["zip-city"]

    def test_csv_schema_enables_dd001(self, tmp_path, capsys):
        csv = tmp_path / "data.csv"
        csv.write_text("zip,city\n1,NYC\n", encoding="utf-8")
        path = tmp_path / "rules.json"
        path.write_text(
            json.dumps(
                {"rules": [{"kind": "FD", "lhs": ["zip"], "rhs": ["nope"]}]}
            ),
            encoding="utf-8",
        )
        assert main(["lint", str(path), "--csv", str(csv)]) == 1
        assert "DD001" in capsys.readouterr().out

    def test_malformed_file_exits_two(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        assert main(["lint", str(path)]) == 2


class TestCheckWatchCli:
    @pytest.fixture()
    def csv(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text(
            "zip,city,name\n10001,NYC,a\n10001,NYC,b\n90210,LA,c\n",
            encoding="utf-8",
        )
        return path

    def test_check_skips_implied_rules_with_stat(
        self, csv, tmp_path, capsys
    ):
        rules = tmp_path / "rules.json"
        rules.write_text(
            json.dumps(
                {
                    "rules": [
                        {"kind": "FD", "lhs": ["zip"], "rhs": ["city"]},
                        {"kind": "FD", "lhs": ["zip", "name"],
                         "rhs": ["city"]},
                    ]
                }
            ),
            encoding="utf-8",
        )
        assert main(["check", str(csv), "--rules", str(rules)]) == 0
        out = capsys.readouterr().out
        assert "[skip]" in out
        assert "statically implied" in out
        assert "1 of 2 rules skipped" in out

    def test_check_fails_fast_on_unsatisfiable(self, csv, tmp_path, capsys):
        rules = tmp_path / "rules.json"
        rules.write_text(
            json.dumps(
                {
                    "rules": [
                        {
                            "kind": "DC",
                            "predicates": [
                                {"attr1": "zip", "op": "<",
                                 "attr2": "zip"},
                                {"attr1": "zip", "op": ">",
                                 "attr2": "zip"},
                            ],
                        }
                    ]
                }
            ),
            encoding="utf-8",
        )
        assert main(["check", str(csv), "--rules", str(rules)]) == 2
        assert "unsatisfiable" in capsys.readouterr().out
        # Opt-out restores the old behaviour (the rule checks vacuously).
        assert (
            main(
                ["check", str(csv), "--rules", str(rules), "--no-analyze"]
            )
            == 0
        )


class TestDiagnosticVocabulary:
    def test_codes_are_stable_and_complete(self):
        assert list(CODES) == [f"DD00{i}" for i in range(1, 10)]

    def test_render_shape(self):
        from repro.analysis.diagnostics import UNKNOWN_ATTRIBUTE, make

        diag = make(
            UNKNOWN_ATTRIBUTE,
            "r1",
            "no such attribute",
            location="f.json#rules[0]",
            related=("f.json#rules[1]",),
        )
        text = diag.render()
        assert text.startswith("DD001 [error] r1 (f.json#rules[0]):")
        assert text.endswith("[see: f.json#rules[1]]")
