"""Unit tests for denial constraints."""

import pytest

from repro.core import (
    ALPHA,
    CFD,
    DC,
    ECFD,
    FD,
    OD,
    Conjunction,
    DependencyError,
    Predicate,
    pred2,
    predc,
)
from repro.relation import Relation


class TestPredicate:
    def test_two_tuple_evaluation(self, r7):
        p = pred2("subtotal", "<")
        assert p.evaluate(r7, {"a": 0, "b": 1})
        assert not p.evaluate(r7, {"a": 1, "b": 0})

    def test_constant_evaluation(self, r7):
        p = predc("nights", ">=", 3)
        assert p.evaluate(r7, {"a": 2})
        assert not p.evaluate(r7, {"a": 0})

    def test_none_never_satisfies(self):
        r = Relation.from_rows(["x"], [(None,), (1,)])
        p = pred2("x", "=")
        assert not p.evaluate(r, {"a": 0, "b": 1})

    def test_negation_involution(self):
        p = pred2("x", "<")
        assert p.negated().op == ">="
        assert p.negated().negated().op == "<"

    def test_bad_operator_rejected(self):
        with pytest.raises(DependencyError):
            Predicate("a", "x", "~", "b", "x")

    def test_bad_variable_rejected(self):
        with pytest.raises(DependencyError):
            Predicate("q", "x", "=", None, None, 1)


class TestDC:
    def test_paper_dc1_on_r7(self, r7):
        """Section 4.3.1: subtotal < & taxes > never co-hold on r7."""
        dc1 = DC([pred2("subtotal", "<"), pred2("taxes", ">")])
        assert dc1.holds(r7)

    def test_dc1_violation_when_order_broken(self, r7):
        broken = r7.with_value(0, "taxes", 999)
        dc1 = DC([pred2("subtotal", "<"), pred2("taxes", ">")])
        assert not dc1.holds(broken)
        vs = dc1.violations(broken)
        assert all(0 in v.tuples for v in vs)

    def test_single_tuple_dc(self, r7):
        dc = DC([predc("nights", ">", 10)])
        assert dc.holds(r7)
        bad = r7.with_value(0, "nights", 11)
        assert not bad is r7
        assert not dc.holds(bad)
        assert {v.tuples for v in dc.violations(bad)} == {(0,)}

    def test_constant_and_pairwise_mix(self, r5):
        """The paper's Section 1.6 rule: no price < 200 in Chicago —
        shaped as a single-tuple DC with two constant atoms."""
        r = Relation.from_rows(
            ["region", "price"],
            [("Chicago", 250), ("Chicago", 150), ("Boston", 100)],
        )
        dc = DC([predc("region", "=", "Chicago"), predc("price", "<", 200)])
        assert not dc.holds(r)
        assert {v.tuples for v in dc.violations(r)} == {(1,)}

    def test_empty_dc_rejected(self):
        with pytest.raises(DependencyError):
            DC([])

    def test_g3_error(self, r7):
        dc1 = DC([pred2("subtotal", "<"), pred2("taxes", ">")])
        assert dc1.g3_error(r7) == 0.0
        broken = r7.with_value(0, "taxes", 999)
        assert 0.0 < dc1.g3_error(broken) <= 0.5

    def test_width_and_equality(self):
        a = DC([pred2("x", "="), pred2("y", "!=")])
        b = DC([pred2("y", "!="), pred2("x", "=")])
        assert a == b
        assert a.width() == 2


class TestEmbeddings:
    def test_fd_embedding(self, r1, r5):
        for rel in (r1, r5):
            for lhs in rel.schema.names():
                for rhs in rel.schema.names():
                    if lhs == rhs:
                        continue
                    dep = FD(lhs, rhs)
                    assert DC.from_fd(dep).holds(rel) == dep.holds(rel)

    def test_fd_embedding_multi_rhs_rejected(self):
        with pytest.raises(DependencyError):
            DC.from_fd(FD("a", ["b", "c"]))

    def test_paper_dc2_od_embedding(self, r7):
        """Section 4.3.2: od1 as dc2."""
        od1 = OD([("nights", "<=")], [("avg/night", ">=")])
        dc2 = DC.from_od(od1)
        assert dc2.holds(r7) == od1.holds(r7)
        # structure check: the negated RHS mark is '<'
        ops = {p.op for p in dc2.predicates}
        assert ops == {"<=", "<"}

    def test_paper_dc3_ecfd_embedding(self, r5):
        """Section 4.3.3: ecfd1 as dc3."""
        e1 = ECFD(["rate", "name"], "address", {"rate": ("<=", 200)})
        dc3 = DC.from_ecfd(e1)
        assert dc3.holds(r5) == e1.holds(r5)

    def test_ecfd_constant_rhs_gives_two_dcs(self):
        e = ECFD("a", "b", {"a": 1, "b": 2})
        dcs = DC.from_ecfd_all(e)
        assert len(dcs) == 2
        r_ok = Relation.from_rows(["a", "b"], [(1, 2), (3, 9)])
        r_bad = Relation.from_rows(["a", "b"], [(1, 5)])
        assert Conjunction(dcs).holds(r_ok) == e.holds(r_ok) is True
        assert Conjunction(dcs).holds(r_bad) == e.holds(r_bad) is False

    def test_multi_rhs_od_embedding(self, r7):
        od = OD([("nights", "<=")], [("subtotal", "<="), ("taxes", "<=")])
        dcs = DC.from_od_all(od)
        assert len(dcs) == 2
        assert Conjunction(dcs).holds(r7) == od.holds(r7)
