"""The dependency-checking service: routes, jobs, observability.

Covers the acceptance path end to end over real sockets (register →
lint-rejected upload with DD codes → rule upload → batch stream →
violations → budget-exhausted discovery job polled to an honest
partial → /metrics) plus unit tests for the router, the metrics
registry, concurrent multi-tenant ingestion, and thread-safe kernel
counter snapshots.
"""

import http.client
import json
import threading

import pytest

from repro.incremental import IncrementalDetector
from repro.core import FD
from repro.datasets import random_relation
from repro.plan.kernels import KernelCounters
from repro.server import ReproApp
from repro.server.http import HttpError, Request
from repro.server.observability import Histogram, MetricsRegistry
from repro.server.routes import build_router

# ---------------------------------------------------------------------------
# helpers


@pytest.fixture(scope="module")
def server():
    app = ReproApp()
    handle = app.run_in_thread()
    yield handle
    handle.stop()


class Client:
    """A tiny keep-alive JSON client over http.client."""

    def __init__(self, handle):
        self.conn = http.client.HTTPConnection(
            handle.host, handle.port, timeout=30
        )

    def request(self, method, path, body=None, headers=None):
        payload = None if body is None else json.dumps(body)
        self.conn.request(method, path, body=payload, headers=headers or {})
        resp = self.conn.getresponse()
        raw = resp.read()
        if resp.getheader("Content-Type", "").startswith("application/json"):
            return resp.status, json.loads(raw) if raw else None
        return resp.status, raw.decode()

    def close(self):
        self.conn.close()


@pytest.fixture()
def client(server):
    c = Client(server)
    yield c
    c.close()


SCHEMA = [
    "city",
    "zip",
    {"name": "price", "type": "numerical"},
]

FD_RULES = {"rules": [{"kind": "FD", "lhs": ["zip"], "rhs": ["city"]}]}


def register(client, tenant, rows=None):
    body = {"tenant": tenant, "schema": SCHEMA}
    if rows is not None:
        body["rows"] = rows
    status, payload = client.request("POST", "/tenants", body)
    assert status == 201, payload
    return payload


def poll_job(client, job_id, tries=200):
    for _ in range(tries):
        status, job = client.request("GET", f"/jobs/{job_id}")
        assert status == 200
        if job["state"] in ("succeeded", "failed", "cancelled"):
            return job
        import time

        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish: {job}")


# ---------------------------------------------------------------------------
# the acceptance path, end to end


class TestEndToEnd:
    def test_health_and_version(self, client):
        status, body = client.request("GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        status, body = client.request("GET", "/version")
        assert status == 200 and body["name"] == "repro"

    def test_full_lifecycle(self, client, server):
        register(client, "acme")

        # 1. A rule over an unknown attribute is rejected with its DD
        #    code in the error body — the upload does not half-apply.
        status, body = client.request(
            "PUT",
            "/tenants/acme/rules",
            {"rules": [
                {"kind": "FD", "lhs": ["zip"], "rhs": ["city"]},
                {"kind": "FD", "lhs": ["zip"], "rhs": ["nope"]},
            ]},
        )
        assert status == 400
        codes = {d["code"] for d in body["diagnostics"]}
        assert "DD001" in codes
        assert body["rejected"] == ["FD: zip -> nope"]
        status, body = client.request("GET", "/tenants/acme/rules")
        assert body["rules"] == []  # nothing was applied

        # 2. A clean upload builds the changefeed detector.
        status, body = client.request(
            "PUT", "/tenants/acme/rules", FD_RULES
        )
        assert status == 200
        assert body["accepted"] == 1
        assert body["initial_violations"] == 0

        # 3. Stream three batches; the second introduces a violation,
        #    the third resolves nothing and adds clean rows.
        batches = [
            {"insert": [{"city": "Berlin", "zip": "10115", "price": 9.5}]},
            {"insert": [{"city": "Bonn", "zip": "10115", "price": 4.0}]},
            {"insert": [{"city": "Mainz", "zip": "55116", "price": 7.0}]},
        ]
        feed = []
        for batch in batches:
            status, change = client.request(
                "POST", "/tenants/acme/batches", batch
            )
            assert status == 200, change
            feed.append(change)
        assert [c["seq"] for c in feed] == [1, 2, 3]
        assert feed[1]["added"] == 1 and feed[1]["total_violations"] == 1
        assert feed[2]["added"] == 0 and feed[2]["total_violations"] == 1
        assert all(c["complete"] for c in feed)

        status, body = client.request("GET", "/tenants/acme/violations")
        assert status == 200
        assert body["total_violations"] == 1
        assert body["per_rule"] == {"FD: zip -> city": 1}
        assert body["quarantine"] == []

        # 4. Synchronous check over inline rows.
        status, body = client.request(
            "POST",
            "/tenants/acme/check",
            {"rows": [["A", "1", 1.0], ["B", "1", 2.0], ["A", "2", 3.0]]},
        )
        assert status == 200
        assert body["total_violations"] == 1
        assert body["complete"] is True
        assert body["results"][0]["rule"] == "FD: zip -> city"

        # 5. A discovery job whose deadline budget exhausts: the poll
        #    reports an honest partial, not a fake success or an error.
        status, job = client.request(
            "POST",
            "/tenants/acme/jobs",
            {"type": "discovery"},
            headers={"X-Budget-Deadline-S": "0.000001"},
        )
        assert status == 202
        job = poll_job(client, job["job"])
        assert job["state"] == "succeeded"
        assert job["partial"] is True
        assert any(s.get("exhausted") == "deadline" for s in job["stages"])
        assert "result" in job

        # 6. /metrics shows per-tenant request, violation, and
        #    budget-exhaustion counters (Prometheus text format).
        status, text = client.request("GET", "/metrics")
        assert status == 200
        assert 'repro_batches_total{tenant="acme"} 3' in text
        assert 'repro_rows_ingested_total{tenant="acme"} 3' in text
        assert 'repro_violations_added_total{tenant="acme"} 1' in text
        assert 'repro_violations{tenant="acme"} 1' in text
        assert (
            'repro_budget_exhausted_total{tenant="acme",reason="deadline"}'
            in text
        )
        assert (
            'repro_requests_total{tenant="acme",'
            'route="/tenants/{tenant}/batches",method="POST",status="200"} 3'
            in text
        )
        assert "repro_request_seconds_bucket" in text
        assert "repro_kernel_executions" in text

    def test_seeded_rows_and_delete_update_batches(self, client):
        register(
            client, "seeded",
            rows=[["A", "1", 1.0], {"city": "B", "zip": "1", "price": 2.0}],
        )
        status, body = client.request(
            "PUT", "/tenants/seeded/rules", FD_RULES
        )
        assert body["initial_violations"] == 1
        # Repair the conflict through the changefeed.
        status, change = client.request(
            "POST",
            "/tenants/seeded/batches",
            {"update": [{"row": 1, "set": {"city": "A"}}]},
        )
        assert status == 200
        assert change["resolved"] == 1 and change["total_violations"] == 0
        status, change = client.request(
            "POST", "/tenants/seeded/batches", {"delete": [0]}
        )
        assert status == 200 and change["rows"] == 1

    def test_repair_job(self, client):
        register(
            client, "fixme",
            rows=[["A", "1", 1.0], ["B", "1", 2.0], ["C", "2", 3.0]],
        )
        client.request("PUT", "/tenants/fixme/rules", FD_RULES)
        status, job = client.request(
            "POST", "/tenants/fixme/jobs", {"type": "repair"}
        )
        assert status == 202
        job = poll_job(client, job["job"])
        assert job["state"] == "succeeded", job
        assert job["result"]["remaining_violations"] == 0
        assert job["result"]["edit_count"] >= 1
        # Repairs are advisory: tenant state is untouched.
        status, body = client.request("GET", "/tenants/fixme/violations")
        assert body["total_violations"] == 1

    def test_job_listing_and_unknown_job(self, client):
        status, body = client.request("GET", "/tenants/acme/jobs")
        assert status == 200
        assert all("result" not in j for j in body["jobs"])
        status, body = client.request("GET", "/jobs/nope")
        assert status == 404

    def test_error_paths(self, client):
        # Unknown tenant -> 404 with a JSON error body.
        status, body = client.request("GET", "/tenants/ghost")
        assert status == 404 and "error" in body
        # Batch before rules -> 409.
        register(client, "norules")
        status, body = client.request(
            "POST", "/tenants/norules/batches", {"insert": [["A", "1", 1.0]]}
        )
        assert status == 409
        # Malformed batch -> 400 (not a 500).
        register(client, "badbatch")
        client.request("PUT", "/tenants/badbatch/rules", FD_RULES)
        status, body = client.request(
            "POST", "/tenants/badbatch/batches", {"delete": [99]}
        )
        assert status == 400 and "bad mutation batch" in body["error"]
        # Bad budget header -> 400.
        status, body = client.request(
            "POST",
            "/tenants/badbatch/jobs",
            {"type": "discovery"},
            headers={"X-Budget-Deadline-S": "soon"},
        )
        assert status == 400
        # Duplicate tenant -> 409; bad method -> 405 with Allow info.
        status, body = client.request(
            "POST", "/tenants", {"tenant": "acme", "schema": SCHEMA}
        )
        assert status == 409
        status, body = client.request("PATCH", "/tenants")
        assert status == 405 and "POST" in body["allowed"]
        # Unknown job type -> 400 listing the valid ones.
        status, body = client.request(
            "POST", "/tenants/badbatch/jobs", {"type": "mining"}
        )
        assert status == 400 and "discovery" in body["allowed"]

    def test_budget_headers_reject_degenerate_values(self, client):
        # Zero, negative, NaN, inf, and non-numeric budgets are all
        # client errors naming the offending header — zero can never
        # admit work and non-finite values wedge deadline arithmetic.
        register(client, "budgets")
        client.request("PUT", "/tenants/budgets/rules", FD_RULES)
        cases = [
            ("X-Budget-Deadline-S", "0"),
            ("X-Budget-Deadline-S", "-1.5"),
            ("X-Budget-Deadline-S", "nan"),
            ("X-Budget-Deadline-S", "inf"),
            ("X-Budget-Deadline-S", "-inf"),
            ("X-Budget-Max-Candidates", "0"),
            ("X-Budget-Max-Candidates", "-3"),
            ("X-Budget-Max-Candidates", "ten"),
            ("X-Budget-Max-Pairs", "0"),
            ("X-Budget-Max-Memory-Mb", "nan"),
            ("X-Budget-Max-Memory-Mb", "0"),
        ]
        for header, value in cases:
            status, body = client.request(
                "POST",
                "/tenants/budgets/batches",
                {"insert": [["A", "9", 1.0]]},
                headers={header: value},
            )
            assert status == 400, (header, value, body)
            assert header.lower() in body["error"], (header, value, body)
            assert body["header"] == header.lower()
        # A sane budget still flows.
        status, body = client.request(
            "POST",
            "/tenants/budgets/batches",
            {"insert": [["A", "9", 1.0]]},
            headers={"X-Budget-Deadline-S": "30"},
        )
        assert status == 200, body

    def test_oversized_body_gets_json_413_and_connection_survives(
        self, client, server, monkeypatch
    ):
        # Regression: an over-limit body used to close the socket
        # without draining, so clients saw a reset instead of the 413.
        import repro.server.http as http_mod

        monkeypatch.setattr(http_mod, "MAX_BODY_BYTES", 4096)
        register(client, "bigbody")
        rows = [["A", str(i), float(i)] for i in range(500)]
        status, body = client.request(
            "POST", "/tenants/bigbody/batches", {"insert": rows}
        )
        assert status == 413
        assert "exceeds" in body["error"]
        assert body["limit_bytes"] == 4096
        assert body["body_bytes"] > 4096
        # Same keep-alive connection keeps working afterwards: the
        # oversized body was drained, the stream is still synchronized.
        status, body = client.request("GET", "/tenants/bigbody")
        assert status == 200 and body["tenant"] == "bigbody"

    def test_sync_check_budget_partial(self, client):
        register(client, "tight", rows=[["A", str(i), float(i)] for i in range(50)])
        client.request("PUT", "/tenants/tight/rules", FD_RULES)
        status, body = client.request(
            "POST",
            "/tenants/tight/check",
            {},
            headers={"X-Budget-Deadline-S": "0.0000001"},
        )
        assert status == 200
        assert body["complete"] is False
        assert body["exhausted"] == "deadline"


# ---------------------------------------------------------------------------
# concurrency


class TestConcurrency:
    def test_two_tenants_two_threads(self, server):
        """Parallel ingestion into separate tenants never cross-talks."""
        setup = Client(server)
        for name in ("left", "right"):
            register(setup, name)
            setup.request("PUT", f"/tenants/{name}/rules", FD_RULES)
        setup.close()

        errors = []

        def ingest(name, n):
            c = Client(server)
            try:
                for i in range(n):
                    status, change = c.request(
                        "POST",
                        f"/tenants/{name}/batches",
                        {"insert": [
                            {"city": name, "zip": f"{name}-{i}", "price": i}
                        ]},
                    )
                    if status != 200:
                        errors.append((name, status, change))
            finally:
                c.close()

        threads = [
            threading.Thread(target=ingest, args=("left", 20)),
            threading.Thread(target=ingest, args=("right", 20)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

        check = Client(server)
        for name in ("left", "right"):
            status, body = check.request("GET", f"/tenants/{name}")
            assert body["rows"] == 20
            assert body["batches_ingested"] == 20
            status, body = check.request("GET", f"/tenants/{name}/violations")
            assert body["total_violations"] == 0
        check.close()

    def test_incremental_detector_single_writer_lock(self):
        """Two threads hammering one detector serialize via its lock."""
        relation = random_relation(4, 3, domain_size=10, seed=1)
        a, b, c = relation.schema.names()
        detector = IncrementalDetector([FD([a], [b])], relation)
        errors = []

        def writer(k):
            try:
                for i in range(30):
                    detector.apply(
                        {"insert": [[f"w{k}-{i}", f"v{i}", f"u{i}"]]}
                    )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(k,)) for k in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # Every batch landed exactly once, in a total order.
        assert len(detector.history) == 60
        assert [ch.seq for ch in detector.history] == list(range(1, 61))
        assert len(detector.relation) == 4 + 60
        # The cumulative state equals a cold recompute.
        cold = IncrementalDetector([FD([a], [b])], detector.relation)
        assert len(detector.violations()) == len(cold.violations())

    def test_kernel_counters_snapshot_under_fire(self):
        """snapshot() never sees a half-applied note or dict resize."""
        counters = KernelCounters()
        stop = threading.Event()
        errors = []

        def pound(k):
            i = 0
            while not stop.is_set():
                counters.note(f"strategy-{k}-{i % 50}")
                counters.note_work(
                    f"strategy-{k}-{i % 50}", candidates=2, verified=1
                )
                i += 1

        workers = [
            threading.Thread(target=pound, args=(k,)) for k in range(3)
        ]
        for w in workers:
            w.start()
        try:
            for _ in range(200):
                snap = counters.snapshot()
                # Consistency inside one snapshot: every strategy noted
                # work in matched candidate/verified pairs.
                for name, cand in snap.candidates_by_strategy.items():
                    assert cand == 2 * snap.verified_by_strategy[name]
                # The snapshot is detached: mutating it is invisible.
                snap.by_strategy["poison"] = 1
                assert "poison" not in counters.snapshot().by_strategy
        finally:
            stop.set()
            for w in workers:
                w.join()
        assert errors == []

    def test_counters_reset_race_free(self):
        counters = KernelCounters()
        counters.note("x")
        counters.reset()
        assert counters.snapshot().by_strategy == {}


# ---------------------------------------------------------------------------
# router + metrics units


class TestRouter:
    def _request(self, method, path):
        return Request(
            method=method, path=path, query={}, headers={}, body=b""
        )

    def test_binds_path_params(self):
        router = build_router()
        route, params = router.resolve(
            self._request("POST", "/tenants/t-1/batches")
        )
        assert params == {"tenant": "t-1"}
        assert route.template == "/tenants/{tenant}/batches"

    def test_404_and_405(self):
        router = build_router()
        with pytest.raises(HttpError) as err:
            router.resolve(self._request("GET", "/nope"))
        assert err.value.status == 404
        with pytest.raises(HttpError) as err:
            router.resolve(self._request("DELETE", "/tenants/a/batches"))
        assert err.value.status == 405
        assert err.value.payload["allowed"] == ["POST"]


class TestMetricsRegistry:
    def test_counter_gauge_render(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "Xs.", labels=("who",))
        c.inc(who="a")
        c.inc(2, who="b")
        g = reg.gauge("depth", "Queue depth.")
        g.set(7)
        text = reg.render()
        assert "# TYPE x_total counter" in text
        assert 'x_total{who="a"} 1' in text
        assert 'x_total{who="b"} 2' in text
        assert "depth 7" in text

    def test_histogram_buckets_and_quantiles(self):
        h = Histogram("lat", "Latency.", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        lines = h.render()
        assert 'lat_bucket{le="0.1"} 1' in lines
        assert 'lat_bucket{le="1.0"} 2' in lines
        assert 'lat_bucket{le="+Inf"} 3' in lines
        assert h.count() == 3
        assert h.quantile(0.5) == 0.5

    def test_label_schema_enforced(self):
        reg = MetricsRegistry()
        c = reg.counter("y_total", "Ys.", labels=("who",))
        with pytest.raises(ValueError):
            c.inc(whom="a")
        # Idempotent re-registration returns the same instrument...
        assert reg.counter("y_total", "Ys.", labels=("who",)) is c
        # ...but a conflicting schema is an error, not silent aliasing.
        with pytest.raises(ValueError):
            reg.counter("y_total", "Ys.", labels=("other",))

    def test_collectors_run_at_scrape(self):
        reg = MetricsRegistry()
        g = reg.gauge("pulled", "Pulled at scrape.")
        reg.add_collector(lambda: g.set(42))
        assert "pulled 42" in reg.render()
