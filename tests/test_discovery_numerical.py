"""Tests for OD, DC, SD/CSD discovery."""

import pytest

from repro.core import CSD, DC, OD, SD
from repro.datasets import ordered_workload
from repro.discovery import (
    build_predicate_space,
    discover_constant_dcs,
    discover_csd_tableau,
    discover_dcs,
    discover_dcs_approximate,
    discover_ods,
    discover_pairwise_ods,
    discover_sds,
    evidence_sets,
    fit_gap_interval,
    sd_confidence,
)
from repro.relation import Attribute, AttributeType, Relation, Schema


def numeric_relation(rows, names=("x", "y")):
    schema = Schema([Attribute(n, AttributeType.NUMERICAL) for n in names])
    return Relation.from_rows(schema, rows)


class TestODDiscovery:
    def test_pairwise_on_r7(self, r7):
        found = {str(d) for d in discover_pairwise_ods(r7)}
        assert "nights^<= -> avg/night^>=" in found
        assert "nights^<= -> subtotal^<=" in found

    def test_all_results_hold(self, r7):
        for dep in discover_pairwise_ods(r7):
            assert dep.holds(r7)
        for dep in discover_ods(r7):
            assert dep.holds(r7)

    def test_levelwise_minimality(self):
        r = numeric_relation(
            [(1, 1, 1), (2, 2, 2), (3, 3, 3)], names=("a", "b", "c")
        )
        found = discover_ods(r, max_lhs_size=2)
        # a^<= -> b^<= holds, so (a, c)^<= -> b^<= must not be emitted.
        lhss = {
            tuple(m.attribute for m in d.lhs)
            for d in found
            if d.rhs[0].attribute == "b" and d.rhs[0].mark == "<="
        }
        assert ("a",) in lhss
        assert ("a", "c") not in lhss

    def test_untyped_numeric_columns_detected(self):
        r = Relation.from_rows(["x", "y"], [(1, 2), (2, 3)])
        assert len(discover_pairwise_ods(r)) > 0


class TestDCDiscovery:
    def test_predicate_space_operators(self, r7):
        space = build_predicate_space(r7)
        ops = {p.op for p in space}
        assert ops == {"=", "!=", "<", "<=", ">", ">="}

    def test_evidence_sets_count_pairs(self, r7):
        space = build_predicate_space(r7)
        ev = evidence_sets(r7, space)
        assert sum(ev.values()) == len(r7) * (len(r7) - 1)

    def test_discovered_dcs_hold(self, r7):
        res = discover_dcs(r7, max_predicates=2)
        assert len(res) > 0
        for dc in res:
            assert dc.holds(r7)

    def test_paper_dc1_is_implied(self, r7):
        """dc1's predicate set must be (a superset of) a discovered
        minimal DC — FASTDC returns minimal covers only."""
        found = discover_dcs(r7, max_predicates=2)
        target = {("subtotal", "<"), ("taxes", ">")}
        assert any(
            {(p.lhs_attribute, p.op) for p in dc.predicates} <= target
            for dc in found
        )

    def test_minimality(self, r7):
        found = list(discover_dcs(r7, max_predicates=3))
        sets = [frozenset(dc.predicates) for dc in found]
        for a in sets:
            for b in sets:
                assert a is b or not (a < b)

    def test_approximate_admits_noisy_rules(self):
        rows = [(k, 10 * k) for k in range(10)]
        rows[3] = (3, 9999)  # one glitch
        r = numeric_relation(rows)
        exact = discover_dcs(r, max_predicates=2)
        target = {("x", "<"), ("y", ">=")}

        def contains_target(result):
            return any(
                {(p.lhs_attribute, p.op) for p in dc.predicates}
                <= target
                for dc in result
            )

        approx = discover_dcs_approximate(r, epsilon=0.1, max_predicates=2)
        assert contains_target(approx)
        assert not contains_target(exact)

    def test_constant_dcs(self):
        r = Relation.from_rows(
            ["region", "tier"],
            [("NY", "gold"), ("NY", "gold"), ("SF", "silver"),
             ("SF", "silver")],
        )
        found = discover_constant_dcs(r, min_frequency=2)
        # NY never co-occurs with silver: ¬(region=NY ∧ tier=silver).
        assert any(
            {("region", "NY"), ("tier", "silver")}
            == {(p.lhs_attribute, p.constant) for p in dc.predicates}
            for dc in found
        )
        for dc in found:
            assert dc.holds(r)


class TestSDDiscovery:
    def test_confidence_on_clean_series(self, r7):
        assert sd_confidence(r7, SD("nights", "subtotal", (100, 200))) == 1.0

    def test_fit_gap_interval(self, r7):
        gap = fit_gap_interval(r7, "nights", "subtotal")
        assert gap.low == 160.0 and gap.high == 180.0
        assert SD("nights", "subtotal", gap).holds(r7)

    def test_discover_sds_on_r7(self, r7):
        found = {str(d) for d in discover_sds(r7)}
        assert any("nights ->" in s and "subtotal" in s for s in found)

    def test_discovered_sds_hold(self, r7):
        for dep in discover_sds(r7):
            assert dep.holds(r7)

    def test_csd_tableau_on_glitched_series(self):
        w = ordered_workload(40, glitch_rate=0.1, seed=3)
        sd = SD("t", "value", (0, 50))
        assert not sd.holds(w.relation)
        csd = discover_csd_tableau(w.relation, sd, min_confidence=1.0)
        assert csd is not None
        assert csd.holds(w.relation)
        # The tableau must cover a substantial part of the series.
        covered = sum(
            1
            for i in range(len(w.relation))
            if any(
                iv.contains(float(w.relation.value_at(i, "t")))
                for iv in csd.intervals
            )
        )
        assert covered >= len(w.relation) // 2

    def test_csd_tableau_full_when_sd_holds(self, r7):
        sd = SD("nights", "subtotal", (100, 200))
        csd = discover_csd_tableau(r7, sd)
        assert csd is not None
        assert len(csd.intervals) == 1

    def test_csd_none_when_nothing_qualifies(self):
        r = numeric_relation([(1, 100), (2, 0), (3, 100), (4, 0)])
        sd = SD("x", "y", (0, 1))
        assert discover_csd_tableau(r, sd) is None

    def test_csd_rejects_multi_lhs(self, r7):
        sd = SD(["nights", "taxes"], "subtotal", (0, 1000))
        with pytest.raises(ValueError):
            discover_csd_tableau(r7, sd)
