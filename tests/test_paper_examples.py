"""Integration: every worked example of the paper, asserted literally.

One test per paper section — this file is the reproduction's
"Tables 1/5/6/7 and Sections 2-4 numbers" checklist.  Deviations from
the paper's hand arithmetic (two Levenshtein counts) are noted inline
and in EXPERIMENTS.md.
"""

import pytest

from repro.core import (
    AFD,
    CD,
    CFD,
    CSD,
    DC,
    DD,
    ECFD,
    FD,
    FFD,
    MD,
    MFD,
    MVD,
    NED,
    NUD,
    OD,
    OFD,
    PAC,
    PFD,
    SD,
    SFD,
    SimilarityFunction,
    pred2,
)
from repro.metrics import crisp_equal, levenshtein, reciprocal_equal


class TestSection1:
    def test_1_1_fd1_on_r1(self, r1):
        """t1/t2 agree; t3/t4 violate; t5/t6 'violate' (variety);
        t7/t8 are missed."""
        fd1 = FD("address", "region")
        assert not fd1.holds(r1)
        assert {v.tuples for v in fd1.violations(r1)} == {(2, 3), (4, 5)}

    def test_1_2_motivation_gap(self, r1):
        """The variety false-positive and the missed true error."""
        fd1 = FD("address", "region")
        flagged = fd1.violations(r1).tuple_indices()
        assert {4, 5} <= flagged      # false positive on format variety
        assert not ({6, 7} & flagged)  # true error missed


class TestSection2:
    def test_2_1_sfd_strengths(self, r5):
        assert SFD("address", "region").measure(r5) == pytest.approx(2 / 3)
        assert SFD("name", "address").measure(r5) == pytest.approx(1 / 2)

    def test_2_1_2_sfd1_equiv_fd1(self, r1):
        assert SFD("address", "region", 1.0).holds(r1) == FD(
            "address", "region"
        ).holds(r1)

    def test_2_2_pfd_probabilities(self, r5):
        assert PFD("address", "region").measure(r5) == pytest.approx(3 / 4)
        assert PFD("name", "address").measure(r5) == pytest.approx(1 / 2)

    def test_2_3_afd_errors(self, r5):
        assert AFD("address", "region").measure(r5) == pytest.approx(1 / 4)
        assert AFD("name", "address").measure(r5) == pytest.approx(1 / 2)

    def test_2_3_removal_eliminates_violation(self, r5):
        """Removing either t3 or t4 makes address -> region exact."""
        fd = FD("address", "region")
        assert fd.holds(r5.drop([2])) and fd.holds(r5.drop([3]))

    def test_2_4_nud1(self, r5):
        assert NUD("address", "region", 2).holds(r5)

    def test_2_5_cfd1(self, r5):
        cfd1 = CFD(["region", "name"], "address", {"region": "Jackson"})
        assert cfd1.holds(r5)

    def test_2_5_5_ecfd1(self, r5):
        e1 = ECFD(["rate", "name"], "address", {"rate": ("<=", 200)})
        assert e1.holds(r5)

    def test_2_6_mvd1(self, r5):
        assert MVD(["address", "rate"], "region").holds(r5)


class TestSection3:
    def test_3_1_mfd1(self, r6):
        assert MFD(["name", "region"], "price", 500).holds(r6)

    def test_3_2_ned1(self, r6):
        """name^1 address^5 -> street^5; t2/t6 distances 0, 1 and (paper
        says 3, true Levenshtein 1) — all within thresholds."""
        assert levenshtein("NC", "NC") <= 1
        assert levenshtein("#2 Ave, 12th St.", "#2 Aven, 12th St.") <= 5
        assert levenshtein("12th St.", "12th Str") <= 5
        assert NED({"name": 1, "address": 5}, {"street": 5}).holds(r6)

    def test_3_3_dd1_dd2(self, r6):
        assert DD({"name": 1, "street": 5}, {"address": 5}).holds(r6)
        assert DD(
            {"street": (">=", 10)}, {"address": (">", 5)}
        ).holds(r6)

    def test_3_4_cd1(self, dataspace):
        """cd1 holds with the corrected post-post threshold (6; the
        paper's hand count of 5 is one below true Levenshtein)."""
        theta1 = SimilarityFunction("region", "city", 5, 5, 5)
        theta2 = SimilarityFunction("addr", "post", 7, 9, 6)
        assert CD([theta1], theta2).holds(dataspace)

    def test_3_5_pac1(self, r6):
        pac1 = PAC({"price": 100}, {"tax": 10}, 0.9)
        assert pac1.pair_counts(r6) == (11, 8)
        assert pac1.measure(r6) == pytest.approx(0.727, abs=1e-3)
        assert not pac1.holds(r6)

    def test_3_6_ffd1(self, r6):
        ffd1 = FFD(
            ["name", "price"],
            "tax",
            {
                "name": crisp_equal,
                "price": reciprocal_equal(1),
                "tax": reciprocal_equal(10),
            },
        )
        # The paper's worked numbers:
        assert ffd1.mu("price", 299, 300) == pytest.approx(1 / 2)
        assert ffd1.mu("tax", 29, 20) == pytest.approx(1 / 91)
        assert not ffd1.holds(r6)

    def test_3_7_md1(self, r6):
        md1 = MD({"street": 5, "region": 2}, "zip")
        assert md1.holds(r6)
        assert md1.similar_on_lhs(r6, 4, 5)  # t5 and t6


class TestSection4:
    def test_4_1_ofd1(self, r7):
        assert OFD("subtotal", "taxes").holds(r7)

    def test_4_2_od1(self, r7):
        od1 = OD([("nights", "<=")], [("avg/night", ">=")])
        assert od1.holds(r7)
        # t1, t2: nights 1 <= 2 and avg 190 >= 185 (the paper's check).
        assert r7.value_at(0, "nights") <= r7.value_at(1, "nights")
        assert r7.value_at(0, "avg/night") >= r7.value_at(1, "avg/night")

    def test_4_3_dc1(self, r7):
        dc1 = DC([pred2("subtotal", "<"), pred2("taxes", ">")])
        assert dc1.holds(r7)

    def test_4_4_sd1_gaps(self, r7):
        sd1 = SD("nights", "subtotal", (100, 200))
        assert sd1.holds(r7)
        assert [g for __, __, g in sd1.consecutive_gaps(r7)] == [
            180.0,
            170.0,
            160.0,
        ]

    def test_4_4_2_sd2(self, r7):
        assert SD("nights", "avg/night", (None, 0)).holds(r7)


class TestTableShapes:
    def test_r1_shape(self, r1):
        assert len(r1) == 8
        assert r1.schema.names() == (
            "name", "address", "region", "star", "price",
        )

    def test_r5_shape(self, r5):
        assert len(r5) == 4
        assert r5.value_at(3, "region") == "El Paso, TX"

    def test_r6_shape(self, r6):
        assert len(r6) == 6
        assert r6.value_at(5, "street") == "12th Str"

    def test_r7_shape(self, r7):
        assert len(r7) == 4
        assert r7.column("subtotal") == (190, 370, 540, 700)

    def test_dataspace_shape(self, dataspace):
        assert len(dataspace) == 3
        assert dataspace.value_at(1, "region") is None
