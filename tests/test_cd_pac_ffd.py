"""Unit tests for CDs, PACs and FFDs."""

import pytest

from repro.core import CD, FFD, NED, PAC, DependencyError, SimilarityFunction
from repro.metrics import crisp_equal, reciprocal_equal
from repro.relation import Relation


class TestSimilarityFunction:
    def test_needs_one_operator(self):
        with pytest.raises(DependencyError):
            SimilarityFunction("a", "b")

    def test_cross_comparison_on_dataspace(self, dataspace):
        theta = SimilarityFunction("region", "city", 5, 5, 5)
        # t1.region "Petersburg" vs t2.city "St Petersburg": distance 3.
        assert theta.similar(dataspace, 0, 1)

    def test_missing_values_fall_through(self, dataspace):
        # t1 and t3: region-region comparison works; city missing both.
        theta = SimilarityFunction("region", "city", 5, 5, 5)
        assert theta.similar(dataspace, 0, 2)

    def test_no_comparable_values_means_dissimilar(self):
        r = Relation.from_rows(
            ["region", "city"], [(None, "x"), (None, None)]
        )
        theta = SimilarityFunction("region", "city", 5, None, 5)
        assert not theta.similar(r, 0, 1)


class TestCD:
    def test_paper_cd1_on_dataspace(self, dataspace):
        """Section 3.4.1's cd1 with corrected post-post threshold.

        The paper quotes edit distance 5 between "#7 T Avenue" and
        "No 7 T Ave"; standard Levenshtein gives 6, so the worked
        example's thresholds are adjusted to keep its intent (see
        EXPERIMENTS.md).
        """
        theta1 = SimilarityFunction("region", "city", 5, 5, 5)
        theta2 = SimilarityFunction("addr", "post", 7, 9, 6)
        cd1 = CD([theta1], theta2)
        assert cd1.holds(dataspace)

    def test_paper_thresholds_fail_by_one(self, dataspace):
        """With the paper's literal post<=5 threshold, (t2, t3) violate."""
        theta1 = SimilarityFunction("region", "city", 5, 5, 5)
        theta2 = SimilarityFunction("addr", "post", 7, 9, 5)
        cd1 = CD([theta1], theta2)
        assert {v.tuples for v in cd1.violations(dataspace)} == {(1, 2)}

    def test_from_ned_equivalence(self, r6):
        ned = NED({"name": 1, "address": 5}, {"street": 5})
        cd = CD.from_ned(ned)
        assert cd.holds(r6) == ned.holds(r6)

    def test_from_ned_requires_single_rhs(self, r6):
        ned = NED({"name": 1}, {"street": 5, "address": 5})
        with pytest.raises(DependencyError):
            CD.from_ned(ned)

    def test_confidence_and_g3(self, dataspace):
        theta1 = SimilarityFunction("region", "city", 5, 5, 5)
        theta2 = SimilarityFunction("addr", "post", 7, 9, 5)
        cd = CD([theta1], theta2)
        assert 0.0 < cd.confidence(dataspace) < 1.0
        g3 = cd.g3_error(dataspace)
        assert 0.0 < g3 <= 1.0

    def test_empty_lhs_rejected(self):
        theta = SimilarityFunction("a", "a", 1)
        with pytest.raises(DependencyError):
            CD([], theta)


class TestPAC:
    def test_paper_pac1_on_r6(self, r6):
        """Section 3.5.1: price_100 ->^0.9 tax_10 has confidence 8/11."""
        pac1 = PAC({"price": 100}, {"tax": 10}, 0.9)
        close, good = pac1.pair_counts(r6)
        assert (close, good) == (11, 8)
        assert pac1.measure(r6) == pytest.approx(8 / 11)
        assert not pac1.holds(r6)

    def test_lower_confidence_holds(self, r6):
        assert PAC({"price": 100}, {"tax": 10}, 0.7).holds(r6)

    def test_violations_are_bad_pairs(self, r6):
        pac1 = PAC({"price": 100}, {"tax": 10}, 0.9)
        assert len(pac1.violations(r6)) == 3  # 11 close - 8 good

    def test_delta_one_equals_ned(self, r6):
        ned = NED({"name": 1, "address": 5}, {"street": 5})
        pac = PAC.from_ned(ned)
        assert pac.confidence == 1.0
        assert pac.holds(r6) == ned.holds(r6)

    def test_no_close_pairs_holds_vacuously(self):
        r = Relation.from_rows(["p", "t"], [(0, 0), (10000, 50)])
        assert PAC({"p": 1}, {"t": 1}, 0.9).holds(r)

    def test_threshold_validation(self):
        with pytest.raises(DependencyError):
            PAC({"a": 1}, {"b": 1}, 0.0)


class TestFFD:
    @pytest.fixture
    def ffd1(self):
        """Section 3.6.1's ffd1 over r6."""
        return FFD(
            ["name", "price"],
            "tax",
            {
                "name": crisp_equal,
                "price": reciprocal_equal(1),
                "tax": reciprocal_equal(10),
            },
        )

    def test_paper_ffd1_conflict(self, ffd1, r6):
        """(t1, t2): min(1, 1/2) > 1/91 — the paper's worked conflict."""
        assert not ffd1.holds(r6)
        assert (0, 1) in {v.tuples for v in ffd1.violations(r6)}

    def test_mu_set_is_minimum(self, ffd1, r6):
        mu = ffd1.mu_set(r6, 0, 1, ("name", "price"))
        assert mu == pytest.approx(1 / 2)

    def test_crisp_ffd_equals_fd(self, r5, r6):
        from repro.core import FD

        for rel in (r5, r6):
            for lhs in rel.schema.names():
                for rhs in rel.schema.names():
                    if lhs == rhs:
                        continue
                    ffd = FFD.from_fd(FD(lhs, rhs))
                    assert ffd.holds(rel) == FD(lhs, rhs).holds(rel)

    def test_default_resemblance_is_crisp(self):
        ffd = FFD("a", "b")
        r = Relation.from_rows(["a", "b"], [(1, 1), (1, 2)])
        assert not ffd.holds(r)

    def test_empty_sides_rejected(self):
        with pytest.raises(DependencyError):
            FFD([], "b")
