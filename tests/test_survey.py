"""Tests for the survey registry, figures, and tables."""


from repro.survey import (
    APPLICATIONS,
    COMPLEXITY,
    NOTATIONS,
    applications_of,
    consistency_problems,
    fig1b_publications,
    fig2_timeline,
    fig3_complexity,
    notations_by_branch,
    render_fig1b,
    render_fig2,
    render_fig3,
    render_table2,
    render_table3,
    render_table4,
    timeline_milestones,
    tractable_problems,
)


class TestRegistry:
    def test_23_table2_rows(self):
        # Table 2 lists 23 extensions; FD itself is the root, not a row.
        assert len(NOTATIONS) == 23

    def test_branch_sizes(self):
        by_branch = notations_by_branch()
        assert len(by_branch["categorical"]) == 9  # Table 2 rows (no FD)
        assert len(by_branch["heterogeneous"]) == 9
        assert len(by_branch["numerical"]) == 5

    def test_years_match_paper(self):
        assert NOTATIONS["MVD"].year == 1977
        assert NOTATIONS["NUD"].year == 1981
        assert NOTATIONS["AFD"].year == 1995
        assert NOTATIONS["SFD"].year == 2004
        assert NOTATIONS["CFD"].year == 2007
        assert NOTATIONS["AMVD"].year == 2020

    def test_publication_counts(self):
        assert NOTATIONS["FFD"].publications == 496
        assert NOTATIONS["CFD"].publications == 471
        assert NOTATIONS["AMVD"].publications is None

    def test_registry_consistent_with_family_tree(self):
        assert consistency_problems() == []

    def test_applications_of(self):
        apps = applications_of("DD")
        assert "data repairing" in apps
        assert "data deduplication" in apps
        assert "schema normalization" not in apps

    def test_every_table3_notation_known(self):
        for branches in APPLICATIONS.values():
            for names in branches.values():
                for n in names:
                    assert n in NOTATIONS or n in ("FD", "OFD")


class TestFigures:
    def test_fig1b_descending(self):
        series = fig1b_publications()
        counts = [c for __, c in series]
        assert counts == sorted(counts, reverse=True)
        assert series[0][0] == "FFD"  # 496 is the max

    def test_fig1b_narrative_cfds_lead_categorical(self):
        """Fig 1B discussion: CFDs attract the most attention among the
        categorical extensions (NUD's large count is inherited from a
        1981 notion; CFD leads among the *extensions* discussed)."""
        categorical = {
            n: NOTATIONS[n].publications
            for n in ("SFD", "PFD", "AFD", "CFD", "eCFD")
        }
        assert max(categorical, key=categorical.get) == "CFD"

    def test_fig2_timeline_sorted_and_complete(self):
        timeline = fig2_timeline()
        years = [y for y, __ in timeline]
        assert years == sorted(years)
        assert years[0] == 1977 and years[-1] == 2020
        named = {n for __, names in timeline for n in names}
        assert named == set(NOTATIONS)

    def test_milestones(self):
        m = timeline_milestones()
        assert m["AFDs (first approximate extensions)"] == 1995
        assert m["CFDs (conditional line starts)"] == 2007

    def test_fig3_tractable_frontier(self):
        tract = tractable_problems()
        assert "CSD tableau discovery" in tract
        assert "MFD verification" in tract
        assert "CFD optimal tableau generation" not in tract

    def test_fig3_np_complete_problems(self):
        complexity = fig3_complexity()
        assert complexity["CFD optimal tableau generation"] == "NP-complete"
        assert complexity["CFD implication"] == "coNP-complete"
        assert complexity["DD implication"] == "coNP-complete"

    def test_renderings_nonempty(self):
        assert "496" in render_fig1b()
        assert "1977" in render_fig2()
        assert "PTIME" in render_fig3()


class TestTables:
    def test_table2_lists_all(self):
        text = render_table2()
        for abbrev in NOTATIONS:
            assert abbrev in text

    def test_table3_rows(self):
        text = render_table3()
        assert "violation detection" in text
        assert "model fairness" in text

    def test_table4(self):
        text = render_table4()
        assert "pattern tuple" in text
