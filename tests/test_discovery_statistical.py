"""Tests for CORDS (SFDs), PFD discovery, and NUD discovery."""

import pytest

from repro.core import NUD, PFD, SFD
from repro.datasets import fd_workload
from repro.discovery import (
    chi_square_statistic,
    cords,
    discover_nuds,
    discover_pfds,
    discover_pfds_multisource,
    merged_probability,
    minimal_weight,
)
from repro.relation import Relation


class TestCords:
    def test_finds_strong_pairs_on_clean_workload(self):
        w = fd_workload(150, 12, error_rate=0.0, seed=1)
        found = cords(w.relation, strength_threshold=0.95)
        pairs = {(d.lhs[0], d.rhs[0]) for d in found}
        assert ("code", "city") in pairs
        assert ("code", "state") in pairs

    def test_dirty_workload_lowers_strength(self):
        clean = fd_workload(150, 12, error_rate=0.0, seed=1)
        dirty = fd_workload(150, 12, error_rate=0.3, seed=1)
        s_clean = SFD("code", "city").measure(clean.relation)
        s_dirty = SFD("code", "city").measure(dirty.relation)
        assert s_dirty < s_clean

    def test_chi_square_detects_correlation(self):
        w = fd_workload(300, 8, error_rate=0.0, seed=2)
        stat_corr, dof1 = chi_square_statistic(w.relation, "code", "city")
        stat_indep, dof2 = chi_square_statistic(
            w.relation, "payload", "city"
        )
        assert stat_corr / max(dof1, 1) > stat_indep / max(dof2, 1)

    def test_analyses_attached(self):
        w = fd_workload(60, 6, error_rate=0.0, seed=3)
        res = cords(w.relation)
        assert hasattr(res, "analyses")
        assert all(0.0 < a.strength <= 1.0 for a in res.analyses)

    def test_sampling_is_deterministic(self):
        w = fd_workload(400, 10, error_rate=0.1, seed=4)
        a = cords(w.relation, sample_size=100, seed=5)
        b = cords(w.relation, sample_size=100, seed=5)
        assert {str(d) for d in a} == {str(d) for d in b}


class TestPFDDiscovery:
    def test_finds_approximate_fds(self):
        w = fd_workload(120, 10, error_rate=0.05, seed=5)
        found = discover_pfds(w.relation, probability_threshold=0.85)
        pairs = {(d.lhs, d.rhs[0]) for d in found}
        assert (("code",), "city") in pairs

    def test_results_meet_threshold(self, r5):
        for dep in discover_pfds(r5, probability_threshold=0.7):
            assert PFD(dep.lhs, dep.rhs).measure(r5) >= 0.7

    def test_minimality_pruning(self):
        w = fd_workload(80, 8, error_rate=0.0, seed=6)
        found = discover_pfds(w.relation, probability_threshold=0.9)
        lhs_by_rhs: dict[str, list] = {}
        for dep in found:
            lhs_by_rhs.setdefault(dep.rhs[0], []).append(set(dep.lhs))
        for sets in lhs_by_rhs.values():
            for a in sets:
                for b in sets:
                    assert a is b or not (a < b)

    def test_multisource_weighted_merge(self):
        r_good = Relation.from_rows(
            ["a", "b"], [(1, "x")] * 8
        )
        r_bad = Relation.from_rows(
            ["a", "b"], [(1, "x"), (1, "y")]
        )
        p = merged_probability([r_good, r_bad], ("a",), "b")
        # good source: prob 1 on 8 tuples; bad: 1/2 on 2 tuples.
        assert p == pytest.approx((1.0 * 8 + 0.5 * 2) / 10)

    def test_multisource_requires_same_schema(self):
        r1_ = Relation.from_rows(["a"], [(1,)])
        r2_ = Relation.from_rows(["b"], [(1,)])
        with pytest.raises(ValueError):
            discover_pfds_multisource([r1_, r2_])

    def test_multisource_discovery(self):
        sources = [
            fd_workload(40, 5, error_rate=0.0, seed=s).relation
            for s in range(3)
        ]
        found = discover_pfds_multisource(sources, 0.9)
        assert any(
            d.lhs == ("code",) and d.rhs == ("city",) for d in found
        )


class TestNUDDiscovery:
    def test_minimal_weight_on_r5(self, r5):
        assert minimal_weight(r5, ["address"], ["region"]) == 2
        assert minimal_weight(r5, ["address"], ["name"]) == 1

    def test_discovered_nuds_hold_and_are_tight(self, r5):
        for dep in discover_nuds(r5, max_weight=3):
            assert dep.holds(r5)
            if dep.weight > 1:
                tighter = NUD(dep.lhs, dep.rhs, dep.weight - 1)
                assert not tighter.holds(r5)

    def test_weight_cap(self, r5):
        for dep in discover_nuds(r5, max_weight=2):
            assert dep.weight <= 2
