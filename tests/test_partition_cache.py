"""The relation-level partition/group cache shared by the engines."""

from repro.datasets import random_relation
from repro.relation import StrippedPartition, cache_for


def test_partition_memoized_and_order_insensitive():
    r = random_relation(30, 3, domain_size=3, seed=3)
    cache = cache_for(r)
    a = cache.partition(["A0", "A1"])
    b = cache.partition(["A1", "A0"])
    assert a is b  # one build, both orders
    assert a == StrippedPartition.from_relation(r, ["A0", "A1"])
    assert cache.stats.hits == 1
    assert cache.stats.misses >= 1


def test_groups_memoized_order_sensitive_keys():
    r = random_relation(30, 2, domain_size=3, seed=4)
    cache = cache_for(r)
    g1 = cache.groups(["A0", "A1"])
    g2 = cache.groups(["A0", "A1"])
    assert g1 is g2
    assert g1 == r.group_by(["A0", "A1"])
    # Key tuples follow the requested attribute order, so reversed
    # requests are distinct entries (their keys differ).
    g3 = cache.groups(["A1", "A0"])
    assert g3 == r.group_by(["A1", "A0"])


def test_cache_is_per_relation_and_shared():
    r = random_relation(10, 2, domain_size=2, seed=5)
    assert cache_for(r) is cache_for(r)
    other = random_relation(10, 2, domain_size=2, seed=6)
    assert cache_for(r) is not cache_for(other)


def test_clear_resets_entries():
    r = random_relation(10, 2, domain_size=2, seed=7)
    cache = cache_for(r)
    cache.partition(["A0"])
    assert len(cache) >= 1
    cache.clear()
    assert len(cache) == 0


def test_engines_share_the_cache():
    from repro.discovery import discover_constant_cfds, tane

    r = random_relation(40, 3, domain_size=3, seed=8)
    tane(r, max_lhs_size=2)
    cache = cache_for(r)
    built = cache.stats.misses
    result = tane(r, max_lhs_size=2)  # second run: all hits
    assert cache.stats.misses == built
    assert result.stats.partition_cache_hits > 0
    cfd_result = discover_constant_cfds(r, max_lhs_size=2)
    assert cfd_result.stats.partition_cache_hits >= 0
