"""Failure injection and robustness: hostile inputs must not wedge.

Conflicting rule sets, missing values everywhere, unsatisfiable
constraints, and degenerate relations — engines must terminate and
report honestly rather than loop or crash.
"""

import pytest

from repro.core import (
    CFD,
    DC,
    DD,
    FD,
    MD,
    MFD,
    NED,
    OD,
    SD,
    predc,
)
from repro.discovery import discover_dcs, discover_dds, fastfd, tane
from repro.quality import (
    Detector,
    interactive_clean,
    repair_cfds,
    repair_dcs,
    repair_fds,
)
from repro.relation import Relation


class TestConflictingRules:
    def test_conflicting_constant_cfds_terminate(self):
        """Two CFDs forcing different constants on the same cells: the
        repair cannot satisfy both but must terminate and report."""
        r = Relation.from_rows(["cc", "code"], [("44", "x")])
        a = CFD("cc", "code", {"cc": "44", "code": "A"})
        b = CFD("cc", "code", {"cc": "44", "code": "B"})
        repaired, log = repair_cfds(r, [a, b])
        assert log.cost() > 0  # it tried
        # At most one of the two can hold; neither crashes the engine.
        assert a.holds(repaired) != b.holds(repaired) or not (
            a.holds(repaired) and b.holds(repaired)
        )

    def test_unsatisfiable_dc_quarantines(self):
        """A DC denying every tuple forces quarantine, not a loop."""
        r = Relation.from_rows(["x"], [(1,), (2,)])
        dc = DC([predc("x", ">=", 0)])  # every tuple violates
        repaired, log = repair_dcs(r, [dc])
        assert set(log.quarantined) == {0, 1}

    def test_contradictory_fds_reach_fixpoint(self):
        """a->b and b->a with crossed values: repair terminates."""
        r = Relation.from_rows(
            ["a", "b"],
            [(1, "x"), (1, "y"), (2, "x"), (2, "y")],
        )
        repaired, log = repair_fds(r, [FD("a", "b"), FD("b", "a")])
        # Termination and no size change are the contract.
        assert len(repaired) == len(r)

    def test_interactive_clean_round_cap(self):
        """Oscillating MD/CFD pairs cannot loop past max_rounds."""
        r = Relation.from_rows(
            ["k", "v"], [("a", 1), ("ab", 2), ("abc", 3)]
        )
        mds = [MD({"k": 2}, "v")]
        cfds = [CFD("v", "k")]
        __, trace = interactive_clean(r, cfds, mds, max_rounds=3)
        assert len(trace.rounds) <= 3


class TestMissingDataEverywhere:
    @pytest.fixture
    def holey(self):
        return Relation.from_rows(
            ["a", "b", "c"],
            [
                (None, None, None),
                (1, None, "x"),
                (None, 2, None),
                (1, 2, "x"),
            ],
        )

    def test_equality_rules_treat_none_as_value(self, holey):
        # Must not crash; semantics documented in README.
        FD("a", "b").holds(holey)
        FD(["a", "b"], "c").violations(holey)

    def test_metric_rules_never_pair_none_with_value(self, holey):
        ned = NED({"a": 1}, {"b": 1})
        # None-vs-value distance is inf: never LHS-similar, no crash.
        assert ned.holds(holey) or not ned.holds(holey)
        dd = DD({"a": 0}, {"b": 0})
        dd.violations(holey)

    def test_order_rules_skip_none(self, holey):
        assert OD([("a", "<=")], [("b", "<=")]).violations(holey) is not None
        sd = SD("a", "b", (0, None))
        # Only tuples with both values participate.
        assert len(sd.sorted_indices(holey)) == 1

    def test_discovery_survives_none(self, holey):
        assert tane(holey) is not None
        assert fastfd(holey) is not None
        discover_dds(holey, ["a"], ["b"], max_lhs_attrs=1)

    def test_detection_on_all_none_column(self):
        r = Relation.from_rows(["a", "b"], [(None, 1), (None, 2)])
        report = Detector([FD("a", "b")]).detect(r)
        # The two None keys group together and disagree on b.
        assert len(report.violations) == 1


class TestDegenerateShapes:
    def test_single_column_relation(self):
        r = Relation.from_rows(["a"], [(1,), (2,)])
        assert tane(r).dependencies == []
        assert fastfd(r).dependencies == []
        assert discover_dcs(r, max_predicates=1) is not None

    def test_all_identical_tuples(self):
        r = Relation.from_rows(["a", "b"], [(1, 2)] * 5)
        assert FD("a", "b").holds(r)
        assert MFD("a", "b", 0).holds(r)
        found = {str(d) for d in tane(r)}
        assert found == {"a -> b", "b -> a"}

    def test_huge_domain_no_pairs_agree(self):
        r = Relation.from_rows(
            ["a", "b"], [(i, i * 2) for i in range(50)]
        )
        # Everything is a key; all rules hold; discovery stays fast.
        assert FD("a", "b").holds(r)
        assert len(tane(r).dependencies) >= 2

    def test_zero_width_pattern_relations(self):
        r = Relation.from_rows(["a", "b"], [])
        for dep in (
            FD("a", "b"),
            CFD("a", "b", {"a": 1}),
            MFD("a", "b", 1.0),
            NED({"a": 1}, {"b": 1}),
            OD([("a", "<=")], [("b", "<=")]),
            SD("a", "b", (0, 1)),
        ):
            assert dep.holds(r)
