"""Unit tests for patterns, CFDs, eCFDs and tableaux."""

import pytest

from repro.core import (
    CFD,
    CFDTableau,
    DependencyError,
    ECFD,
    FD,
    Pattern,
    const,
    ecfd,
    pred,
    wildcard,
)
from repro.relation import Relation


class TestPatternEntry:
    def test_wildcard_matches_everything(self):
        w = wildcard()
        assert w.matches("x") and w.matches(None) and w.matches(42)

    def test_constant(self):
        c = const("x")
        assert c.matches("x") and not c.matches("y")
        assert not c.matches(None)

    def test_operators(self):
        assert pred("<=", 200).matches(200)
        assert pred("<=", 200).matches(150)
        assert not pred("<=", 200).matches(201)
        assert pred("!=", 5).matches(6)

    def test_unicode_aliases(self):
        assert pred("≤", 5).op == "<="
        assert pred("≠", 5).op == "!="

    def test_incomparable_types_do_not_match(self):
        assert not pred("<", 5).matches("abc")

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            pred("~", 1)


class TestPattern:
    def test_unmentioned_attributes_are_wildcards(self):
        p = Pattern({"a": 1})
        assert p.entry("zzz").is_wildcard

    def test_matches_record(self):
        p = Pattern({"a": 1, "b": ("<=", 10)})
        assert p.matches({"a": 1, "b": 5}, ["a", "b"])
        assert not p.matches({"a": 1, "b": 50}, ["a", "b"])

    def test_equality_ignores_explicit_wildcards(self):
        assert Pattern({"a": "_"}) == Pattern({})
        assert Pattern({"a": 1}) != Pattern({})

    def test_constants(self):
        p = Pattern({"a": 1, "b": "_"})
        assert p.constants() == {"a": 1}

    def test_render(self):
        p = Pattern({"a": "J"})
        assert p.render(["a"], ["b"]) == "('J' || _)"


@pytest.fixture
def cfd1():
    """The paper's cfd1: region = Jackson, name = _ -> address = _."""
    return CFD(["region", "name"], "address", {"region": "Jackson"})


class TestCFD:
    def test_cfd1_holds_on_r5(self, cfd1, r5):
        assert cfd1.holds(r5)

    def test_matching_indices(self, cfd1, r5):
        assert cfd1.matching_indices(r5) == [0, 1]

    def test_support(self, cfd1, r5):
        assert cfd1.support(r5) == pytest.approx(0.5)

    def test_all_wildcard_equals_fd(self, r5, r1):
        for rel in (r5, r1):
            for lhs in rel.schema.names():
                for rhs in rel.schema.names():
                    if lhs == rhs:
                        continue
                    assert CFD(lhs, rhs).holds(rel) == FD(lhs, rhs).holds(rel)

    def test_conditioned_fd_violation(self):
        r = Relation.from_rows(
            ["cond", "x", "y"],
            [("in", 1, "a"), ("in", 1, "b"), ("out", 2, "a"), ("out", 2, "b")],
        )
        dep = CFD(["cond", "x"], "y", {"cond": "in"})
        assert not dep.holds(r)
        assert {v.tuples for v in dep.violations(r)} == {(0, 1)}

    def test_constant_rhs_single_tuple_violation(self):
        r = Relation.from_rows(["cc", "ac"], [("44", "131"), ("44", "99")])
        dep = CFD("cc", "ac", {"cc": "44", "ac": "131"})
        assert not dep.holds(r)
        tuples = {v.tuples for v in dep.violations(r)}
        assert (1,) in tuples

    def test_pattern_outside_fd_rejected(self):
        with pytest.raises(DependencyError):
            CFD("a", "b", {"c": 1})

    def test_operator_pattern_rejected_for_plain_cfd(self):
        with pytest.raises(DependencyError):
            CFD("a", "b", {"a": ("<=", 5)})

    def test_constant_and_variable_classification(self, cfd1):
        assert not cfd1.is_constant_cfd()
        assert cfd1.is_variable_cfd()
        full = CFD("a", "b", {"a": 1, "b": 2})
        assert full.is_constant_cfd()
        assert not full.is_variable_cfd()

    def test_holds_matches_violations_emptiness(self, r5, cfd1):
        assert cfd1.holds(r5) == (len(cfd1.violations(r5)) == 0)


class TestECFD:
    def test_ecfd1_holds_on_r5(self, r5):
        """Section 2.5.5: rate <= 200, name = _ -> address = _."""
        e1 = ecfd(["rate", "name"], "address", {"rate": ("<=", 200)})
        assert e1.holds(r5)

    def test_ecfd_catches_conditioned_violation(self):
        r = Relation.from_rows(
            ["rate", "name", "addr"],
            [(100, "H", "a1"), (100, "H", "a2"), (300, "K", "b1"),
             (300, "K", "b2")],
        )
        e = ecfd(["rate", "name"], "addr", {"rate": ("<=", 200)})
        assert not e.holds(r)
        assert {v.tuples for v in e.violations(r)} == {(0, 1)}

    def test_inequality_condition(self, r5):
        e = ecfd(["rate", "name"], "address", {"rate": (">", 200)})
        # rate > 200 matches t1, t2 (230, 250): same name "Hyatt",
        # same address -> holds.
        assert e.holds(r5)

    def test_from_cfd_preserves_semantics(self, r5, cfd1):
        e = ECFD.from_cfd(cfd1)
        assert e.holds(r5) == cfd1.holds(r5)


class TestCFDTableau:
    def test_conjunction_semantics(self, r5):
        tab = CFDTableau(
            ["region", "name"],
            "address",
            [{"region": "Jackson"}, {"region": "El Paso"}],
        )
        assert tab.holds(r5)
        assert len(tab) == 2

    def test_tableau_support_unions_coverage(self, r5):
        tab = CFDTableau(
            ["region", "name"], "address", [{"region": "Jackson"}]
        )
        assert tab.support(r5) == pytest.approx(0.5)
        tab.add({"region": "El Paso"})
        assert tab.support(r5) == pytest.approx(0.75)

    def test_violations_aggregate(self):
        r = Relation.from_rows(
            ["c", "x", "y"], [("a", 1, 1), ("a", 1, 2)]
        )
        tab = CFDTableau(["c", "x"], "y", [{"c": "a"}])
        assert len(tab.violations(r)) == 1
