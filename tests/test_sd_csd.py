"""Unit tests for SDs and CSDs."""


import pytest

from repro.core import CSD, OD, SD, DependencyError
from repro.relation import Relation


class TestSD:
    def test_paper_sd1_on_r7(self, r7):
        """Section 4.4.1: nights ->_[100,200] subtotal; gaps 180/170/160."""
        sd1 = SD("nights", "subtotal", (100, 200))
        assert sd1.holds(r7)
        gaps = [g for __, __, g in sd1.consecutive_gaps(r7)]
        assert gaps == [180.0, 170.0, 160.0]

    def test_paper_sd2_on_r7(self, r7):
        """Section 4.4.2: nights ->_(-inf,0] avg/night (od1 as an SD)."""
        sd2 = SD("nights", "avg/night", (None, 0))
        assert sd2.holds(r7)

    def test_violation_reports_consecutive_pair(self, r7):
        broken = r7.with_value(2, "subtotal", 380)  # gap 10 below 100
        sd1 = SD("nights", "subtotal", (100, 200))
        vs = sd1.violations(broken)
        assert len(vs) == 2  # both neighbouring gaps now off
        assert all(len(v.tuples) == 2 for v in vs)

    def test_missing_values_excluded(self, r7):
        holed = r7.with_value(1, "subtotal", None)
        sd = SD("nights", "subtotal", (100, 400))
        # consecutive gaps skip t2: 540-190=350, 700-540=160
        gaps = [g for __, __, g in sd.consecutive_gaps(holed)]
        assert gaps == [350.0, 160.0]

    def test_confidence_full_when_holds(self, r7):
        assert SD("nights", "subtotal", (100, 200)).confidence(r7) == 1.0

    def test_confidence_counts_longest_valid_run(self, r7):
        # Breaking t2 also breaks the 190 -> 540 bridge, so the longest
        # valid run is (540, 700): confidence 2/4.
        broken = r7.with_value(1, "subtotal", 5000)
        sd = SD("nights", "subtotal", (100, 200))
        assert sd.confidence(broken) == pytest.approx(2 / 4)

    def test_network_polling_example(self):
        """Section 4.4.4: pollnum ->_[9,11] time audits the collector."""
        rows = [(k, 10 * k) for k in range(10)]
        rows[5] = (5, 75)  # a late poll
        r = Relation.from_rows(["pollnum", "time"], rows)
        sd = SD("pollnum", "time", (9, 11))
        assert not sd.holds(r)
        flagged = sd.violations(r).tuple_indices()
        assert 5 in flagged

    def test_from_od_implication(self, r7):
        od = OD([("nights", "<=")], [("avg/night", ">=")])
        sd = SD.from_od(od)
        assert od.holds(r7)
        assert sd.holds(r7)

    def test_from_od_rejects_descending_lhs(self):
        with pytest.raises(DependencyError):
            SD.from_od(OD([("a", ">=")], [("b", "<=")]))

    def test_multi_rhs_rejected(self):
        with pytest.raises(DependencyError):
            SD("a", ["b", "c"], (0, 1))

    def test_empty_relation(self):
        r = Relation.empty(["a", "b"])
        assert SD("a", "b", (0, 1)).holds(r)
        assert SD("a", "b", (0, 1)).confidence(r) == 1.0


class TestCSD:
    def test_full_range_equals_sd(self, r7):
        sd = SD("nights", "subtotal", (100, 200))
        csd = CSD.from_sd(sd)
        assert csd.holds(r7) == sd.holds(r7)

    def test_conditional_scope(self):
        """An SD holding only on sub-intervals: the CSD setting."""
        rows = [(k, 10 * k) for k in range(5)]
        rows += [(k, 1000 + 50 * (k - 5)) for k in range(5, 10)]
        r = Relation.from_rows(["t", "v"], rows)
        sd_gap = (5, 60)
        assert not SD("t", "v", sd_gap).holds(r)  # jump at the boundary
        csd = CSD("t", "v", sd_gap, [(0, 4), (5, 9)])
        assert csd.holds(r)

    def test_violations_reindexed(self):
        rows = [(0, 0), (1, 10), (2, 500), (3, 510)]
        r = Relation.from_rows(["t", "v"], rows)
        csd = CSD("t", "v", (5, 20), [(0, 3)])
        vs = csd.violations(r)
        assert {v.tuples for v in vs} == {(1, 2)}

    def test_confidence_weighted(self, r7):
        csd = CSD("nights", "subtotal", (100, 200), [(1, 4)])
        assert csd.confidence(r7) == 1.0

    def test_empty_tableau_rejected(self):
        with pytest.raises(DependencyError):
            CSD("a", "b", (0, 1), [])

    def test_multi_lhs_rejected(self):
        with pytest.raises(DependencyError):
            CSD(["a", "b"], "c", (0, 1), [(0, 1)])
