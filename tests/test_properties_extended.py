"""Property-based tests, batch 2: conditional/metric/order invariants."""


from hypothesis import given, settings, strategies as st

from repro.core import (
    CFD,
    DC,
    DD,
    FD,
    Interval,
    MFD,
    MVD,
    NUD,
    OD,
    SD,
    pred2,
)
from repro.relation import Relation

small_values = st.integers(min_value=0, max_value=3)
num_values = st.integers(min_value=0, max_value=6)


@st.composite
def relations(draw, n_cols=3, max_rows=8, numerical=False):
    n_rows = draw(st.integers(min_value=0, max_value=max_rows))
    value = num_values if numerical else small_values
    rows = [
        tuple(draw(value) for __ in range(n_cols)) for __ in range(n_rows)
    ]
    return Relation.from_rows([f"A{c}" for c in range(n_cols)], rows)


@st.composite
def intervals(draw):
    low = draw(st.floats(min_value=-50, max_value=50))
    width = draw(st.floats(min_value=0, max_value=50))
    return Interval(
        low,
        low + width,
        low_open=draw(st.booleans()) and width > 0,
        high_open=draw(st.booleans()) and width > 0,
    )


# -- interval algebra ----------------------------------------------------


@given(intervals(), st.floats(min_value=-100, max_value=100))
def test_interval_subsume_implies_contains(iv, x):
    wide = Interval(iv.low - 1, iv.high + 1)
    assert wide.subsumes(iv)
    if iv.contains(x):
        assert wide.contains(x)


@given(intervals(), intervals(), st.floats(min_value=-100, max_value=100))
def test_interval_subsumption_transfers_membership(a, b, x):
    if a.subsumes(b) and b.contains(x):
        assert a.contains(x)


# -- conditional rules -----------------------------------------------------


@given(relations())
@settings(max_examples=40)
def test_cfd_holds_on_subset_when_fd_holds(r):
    """A CFD can only be *easier* to satisfy than its embedded FD."""
    fd = FD(("A0",), ("A1",))
    cfd = CFD(("A0",), ("A1",), {"A0": 1})
    if fd.holds(r):
        assert cfd.holds(r)


@given(relations())
@settings(max_examples=40)
def test_cfd_violations_subset_of_fd_violations(r):
    fd = FD(("A0",), ("A1",))
    cfd = CFD(("A0",), ("A1",), {"A0": 2})
    cfd_pairs = {
        v.tuples for v in cfd.violations(r) if len(v.tuples) == 2
    }
    fd_pairs = {v.tuples for v in fd.violations(r)}
    assert cfd_pairs <= fd_pairs


@given(relations())
@settings(max_examples=40)
def test_nud_weight_monotone(r):
    """If a NUD holds at weight k it holds at any k' >= k."""
    k = NUD("A0", "A1").max_fanout(r)
    if k >= 1:
        assert NUD("A0", "A1", k + 1).holds(r)
        assert NUD("A0", "A1", k + 3).holds(r)


# -- metric rules -----------------------------------------------------------


@given(relations(numerical=True), st.floats(min_value=0, max_value=10))
@settings(max_examples=40)
def test_mfd_delta_monotone(r, delta):
    """If an MFD holds at delta it holds at any larger delta."""
    tight = MFD(("A0",), ("A1",), delta)
    loose = MFD(("A0",), ("A1",), delta + 1.0)
    if tight.holds(r):
        assert loose.holds(r)


@given(relations(numerical=True))
@settings(max_examples=40)
def test_dd_looser_rhs_weaker(r):
    tight = DD({"A0": 2}, {"A1": 1})
    loose = DD({"A0": 2}, {"A1": 3})
    if tight.holds(r):
        assert loose.holds(r)


@given(relations(numerical=True))
@settings(max_examples=40)
def test_dd_tighter_lhs_weaker(r):
    wide = DD({"A0": 3}, {"A1": 2})
    narrow = DD({"A0": 1}, {"A1": 2})
    if wide.holds(r):
        assert narrow.holds(r)


@given(relations(numerical=True))
@settings(max_examples=40)
def test_mfd_approximate_agrees_with_exact(r):
    mfd = MFD(("A0",), ("A1",), 2.0)
    assert mfd.holds_approximate(r) == mfd.holds(r)


# -- order rules ------------------------------------------------------------


@given(relations(numerical=True))
@settings(max_examples=40)
def test_od_strict_weaker_than_nonstrict(r):
    """<= marks fire on more pairs than <, so the <= OD is stronger."""
    nonstrict = OD([("A0", "<=")], [("A1", "<=")])
    strict = OD([("A0", "<")], [("A1", "<=")])
    if nonstrict.holds(r):
        assert strict.holds(r)


@given(relations(numerical=True))
@settings(max_examples=40)
def test_dc_symmetric_pair_semantics(r):
    """dc over (subtotal-style) pair is orientation-complete: adding
    the mirrored DC changes nothing."""
    dc = DC([pred2("A0", "<"), pred2("A1", ">")])
    mirrored = DC([pred2("A0", ">"), pred2("A1", "<")])
    assert dc.holds(r) == mirrored.holds(r)


@given(relations(numerical=True))
@settings(max_examples=40)
def test_sd_gap_widening_monotone(r):
    tight = SD("A0", "A1", (0, 2))
    loose = SD("A0", "A1", (-1, 3))
    if tight.holds(r):
        assert loose.holds(r)


@given(relations(numerical=True))
@settings(max_examples=40)
def test_sd_confidence_bounds_and_exactness(r):
    sd = SD("A0", "A1", (0, 3))
    c = sd.confidence(r)
    assert 0.0 <= c <= 1.0
    if sd.holds(r) and len(sd.sorted_indices(r)) == len(r):
        assert c == 1.0


# -- tuple-generating rules --------------------------------------------------


@given(relations())
@settings(max_examples=30)
def test_mvd_complementation(r):
    """X ->> Y iff X ->> Z (the complementation rule), Z = R - X - Y."""
    mvd_y = MVD(("A0",), ("A1",))
    mvd_z = MVD(("A0",), ("A2",))
    assert mvd_y.holds(r) == mvd_z.holds(r)


@given(relations())
@settings(max_examples=30)
def test_mvd_spurious_zero_iff_holds(r):
    mvd = MVD(("A0",), ("A1",))
    assert (mvd.spurious_fraction(r) == 0.0) == mvd.holds(r)


# -- repair/dedup postconditions ----------------------------------------------


@given(relations())
@settings(max_examples=25, deadline=None)
def test_dedup_identify_postcondition(r):
    from repro.core import MD
    from repro.quality import Deduplicator

    dedup = Deduplicator([MD({"A0": 0.0}, "A1")])
    identified = dedup.identify(r)
    # Identification enforces the MD it was built from.
    assert MD({"A0": 0.0}, "A1").holds(identified)
    assert len(identified) == len(r)
