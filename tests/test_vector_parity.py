"""Property tests: the vectorized backend must agree with everything.

``test_plan_parity`` pins scalar plan kernels to the naive scan; this
suite adds the third path — the columnar kernels of
``repro.plan.kernels_vec`` under a forced ``kernel_backend("vector")``
— and drives all three to identical violation lists over the same
hostile value pool (``None``/NaN/bool/int/float/str), plus the edge
regimes the batch code paths are most likely to get wrong: all-NaN and
all-``None`` columns, empty and single-row relations, ``restrict=``
and ``first_only=``.  Non-vectorizable plans (opaque predicates,
string order columns, text metrics) must *fall back* to the scalar
kernels, which is asserted through the backend-aware counters.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.heterogeneous.cd import CD, SimilarityFunction
from repro.core.heterogeneous.dd import CDD, DD
from repro.core.heterogeneous.ffd import FFD
from repro.core.heterogeneous.md import CMD, MD
from repro.core.heterogeneous.mfd import MFD
from repro.core.heterogeneous.ned import NED
from repro.core.heterogeneous.pac import PAC
from repro.core.categorical.fd import FD
from repro.core.numerical.dc import DC, pred2, predc
from repro.core.numerical.od import OD
from repro.core.numerical.ofd import OFD
from repro.plan import (
    COUNTERS,
    kernel_backend,
    pairwise_violations,
    plan_for,
    plan_mode,
)
from repro.relation import Attribute, AttributeType, Relation, Schema

# A single shared NaN object: dict-key semantics (identity shortcut)
# make repeated occurrences group together; all paths must agree.
NAN = float("nan")

MIXED = st.sampled_from(
    [None, 0, 1, 2, 3, True, False, 1.0, 2.5, -1, "x", "y", "", NAN]
)

#: Numeric-only pool (plus missing data): exercises the float
#: projections, ``searchsorted`` windows and ``abs_diff`` corrections.
NUMERIC = st.sampled_from(
    [None, 0, 1, 2, 3, True, False, 1.0, 2.5, -1.0, 100, NAN]
)


@st.composite
def relations(draw, pool=MIXED, attr_type=AttributeType.CATEGORICAL,
              max_rows=16):
    n_rows = draw(st.integers(min_value=0, max_value=max_rows))
    schema = Schema([Attribute(f"A{c}", attr_type) for c in range(3)])
    rows = [tuple(draw(pool) for __ in range(3)) for __ in range(n_rows)]
    return Relation.from_rows(schema, rows)


def make_dependencies():
    """One representative per plan-compiled notation, over A0..A2."""
    return [
        FD(["A0"], ["A1"]),
        FD(["A0", "A1"], ["A2"]),
        MFD(["A0"], ["A1"], 1.0),
        NED({"A0": 2.0}, {"A1": 1.0}),
        DD({"A0": ("<=", 2.0)}, {"A1": (">", 1.0)}),
        CDD({"A0": ("<=", 2.0)}, {"A1": (">", 1.0)}, {"A2": "x"}),
        MD({"A0": 2.0}, ["A1"]),
        CMD({"A0": 2.0}, "A1", {"A2": 1}),
        PAC({"A0": 2.0}, {"A1": 1.0}, 0.8),
        OD([("A0", "<=")], [("A1", "<=")]),
        OD([("A0", "<")], [("A1", ">=")]),
        OFD(["A0"], ["A1"], ordering="pointwise"),
        DC([pred2("A0", "="), pred2("A1", "!=")]),
        DC([pred2("A0", "<="), pred2("A1", ">")]),
        DC([pred2("A0", "<", "A1")]),
        DC([predc("A0", ">", 1.0), predc("A1", "<=", 2.0)]),
        DC([pred2("A0", "="), predc("A2", "=", "x")]),
    ]


def snapshot(dep, relation):
    return [(v.tuples, v.reason) for v in dep.violations(relation)]


def three_way(dep, relation):
    """(naive, scalar-plan, vectorized-plan) snapshots."""
    with plan_mode("naive"):
        naive = snapshot(dep, relation)
    with kernel_backend("scalar"), plan_mode("plan"):
        scalar = snapshot(dep, relation)
    with kernel_backend("vector"), plan_mode("plan"):
        vector = snapshot(dep, relation)
    return naive, scalar, vector


@given(relations())
@settings(max_examples=40, deadline=None)
def test_three_way_parity_mixed(relation):
    for dep in make_dependencies():
        naive, scalar, vector = three_way(dep, relation)
        assert scalar == naive, f"scalar divergence for {dep.label()}"
        assert vector == naive, f"vector divergence for {dep.label()}"


@given(relations(pool=NUMERIC, attr_type=AttributeType.NUMERICAL))
@settings(max_examples=40, deadline=None)
def test_three_way_parity_numeric(relation):
    """NUMERICAL attributes resolve abs_diff: the vec-metric path."""
    for dep in make_dependencies():
        naive, scalar, vector = three_way(dep, relation)
        assert scalar == naive, f"scalar divergence for {dep.label()}"
        assert vector == naive, f"vector divergence for {dep.label()}"


@given(st.integers(min_value=0, max_value=5))
@settings(max_examples=10, deadline=None)
def test_degenerate_columns(n_rows):
    """All-NaN, all-None and constant columns, in every combination."""
    schema = Schema(
        [Attribute(f"A{c}", AttributeType.NUMERICAL) for c in range(3)]
    )
    for cols in (
        (NAN, None, 1.0),
        (None, None, None),
        (NAN, NAN, NAN),
        (None, NAN, NAN),
        (1.0, None, NAN),
    ):
        relation = Relation.from_rows(schema, [cols] * n_rows)
        for dep in make_dependencies():
            naive, scalar, vector = three_way(dep, relation)
            assert scalar == naive, (dep.label(), cols)
            assert vector == naive, (dep.label(), cols)


def test_empty_and_single_row():
    schema = Schema(
        [Attribute(f"A{c}", AttributeType.NUMERICAL) for c in range(3)]
    )
    for rows in ([], [(1.0, 2.0, 3.0)]):
        relation = Relation.from_rows(schema, rows)
        for dep in make_dependencies():
            naive, scalar, vector = three_way(dep, relation)
            assert scalar == naive == vector, dep.label()


@given(
    relations(pool=NUMERIC, attr_type=AttributeType.NUMERICAL),
    st.sets(st.integers(min_value=0, max_value=15)),
)
@settings(max_examples=30, deadline=None)
def test_restrict_parity_vectorized(relation, restrict):
    restrict = {r for r in restrict if r < len(relation)}
    pairwise = [
        d
        for d in make_dependencies()
        if hasattr(type(d), "pair_violation") and not isinstance(d, PAC)
    ]
    for dep in pairwise:
        with plan_mode("naive"):
            expected = [
                ((i, j), reason)
                for i, j in relation.tuple_pairs()
                if (i in restrict or j in restrict)
                and (reason := dep.pair_violation(relation, i, j))
                is not None
            ]
        with kernel_backend("vector"), plan_mode("plan"):
            got = [
                (v.tuples, v.reason)
                for v in pairwise_violations(dep, relation, restrict=restrict)
            ]
        assert got == expected, f"restrict divergence for {dep.label()}"


@given(relations(pool=NUMERIC, attr_type=AttributeType.NUMERICAL))
@settings(max_examples=30, deadline=None)
def test_first_only_matches_existence_vectorized(relation):
    pairwise = [
        d
        for d in make_dependencies()
        if hasattr(type(d), "pair_violation") and not isinstance(d, PAC)
    ]
    for dep in pairwise:
        with plan_mode("naive"):
            any_naive = any(
                dep.pair_violation(relation, i, j) is not None
                for i, j in relation.tuple_pairs()
            )
        with kernel_backend("vector"), plan_mode("plan"):
            first = pairwise_violations(dep, relation, first_only=True)
        assert bool(first) == any_naive, (
            f"first_only divergence for {dep.label()}"
        )


# -- fallback and counter contracts ------------------------------------------


def _rows_numeric(n):
    schema = Schema(
        [Attribute(f"A{c}", AttributeType.NUMERICAL) for c in range(3)]
    )
    return Relation.from_rows(
        schema, [(float(i % 7), float(i % 5), float(i % 3)) for i in range(n)]
    )


def test_static_fallback_counter_asserted():
    """Opaque-atom plans must run scalar even under forced vector."""
    relation = _rows_numeric(12)
    deps = [
        CD(
            [SimilarityFunction("A0", "A1", threshold_ij=2.0)],
            SimilarityFunction("A1", "A2", threshold_ij=1.0),
        ),
        FFD(["A0"], ["A1"]),
        OFD(["A0", "A1"], ["A2"], ordering="lex"),
    ]
    for dep in deps:
        assert not plan_for(dep).vector_eligible, dep.label()
        COUNTERS.reset()
        with plan_mode("naive"):
            expected = snapshot(dep, relation)
        with kernel_backend("vector"), plan_mode("plan"):
            got = snapshot(dep, relation)
        assert got == expected, dep.label()
        assert COUNTERS.by_strategy, dep.label()
        assert not any(
            s.startswith("vec-") for s in COUNTERS.by_strategy
        ), (dep.label(), COUNTERS.by_strategy)
        assert COUNTERS.backends().get("scalar"), dep.label()


def test_dynamic_fallback_string_order_columns():
    """A vector-eligible OD plan still falls back on string columns."""
    schema = Schema(
        [Attribute("A0", AttributeType.CATEGORICAL),
         Attribute("A1", AttributeType.CATEGORICAL)]
    )
    relation = Relation.from_rows(
        schema, [(chr(97 + i % 9), chr(97 + i % 7)) for i in range(24)]
    )
    dep = OD([("A0", "<=")], [("A1", "<=")])
    assert plan_for(dep).vector_eligible
    COUNTERS.reset()
    with plan_mode("naive"):
        expected = snapshot(dep, relation)
    with kernel_backend("vector"), plan_mode("plan"):
        got = snapshot(dep, relation)
    assert got == expected
    assert not any(s.startswith("vec-") for s in COUNTERS.by_strategy)
    assert COUNTERS.backends() == {"scalar": COUNTERS.executions}


def test_vectorized_counters_recorded():
    # MFD routes through execute_pairs (FD has a bespoke group engine)
    # and its equality guard selects the group strategy.
    relation = _rows_numeric(32)
    dep = MFD(["A0"], ["A1"], 0.5)
    COUNTERS.reset()
    with kernel_backend("vector"), plan_mode("plan"):
        got = snapshot(dep, relation)
    with plan_mode("naive"):
        assert got == snapshot(dep, relation)
    assert COUNTERS.by_strategy.get("vec-group")
    assert COUNTERS.chunks > 0
    assert COUNTERS.candidates_by_strategy.get("vec-group", 0) > 0
    assert COUNTERS.verified_by_strategy.get("vec-group", 0) == len(got)
    assert COUNTERS.backends() == {"vectorized": COUNTERS.executions}


def test_pruned_fraction_zero_candidate_guard():
    """No recorded pair space must yield 0.0, not a division error."""
    COUNTERS.reset()
    assert COUNTERS.pruned_fraction() == 0.0
    relation = Relation.from_rows(
        Schema([Attribute("A0", AttributeType.NUMERICAL)]), []
    )
    dep = FD(["A0"], ["A0"])
    with kernel_backend("vector"), plan_mode("plan"):
        assert snapshot(dep, relation) == []
    assert COUNTERS.pruned_fraction() == 0.0


# ---------------------------------------------------------------------------
# extend/apply_delta must not leak stale kernel caches (server ingest path)


def _numeric_relation(values):
    schema = Schema([Attribute("v", AttributeType.NUMERICAL)])
    return Relation.from_rows(schema, [(v,) for v in values])


def test_extend_patches_sorted_projection_cache():
    """extend() carries the encoding forward with exact patched caches."""
    import numpy as np

    base = _numeric_relation([5.0, 1.0, 3.0, None, 3.0])
    # Warm every kernel cache on the parent.
    enc = base.encoding()
    enc.float_array(0)
    enc.valid_array(0)
    enc.sorted_projection(0)

    child = base.extend([(2.0,), (3.0,), (None,), (0.5,)])
    got_rows, got_vals = child.encoding().sorted_projection(0)

    cold = _numeric_relation([5.0, 1.0, 3.0, None, 3.0, 2.0, 3.0, None, 0.5])
    want_rows, want_vals = cold.encoding().sorted_projection(0)
    # Exact equality including tie order (stable-sort semantics).
    assert np.array_equal(got_rows, want_rows)
    assert np.array_equal(got_vals, want_vals)
    assert np.array_equal(child.encoding().float_array(0),
                          cold.encoding().float_array(0), equal_nan=True)
    assert np.array_equal(child.encoding().valid_array(0),
                          cold.encoding().valid_array(0))
    # The parent's caches are untouched (immutable, still 5 rows).
    assert len(base.encoding().float_array(0)) == 5


def test_extend_numeric_safety_flip_drops_float_caches():
    """A tail value that breaks numeric safety must invalidate, not patch."""
    base = _numeric_relation([1.0, 2.0])
    enc = base.encoding()
    enc.sorted_projection(0)
    child = base.extend([("not-a-number",)])
    cc = child.encoding().column_codes(0)
    assert cc.numeric_safe is False
    assert cc._floats is None and cc._sorted is None


def test_extend_then_check_parity_vector_backend():
    """Stale-cache regression: extend-then-check equals a cold check."""
    schema = Schema([
        Attribute("a", AttributeType.NUMERICAL),
        Attribute("b", AttributeType.NUMERICAL),
    ])
    head = [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0), (None, 5.0)]
    tail = [(2.0, 25.0), (0.5, 40.0), (3.0, 30.0)]
    dep = OD(["a"], [("b", ">=")])

    warm = Relation.from_rows(schema, head)
    plan = plan_for(dep)
    with kernel_backend("vector"):
        # Warm the sorted projections on the pre-extension relation...
        before = snapshot(dep, warm)
        # ...then extend and re-check through the patched caches.
        extended = warm.extend(tail)
        got = snapshot(dep, extended)
        cold = snapshot(dep, Relation.from_rows(schema, head + tail))
    assert plan is not None
    assert got == cold
    assert before != got  # the tail does change the answer


def test_apply_delta_insert_only_check_parity_vector_backend():
    schema = Schema([
        Attribute("a", AttributeType.NUMERICAL),
        Attribute("b", AttributeType.NUMERICAL),
    ])
    head = [(1.0, 1.0), (2.0, 4.0), (3.0, 9.0)]
    dep = DC([pred2("a", "<", "a"), pred2("b", ">=", "b")])

    warm = Relation.from_rows(schema, head)
    with kernel_backend("vector"):
        snapshot(dep, warm)  # warm caches
        stepped = warm.apply_delta(
            {"insert": [[1.5, 100.0], [2.5, 0.25]]}
        )
        got = snapshot(dep, stepped)
        cold = snapshot(
            dep,
            Relation.from_rows(schema, head + [(1.5, 100.0), (2.5, 0.25)]),
        )
    assert got == cold
