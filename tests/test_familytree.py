"""Tests for the executable family tree (Fig. 1A)."""

import pytest

from repro.core import (
    CFD,
    DD,
    ECFD,
    FD,
    MD,
    MFD,
    MVD,
    NED,
    OD,
    OFD,
    SD,
)
from repro.core.familytree import (
    BRANCHES,
    CLASSES,
    DEFAULT_TREE,
    EDGES,
    verify_edge,
)
from repro.datasets import random_relation


class TestStructure:
    def test_is_a_dag(self):
        assert DEFAULT_TREE.is_dag()

    def test_24_notations_and_24_edges(self):
        assert len(BRANCHES) == 24
        assert len(EDGES) == 24

    def test_roots_are_fd_and_ofd(self):
        assert DEFAULT_TREE.roots() == ["FD", "OFD"]

    def test_every_notation_has_a_class(self):
        assert set(CLASSES) == set(BRANCHES)

    def test_branch_sizes_match_paper_sections(self):
        by_branch = DEFAULT_TREE.by_branch()
        assert len(by_branch["categorical"]) == 10
        assert len(by_branch["heterogeneous"]) == 9
        assert len(by_branch["numerical"]) == 5

    def test_dc_subsumes_fd_transitively(self):
        """FD -> CFD -> eCFD -> DC: the paper's deepest chain."""
        assert DEFAULT_TREE.extends("DC", "FD")
        assert DEFAULT_TREE.extension_path("FD", "DC") == [
            "FD", "CFD", "eCFD", "DC",
        ]

    def test_specializations_of_dc(self):
        specs = DEFAULT_TREE.specializations("DC")
        assert {"FD", "CFD", "eCFD", "OD", "OFD"} <= set(specs)

    def test_generalizations_of_fd(self):
        gens = DEFAULT_TREE.generalizations("FD")
        # FD reaches every categorical/heterogeneous notation and,
        # through eCFD, the DCs.
        assert {"SFD", "PFD", "AFD", "NUD", "CFD", "eCFD", "MVD", "MFD",
                "NED", "DD", "CDD", "CD", "PAC", "FFD", "MD", "CMD",
                "DC"} <= set(gens)
        assert "OFD" not in gens

    def test_no_edge_between_unrelated(self):
        with pytest.raises(KeyError):
            DEFAULT_TREE.edge("SFD", "PFD")

    def test_to_text_mentions_every_edge(self):
        text = DEFAULT_TREE.to_text()
        for e in EDGES:
            assert e.target in text


class TestEmbeddingChains:
    def test_embed_along_path_fd_to_dd(self, r6):
        """FD --MFD--NED--DD chain rewrites an FD into an equivalent DD."""
        dep = FD("address", "region")
        path = DEFAULT_TREE.extension_path("FD", "DD")
        embedded = DEFAULT_TREE.embed_along_path(dep, path)
        assert isinstance(embedded, DD)
        for seed in range(5):
            r = random_relation(8, 4, 3, seed=seed)
            dep2 = FD("A0", "A1")
            emb2 = DEFAULT_TREE.embed_along_path(
                dep2, DEFAULT_TREE.extension_path("FD", "DD")
            )
            assert emb2.holds(r) == dep2.holds(r)

    def test_embed_along_path_ofd_to_dc(self):
        dep = OFD("A0", "A1")
        path = DEFAULT_TREE.extension_path("OFD", "DC")
        for seed in range(5):
            r = random_relation(8, 3, 5, seed=seed, numerical=True)
            embedded = DEFAULT_TREE.embed_along_path(dep, path)
            assert embedded.holds(r) == dep.holds(r)


def _sample_for(source: str):
    """A representative child dependency per edge source."""
    return {
        "FD": FD(("A0", "A1"), ("A2",)),
        "CFD": CFD(("A0", "A1"), ("A2",), {"A0": 1}),
        "MVD": MVD(("A0",), ("A1",)),
        "MFD": MFD(("A0",), ("A1",), 1.0),
        "NED": NED({"A0": 1}, {"A1": 2}),
        "DD": DD({"A0": 1}, {"A1": 2}),
        "MD": MD({"A0": 1.0}, "A1"),
        "OFD": OFD(("A0",), ("A1",)),
        "OD": OD([("A0", "<=")], [("A1", ">=")]),
        "eCFD": ECFD(("A0", "A1"), ("A2",), {"A0": ("<=", 2)}),
        "SD": SD("A0", "A1", (0, None)),
    }[source]


@pytest.mark.parametrize("edge", EDGES, ids=lambda e: f"{e.source}->{e.target}")
def test_every_edge_verifies_on_random_relations(edge):
    """The reproduction of Fig. 1A: each arrow's claim holds empirically."""
    numerical = edge.source in {"MFD", "NED", "DD", "MD", "OFD", "OD",
                                "eCFD", "SD"}
    relations = [
        random_relation(n, 4, 3 if not numerical else 5, seed=s,
                        numerical=numerical)
        for s in range(6)
        for n in (4, 9)
    ]
    result = verify_edge(edge, _sample_for(edge.source), relations)
    assert result.passed, (
        f"{edge}: counterexamples {result.counterexamples[:3]}"
    )
