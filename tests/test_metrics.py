"""Unit tests for string/numeric metrics and the registry."""

import math

import pytest

from repro.metrics import (
    ABS_DIFF,
    DISCRETE,
    EDIT_DISTANCE,
    JACCARD_METRIC,
    JARO_WINKLER_METRIC,
    Metric,
    MetricRegistry,
    QGRAM_METRIC,
    check_metric_axioms,
    damerau_levenshtein,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    qgram_distance,
)
from repro.relation import Attribute, AttributeType, Schema


class TestLevenshtein:
    def test_identity(self):
        assert levenshtein("abc", "abc") == 0

    def test_known_distances(self):
        assert levenshtein("kitten", "sitting") == 3
        assert levenshtein("", "abc") == 3
        assert levenshtein("Chicago", "Chicago, IL") == 4

    def test_paper_examples_from_table6(self):
        # ned1: t2/t6 distances (Section 3.2.1).  The paper quotes the
        # street distance as 3; standard Levenshtein gives 1 (single
        # substitution '.' -> 'r') — both satisfy the <= 5 threshold,
        # so ned1's conclusion is unchanged (see EXPERIMENTS.md).
        assert levenshtein("NC", "NC") == 0
        assert levenshtein("#2 Ave, 12th St.", "#2 Aven, 12th St.") == 1
        assert levenshtein("12th St.", "12th Str") == 1

    def test_symmetry(self):
        assert levenshtein("abcd", "badc") == levenshtein("badc", "abcd")

    def test_bounded_early_exit(self):
        assert levenshtein("aaaa", "bbbb", bound=2) == 3  # bound + 1
        assert levenshtein("aaaa", "aaab", bound=2) == 1

    def test_bounded_length_shortcut(self):
        assert levenshtein("a", "abcdef", bound=2) == 3


class TestOtherStringMetrics:
    def test_damerau_transposition(self):
        assert damerau_levenshtein("ab", "ba") == 1
        assert levenshtein("ab", "ba") == 2

    def test_jaccard(self):
        assert jaccard("a b c", "a b") == pytest.approx(2 / 3)
        assert jaccard("", "") == 1.0

    def test_qgram(self):
        assert qgram_distance("abc", "abc") == 0
        assert qgram_distance("abc", "abd") > 0

    def test_jaro_bounds(self):
        assert jaro("abc", "abc") == 1.0
        assert jaro("abc", "xyz") == 0.0
        assert 0.0 <= jaro("martha", "marhta") <= 1.0

    def test_jaro_winkler_prefix_boost(self):
        assert jaro_winkler("prefixed", "prefixes") >= jaro(
            "prefixed", "prefixes"
        )


class TestMetricWrapper:
    def test_none_handling(self):
        assert EDIT_DISTANCE.distance(None, None) == 0.0
        assert EDIT_DISTANCE.distance(None, "x") == math.inf
        assert EDIT_DISTANCE.similarity(None, "x") == 0.0
        assert EDIT_DISTANCE.similarity(None, None) == 1.0

    def test_within(self):
        assert ABS_DIFF.within(10, 13, 3)
        assert not ABS_DIFF.within(10, 14, 3)

    def test_default_similarity(self):
        assert ABS_DIFF.similarity(0, 1) == pytest.approx(0.5)

    def test_negative_distance_rejected(self):
        bad = Metric("bad", lambda a, b: -1.0)
        with pytest.raises(ValueError):
            bad.distance(1, 2)

    def test_callable(self):
        assert ABS_DIFF(3, 5) == 2.0

    def test_axiom_checker_passes_for_shipped_metrics(self):
        samples = ["", "a", "ab", "ba", "hello world"]
        for m in (EDIT_DISTANCE, JACCARD_METRIC, QGRAM_METRIC,
                  JARO_WINKLER_METRIC):
            assert check_metric_axioms(m, samples) == []
        assert check_metric_axioms(ABS_DIFF, [0, 1, -5, 2.5]) == []
        assert check_metric_axioms(DISCRETE, [0, "x", None is None]) == []

    def test_axiom_checker_catches_asymmetry(self):
        bad = Metric("asym", lambda a, b: float(len(str(a))))
        assert check_metric_axioms(bad, ["a", "bb"]) != []


class TestRegistry:
    def test_type_defaults(self):
        reg = MetricRegistry()
        text = Attribute("t", AttributeType.TEXT)
        num = Attribute("n", AttributeType.NUMERICAL)
        assert reg.metric_for(text) is EDIT_DISTANCE
        assert reg.metric_for(num) is ABS_DIFF

    def test_override(self):
        reg = MetricRegistry().bind("t", DISCRETE)
        assert reg.metric_for(Attribute("t", AttributeType.TEXT)) is DISCRETE

    def test_bind_is_functional(self):
        reg = MetricRegistry()
        reg2 = reg.bind("x", DISCRETE)
        assert reg.metric_for("x") is not DISCRETE
        assert reg2.metric_for("x") is DISCRETE

    def test_for_schema(self):
        schema = Schema(
            [
                Attribute("t", AttributeType.TEXT),
                Attribute("n", AttributeType.NUMERICAL),
            ]
        )
        resolved = MetricRegistry().for_schema(schema)
        assert resolved["t"] is EDIT_DISTANCE
        assert resolved["n"] is ABS_DIFF

    def test_string_name_falls_back_to_text_default(self):
        assert MetricRegistry().metric_for("unknown") is EDIT_DISTANCE
