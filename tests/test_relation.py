"""Unit tests for repro.relation.relation."""

import pytest

from repro.relation import Relation


@pytest.fixture
def rel():
    return Relation.from_rows(
        ["a", "b", "c"],
        [(1, "x", 10), (1, "y", 20), (2, "x", 10), (2, "x", 30)],
    )


class TestConstruction:
    def test_from_rows_width_check(self):
        with pytest.raises(ValueError):
            Relation.from_rows(["a", "b"], [(1,)])

    def test_from_dicts_fills_missing_with_none(self):
        r = Relation.from_dicts(["a", "b"], [{"a": 1}])
        assert r.tuple_at(0) == (1, None)

    def test_from_columns_mapping(self):
        r = Relation.from_columns(["a", "b"], {"b": [2, 4], "a": [1, 3]})
        assert r.rows() == [(1, 2), (3, 4)]

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            Relation.from_columns(["a", "b"], [[1, 2], [3]])

    def test_empty(self):
        r = Relation.empty(["a"])
        assert len(r) == 0
        assert r.rows() == []

    def test_bool_is_always_true(self):
        assert Relation.empty(["a"])


class TestAccess:
    def test_column(self, rel):
        assert rel.column("b") == ("x", "y", "x", "x")

    def test_tuple_at_bounds(self, rel):
        with pytest.raises(IndexError):
            rel.tuple_at(4)
        with pytest.raises(IndexError):
            rel.tuple_at(-1)

    def test_record_at(self, rel):
        assert rel.record_at(1) == {"a": 1, "b": "y", "c": 20}

    def test_values_at(self, rel):
        assert rel.values_at(3, ["c", "a"]) == (30, 2)

    def test_iter_yields_rows(self, rel):
        assert list(rel) == rel.rows()


class TestAlgebra:
    def test_project_dedupes(self, rel):
        p = rel.project(["b"])
        assert sorted(p.rows()) == [("x",), ("y",)]

    def test_project_bag_keeps_duplicates(self, rel):
        p = rel.project_bag(["b"])
        assert len(p) == 4

    def test_select(self, rel):
        s = rel.select(lambda t: t["a"] == 2)
        assert len(s) == 2

    def test_take_and_drop(self, rel):
        assert rel.take([0, 3]).rows() == [(1, "x", 10), (2, "x", 30)]
        assert len(rel.drop([0])) == 3

    def test_extend(self, rel):
        r2 = rel.extend([(9, "z", 99)])
        assert len(r2) == 5
        assert len(rel) == 4  # original untouched

    def test_with_value_is_functional(self, rel):
        r2 = rel.with_value(0, "b", "Q")
        assert r2.value_at(0, "b") == "Q"
        assert rel.value_at(0, "b") == "x"

    def test_with_value_bounds(self, rel):
        with pytest.raises(IndexError):
            rel.with_value(10, "b", "Q")

    def test_natural_join(self):
        left = Relation.from_rows(["k", "x"], [(1, "a"), (2, "b")])
        right = Relation.from_rows(["k", "y"], [(1, "A"), (1, "B")])
        j = left.natural_join(right)
        assert sorted(j.rows()) == [(1, "a", "A"), (1, "a", "B")]
        assert j.schema.names() == ("k", "x", "y")

    def test_join_no_shared_attributes_is_cross_product(self):
        left = Relation.from_rows(["x"], [(1,), (2,)])
        right = Relation.from_rows(["y"], [("a",)])
        assert len(left.natural_join(right)) == 2

    def test_distinct(self):
        r = Relation.from_rows(["a"], [(1,), (1,), (2,)])
        assert len(r.distinct()) == 2


class TestGrouping:
    def test_group_by(self, rel):
        groups = rel.group_by(["a"])
        assert groups[(1,)] == [0, 1]
        assert groups[(2,)] == [2, 3]

    def test_distinct_count(self, rel):
        assert rel.distinct_count(["a"]) == 2
        assert rel.distinct_count(["a", "b"]) == 3

    def test_value_counts(self, rel):
        assert rel.value_counts("b") == {"x": 3, "y": 1}

    def test_tuple_pairs_count(self, rel):
        assert len(list(rel.tuple_pairs())) == 6

    def test_sample_deterministic(self, rel):
        assert rel.sample(2, seed=7).rows() == rel.sample(2, seed=7).rows()
        assert len(rel.sample(2)) == 2
        assert rel.sample(100) is rel


class TestMisc:
    def test_equality(self, rel):
        same = Relation.from_rows(["a", "b", "c"], rel.rows())
        assert rel == same

    def test_to_text_header(self, rel):
        text = rel.to_text()
        assert text.splitlines()[0].split() == ["a", "b", "c"]

    def test_to_text_truncation(self):
        r = Relation.from_rows(["a"], [(i,) for i in range(30)])
        assert "more tuples" in r.to_text(max_rows=5)

    def test_none_values_roundtrip(self):
        r = Relation.from_rows(["a"], [(None,)])
        assert r.value_at(0, "a") is None
