"""Tests for the shared framework: violations, conjunctions, results."""

import pytest

from repro.core import Conjunction, DependencyError, FD, Violation, ViolationSet
from repro.core.base import brute_force_pairs, format_attrs
from repro.discovery.common import (
    DiscoveryResult,
    DiscoveryStats,
    generate_next_level,
    is_superset_of_any,
    proper_subsets,
    subsets_of_size,
)
from repro.relation import Relation


class TestViolation:
    def test_tuples_normalized_sorted(self):
        v = Violation("dep", (3, 1))
        assert v.tuples == (1, 3)

    def test_involves(self):
        v = Violation("dep", (1, 3))
        assert v.involves(3) and not v.involves(2)

    def test_str_contains_reason(self):
        v = Violation("FD: a -> b", (0, 1), "because")
        assert "because" in str(v) and "t0" in str(v)


class TestViolationSet:
    def test_dedupes_on_dependency_and_tuples(self):
        vs = ViolationSet()
        vs.add(Violation("d", (0, 1), "x"))
        vs.add(Violation("d", (1, 0), "y"))  # same pair, same dep
        assert len(vs) == 1

    def test_different_dependencies_kept(self):
        vs = ViolationSet([Violation("a", (0, 1)), Violation("b", (0, 1))])
        assert len(vs) == 2

    def test_tuple_indices_and_pairs(self):
        vs = ViolationSet([Violation("d", (0, 1)), Violation("d", (2,))])
        assert vs.tuple_indices() == {0, 1, 2}
        assert vs.pairs() == {(0, 1)}

    def test_by_dependency(self):
        vs = ViolationSet([Violation("a", (0, 1)), Violation("b", (1, 2))])
        grouped = vs.by_dependency()
        assert set(grouped) == {"a", "b"}

    def test_summary_truncates(self):
        vs = ViolationSet(
            Violation("d", (i, i + 1)) for i in range(20)
        )
        text = vs.summary(limit=3)
        assert "and 17 more" in text

    def test_empty_summary(self):
        assert "no violations" in ViolationSet().summary()

    def test_indexing_and_bool(self):
        vs = ViolationSet([Violation("d", (0, 1))])
        assert vs[0].tuples == (0, 1)
        assert vs
        assert not ViolationSet()


class TestConjunction:
    def test_holds_is_and(self):
        r = Relation.from_rows(["a", "b"], [(1, 1), (1, 2)])
        good = FD("b", "a")
        bad = FD("a", "b")
        assert not Conjunction([good, bad]).holds(r)
        assert Conjunction([good]).holds(r)

    def test_violations_aggregate(self):
        r = Relation.from_rows(["a", "b"], [(1, 1), (1, 2)])
        conj = Conjunction([FD("a", "b"), FD("b", "a")])
        assert len(conj.violations(r)) == 1

    def test_empty_rejected(self):
        with pytest.raises(DependencyError):
            Conjunction([])

    def test_attributes_union(self):
        conj = Conjunction([FD("a", "b"), FD("b", "c")])
        assert conj.attributes() == ("a", "b", "c")

    def test_str(self):
        conj = Conjunction([FD("a", "b")])
        assert "AND" not in str(conj) or str(conj)


class TestDiscoveryCommon:
    def test_proper_subsets(self):
        assert list(proper_subsets(("a", "b", "c"))) == [
            ("b", "c"), ("a", "c"), ("a", "b"),
        ]

    def test_is_superset_of_any(self):
        assert is_superset_of_any(("a", "b"), [("a",)])
        assert not is_superset_of_any(("b",), [("a",)])

    def test_generate_next_level_requires_all_subsets(self):
        level = [("a", "b"), ("a", "c")]
        # ("a","b","c") needs ("b","c") present too.
        assert generate_next_level(level) == []
        level.append(("b", "c"))
        assert generate_next_level(level) == [("a", "b", "c")]

    def test_subsets_of_size(self):
        assert list(subsets_of_size(["a", "b", "c"], 2)) == [
            ("a", "b"), ("a", "c"), ("b", "c"),
        ]

    def test_stats_merge(self):
        a = DiscoveryStats(candidates_checked=2, levels=1)
        b = DiscoveryStats(candidates_checked=3, levels=4)
        a.merge(b)
        assert a.candidates_checked == 5 and a.levels == 4

    def test_result_container(self):
        dep = FD("a", "b")
        res = DiscoveryResult([dep], algorithm="X")
        assert dep in res
        assert len(res) == 1
        assert "X" in res.summary()


def test_format_attrs_and_pairs():
    assert format_attrs(("a", "b")) == "a, b"
    assert list(brute_force_pairs(3)) == [(0, 1), (0, 2), (1, 2)]
