"""Unit tests for CSV I/O."""

import pytest

from repro.relation import (
    Attribute,
    AttributeType,
    Relation,
    Schema,
    read_csv,
    read_csv_text,
    to_csv_text,
    write_csv,
)

CSV = "name,price\nalpha,10\nbeta,20.5\ngamma,\n"


def numeric_schema():
    return Schema(
        [Attribute("name"), Attribute("price", AttributeType.NUMERICAL)]
    )


class TestRead:
    def test_untyped_read_keeps_strings(self):
        r = read_csv_text(CSV)
        # No numeric coercion without a typed schema; empties are None.
        assert r.column("price") == ("10", "20.5", None)

    def test_typed_read_coerces_numbers(self):
        r = read_csv_text(CSV, numeric_schema())
        assert r.column("price") == (10, 20.5, None)

    def test_int_preserved_as_int(self):
        r = read_csv_text(CSV, numeric_schema())
        assert isinstance(r.value_at(0, "price"), int)

    def test_header_mismatch_raises(self):
        with pytest.raises(ValueError):
            read_csv_text(CSV, ["x", "y"])

    def test_ragged_row_raises(self):
        with pytest.raises(ValueError):
            read_csv_text("a,b\n1\n")

    def test_no_header_raises(self):
        with pytest.raises(ValueError):
            read_csv_text("")

    def test_bad_number_raises(self):
        with pytest.raises(ValueError):
            read_csv_text("price\nabc\n", numeric_schema().project(["price"]))


class TestRoundTrip:
    def test_text_roundtrip(self):
        r = read_csv_text(CSV, numeric_schema())
        again = read_csv_text(to_csv_text(r), numeric_schema())
        assert again == r

    def test_file_roundtrip(self, tmp_path):
        r = read_csv_text(CSV, numeric_schema())
        path = tmp_path / "out.csv"
        write_csv(r, path)
        assert read_csv(path, numeric_schema()) == r

    def test_none_written_as_empty(self):
        r = Relation.from_rows(["a", "b"], [(None, "x")])
        lines = to_csv_text(r).splitlines()
        assert lines == ["a,b", ",x"]
