"""Unit tests for CSV I/O."""

import pytest

from repro.relation import (
    Attribute,
    AttributeType,
    Relation,
    Schema,
    read_csv,
    read_csv_text,
    to_csv_text,
    write_csv,
)
from repro.runtime import InputError

CSV = "name,price\nalpha,10\nbeta,20.5\ngamma,\n"


def numeric_schema():
    return Schema(
        [Attribute("name"), Attribute("price", AttributeType.NUMERICAL)]
    )


class TestRead:
    def test_untyped_read_keeps_strings(self):
        r = read_csv_text(CSV)
        # No numeric coercion without a typed schema; empties are None.
        assert r.column("price") == ("10", "20.5", None)

    def test_typed_read_coerces_numbers(self):
        r = read_csv_text(CSV, numeric_schema())
        assert r.column("price") == (10, 20.5, None)

    def test_int_preserved_as_int(self):
        r = read_csv_text(CSV, numeric_schema())
        assert isinstance(r.value_at(0, "price"), int)

    def test_header_mismatch_raises(self):
        with pytest.raises(ValueError):
            read_csv_text(CSV, ["x", "y"])

    def test_ragged_row_raises(self):
        with pytest.raises(ValueError):
            read_csv_text("a,b\n1\n")

    def test_no_header_raises(self):
        with pytest.raises(ValueError):
            read_csv_text("")

    def test_bad_number_raises(self):
        with pytest.raises(ValueError):
            read_csv_text("price\nabc\n", numeric_schema().project(["price"]))


class TestInputErrorContext:
    """Malformed CSVs raise typed InputErrors locating the bad cell."""

    def test_bad_number_carries_row_and_column(self):
        text = "name,price\nalpha,10\nbeta,oops\n"
        with pytest.raises(InputError) as exc:
            read_csv_text(text, numeric_schema())
        assert exc.value.row == 3  # header is line 1
        assert exc.value.column == "price"
        assert "non-numeric value" in str(exc.value)
        assert "line 3" in str(exc.value) and "price" in str(exc.value)

    def test_ragged_row_carries_row_number(self):
        with pytest.raises(InputError) as exc:
            read_csv_text("a,b\n1,2\n3\n")
        assert exc.value.row == 3

    def test_file_errors_carry_source(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("price\nnope\n", encoding="utf-8")
        with pytest.raises(InputError) as exc:
            read_csv(p, numeric_schema().project(["price"]))
        assert exc.value.source == str(p)
        assert str(p) in str(exc.value)

    def test_no_header_is_input_error(self):
        with pytest.raises(InputError):
            read_csv_text("")

    def test_header_mismatch_is_input_error(self):
        with pytest.raises(InputError):
            read_csv_text(CSV, ["x", "y"])


class TestNonFinite:
    """NaN/inf are rejected by default, mapped to null on opt-in."""

    @pytest.mark.parametrize("bad", ["nan", "NaN", "inf", "-inf", "Infinity"])
    def test_nonfinite_rejected_by_default(self, bad):
        text = f"name,price\nalpha,{bad}\n"
        with pytest.raises(InputError) as exc:
            read_csv_text(text, numeric_schema())
        assert exc.value.row == 2
        assert exc.value.column == "price"
        assert "non-finite" in str(exc.value)
        assert "allow_nonfinite" in str(exc.value)  # actionable message

    def test_opt_out_maps_to_none(self):
        text = "name,price\nalpha,nan\nbeta,inf\ngamma,3\n"
        r = read_csv_text(text, numeric_schema(), allow_nonfinite=True)
        assert r.column("price") == (None, None, 3)

    def test_opt_out_on_file_reader(self, tmp_path):
        p = tmp_path / "nf.csv"
        p.write_text("price\ninf\n", encoding="utf-8")
        with pytest.raises(InputError):
            read_csv(p, numeric_schema().project(["price"]))
        r = read_csv(
            p, numeric_schema().project(["price"]), allow_nonfinite=True
        )
        assert r.column("price") == (None,)

    def test_nonfinite_in_text_column_is_fine(self):
        # Only numerical columns police finiteness.
        r = read_csv_text("name,price\nnan,1\n", numeric_schema())
        assert r.value_at(0, "name") == "nan"


class TestRoundTrip:
    def test_text_roundtrip(self):
        r = read_csv_text(CSV, numeric_schema())
        again = read_csv_text(to_csv_text(r), numeric_schema())
        assert again == r

    def test_file_roundtrip(self, tmp_path):
        r = read_csv_text(CSV, numeric_schema())
        path = tmp_path / "out.csv"
        write_csv(r, path)
        assert read_csv(path, numeric_schema()) == r

    def test_none_written_as_empty(self):
        r = Relation.from_rows(["a", "b"], [(None, "x")])
        lines = to_csv_text(r).splitlines()
        assert lines == ["a,b", ",x"]
