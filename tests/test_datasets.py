"""Tests for dataset generators (determinism, ground-truth bookkeeping)."""

import pytest

from repro.datasets import (
    PAPER_RELATIONS,
    fd_workload,
    heterogeneous_workload,
    ordered_workload,
    random_relation,
)


class TestFDWorkload:
    def test_clean_satisfies_true_fds(self):
        w = fd_workload(100, 10, error_rate=0.1, seed=1)
        for dep in w.true_fds:
            assert dep.holds(w.clean)

    def test_error_tuples_actually_differ(self):
        w = fd_workload(100, 10, error_rate=0.1, seed=1)
        for i in w.error_tuples:
            assert w.relation.tuple_at(i) != w.clean.tuple_at(i)

    def test_non_error_tuples_match_clean(self):
        w = fd_workload(100, 10, error_rate=0.1, seed=1)
        for i in range(len(w.relation)):
            if i not in w.error_tuples:
                assert w.relation.tuple_at(i) == w.clean.tuple_at(i)

    def test_deterministic(self):
        a = fd_workload(60, 5, error_rate=0.1, seed=9)
        b = fd_workload(60, 5, error_rate=0.1, seed=9)
        assert a.relation == b.relation
        assert a.error_tuples == b.error_tuples

    def test_zero_error_rate_clean(self):
        w = fd_workload(50, 5, error_rate=0.0, seed=2)
        assert w.error_tuples == set()
        assert w.relation == w.clean


class TestHeterogeneousWorkload:
    def test_duplicate_pairs_share_entity(self):
        w = heterogeneous_workload(10, 3, 0.3, 0.0, seed=5)
        for a, b in w.duplicate_pairs:
            # Same entity => same address in this generator.
            assert w.relation.value_at(a, "address") == w.relation.value_at(
                b, "address"
            )

    def test_variants_are_not_errors(self):
        w = heterogeneous_workload(20, 3, 0.4, 0.1, seed=6)
        assert not (w.variant_tuples & w.error_tuples)

    def test_variant_city_extends_clean_value(self):
        w = heterogeneous_workload(20, 3, 0.5, 0.0, seed=7)
        for i in w.variant_tuples:
            clean_city = w.clean.value_at(i, "city")
            dirty_city = w.relation.value_at(i, "city")
            assert dirty_city.startswith(clean_city)
            assert dirty_city != clean_city

    def test_true_fd_holds_on_clean(self):
        w = heterogeneous_workload(10, 2, 0.3, 0.05, seed=8)
        for dep in w.true_fds:
            assert dep.holds(w.clean)


class TestOrderedWorkload:
    def test_clean_series_increases(self):
        w = ordered_workload(50, glitch_rate=0.0, seed=1)
        values = w.clean.column("value")
        assert all(b > a for a, b in zip(values, values[1:], strict=False))

    def test_glitches_recorded(self):
        w = ordered_workload(50, glitch_rate=0.2, seed=1)
        assert w.error_tuples
        for i in w.error_tuples:
            assert w.relation.value_at(i, "value") < w.clean.value_at(
                i, "value"
            )


class TestRandomRelation:
    def test_shape(self):
        r = random_relation(10, 4, seed=0)
        assert len(r) == 10 and len(r.schema) == 4

    def test_numerical_flag_sets_dtype(self):
        r = random_relation(5, 2, seed=0, numerical=True)
        assert len(r.schema.numerical_attributes()) == 2

    def test_deterministic(self):
        assert random_relation(8, 3, seed=4) == random_relation(8, 3, seed=4)


def test_paper_relations_registry():
    assert len(PAPER_RELATIONS) == 5
    for name, ctor in PAPER_RELATIONS.items():
        rel = ctor()
        assert len(rel) > 0, name


class TestDataspaceWorkload:
    def test_two_rows_per_entity(self):
        from repro.datasets import dataspace_workload

        ds = dataspace_workload(10, seed=1)
        assert len(ds) == 20
        # source-1 rows fill region/addr; source-2 rows fill city/post.
        assert ds.value_at(0, "region") is not None
        assert ds.value_at(0, "city") is None
        assert ds.value_at(1, "city") is not None
        assert ds.value_at(1, "region") is None

    def test_variant_is_one_edit(self):
        from repro.datasets import dataspace_workload
        from repro.metrics import levenshtein

        ds = dataspace_workload(5, seed=2)
        for e in range(5):
            region = ds.value_at(2 * e, "region")
            city = ds.value_at(2 * e + 1, "city")
            assert levenshtein(region, city) == 1


class TestMultisourceWorkload:
    def test_shared_ground_truth(self):
        from repro.datasets import multisource_workload

        sources = multisource_workload(3, 40, 6, seed=4)
        # All sources agree on the clean mapping: union of clean rows
        # satisfies the true FDs.
        from repro.relation import Relation

        merged = Relation.from_rows(
            sources[0].clean.schema,
            [row for s in sources for row in s.clean.rows()],
        )
        for dep in sources[0].true_fds:
            assert dep.holds(merged)

    def test_error_rates_increase_by_default(self):
        from repro.datasets import multisource_workload

        sources = multisource_workload(4, 200, 8, seed=5)
        errors = [len(s.error_tuples) for s in sources]
        assert errors[0] == 0
        assert errors[-1] > errors[0]

    def test_pinpoints_low_quality_source(self):
        from repro.datasets import multisource_workload
        from repro.quality import rank_sources_by_quality

        sources = multisource_workload(
            4, 150, 8, error_rates=[0.0, 0.0, 0.0, 0.25], seed=6
        )
        ranking = rank_sources_by_quality(
            [s.relation for s in sources], ["code"], "city"
        )
        worst_index, worst_p = ranking[0]
        assert worst_index == 3
        assert worst_p < ranking[-1][1]

    def test_rate_length_validation(self):
        from repro.datasets import multisource_workload

        with pytest.raises(ValueError):
            multisource_workload(3, 10, 4, error_rates=[0.1])
