"""Resource budgets: caps, deadlines, partial results, ambient nesting."""

import pytest

from repro.core import FD
from repro.core.numerical import DC, Predicate
from repro.datasets import hotel_r5, random_relation
from repro.discovery import (
    discover_constant_cfds,
    discover_dcs,
    discover_dds,
    discover_ecfds,
    discover_general_cfds,
    discover_mds,
    discover_mvds_bottomup,
    discover_mvds_topdown,
    discover_ods,
    discover_pairwise_ods,
    fastfd,
    tane,
)
from repro.profiler import profile_relation
from repro.quality.repair import repair_dcs, repair_fds
from repro.runtime import (
    Budget,
    BudgetExhausted,
    EngineFault,
    InputError,
    ReproError,
    checkpoint,
    current_budget,
    governed,
)


def hard_relation():
    return random_relation(40, 6, domain_size=4, seed=11)


DISCOVERY_ENTRY_POINTS = [
    pytest.param(lambda r, b: tane(r, budget=b), id="tane"),
    pytest.param(lambda r, b: fastfd(r, budget=b), id="fastfd"),
    pytest.param(lambda r, b: discover_dcs(r, budget=b), id="dc"),
    pytest.param(lambda r, b: discover_dds(r, budget=b), id="dd"),
    pytest.param(
        lambda r, b: discover_mds(r, sorted(r.schema.names())[0], budget=b),
        id="md",
    ),
    pytest.param(
        lambda r, b: discover_constant_cfds(r, budget=b), id="cfd-constant"
    ),
    pytest.param(
        lambda r, b: discover_general_cfds(r, budget=b), id="cfd-general"
    ),
    pytest.param(lambda r, b: discover_ecfds(r, budget=b), id="ecfd"),
    pytest.param(
        lambda r, b: discover_pairwise_ods(r, budget=b), id="od-pairwise"
    ),
    pytest.param(lambda r, b: discover_ods(r, budget=b), id="od"),
    pytest.param(
        lambda r, b: discover_mvds_topdown(r, budget=b), id="mvd-topdown"
    ),
    pytest.param(
        lambda r, b: discover_mvds_bottomup(r, budget=b), id="mvd-bottomup"
    ),
]


class TestBudgetPrimitive:
    def test_candidate_cap_raises_internally(self):
        b = Budget(max_candidates=3)
        b.checkpoint(candidates=3)
        with pytest.raises(BudgetExhausted) as exc:
            b.checkpoint(candidates=1)
        assert exc.value.reason == "candidates"
        assert b.exhausted == "candidates"

    def test_pair_cap(self):
        b = Budget(max_pairs=10)
        with pytest.raises(BudgetExhausted) as exc:
            b.checkpoint(pairs=11)
        assert exc.value.reason == "pairs"

    def test_exhausted_budget_keeps_raising(self):
        b = Budget(max_candidates=1)
        with pytest.raises(BudgetExhausted):
            b.checkpoint(candidates=2)
        with pytest.raises(BudgetExhausted):
            b.checkpoint()

    def test_deadline(self):
        b = Budget(deadline_s=0.0).start()
        with pytest.raises(BudgetExhausted) as exc:
            b.checkpoint()
        assert exc.value.reason == "deadline"

    def test_reset(self):
        b = Budget(max_candidates=1)
        with pytest.raises(BudgetExhausted):
            b.checkpoint(candidates=2)
        b.reset()
        b.checkpoint(candidates=1)
        assert b.candidates == 1
        assert b.exhausted == ""

    def test_unlimited_budget_never_exhausts(self):
        b = Budget()
        for _ in range(100):
            b.checkpoint(candidates=10, pairs=10)
        assert not b.expired()

    def test_checkpoint_is_noop_without_budget(self):
        assert current_budget() is None
        checkpoint(candidates=10**9)  # must not raise

    def test_governed_installs_and_restores(self):
        b = Budget(max_candidates=5)
        with governed(b):
            assert current_budget() is b
            with governed(None):
                # Transparent: the outer budget stays ambient.
                assert current_budget() is b
        assert current_budget() is None

    def test_inner_explicit_budget_wins(self):
        outer, inner = Budget(), Budget()
        with governed(outer):
            with governed(inner):
                assert current_budget() is inner
            assert current_budget() is outer


class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(BudgetExhausted, ReproError)
        assert issubclass(EngineFault, ReproError)
        assert issubclass(InputError, ReproError)
        assert issubclass(InputError, ValueError)

    def test_rule_file_error_is_input_error(self):
        from repro.rules_io import RuleFileError

        assert issubclass(RuleFileError, InputError)

    def test_input_error_context_in_message(self):
        exc = InputError("bad cell", row=42, column="price", source="x.csv")
        assert exc.row == 42
        assert exc.column == "price"
        assert "42" in str(exc) and "price" in str(exc)


class TestPartialResults:
    @pytest.mark.parametrize("run", DISCOVERY_ENTRY_POINTS)
    def test_tiny_candidate_cap_returns_partial(self, run):
        r = hard_relation()
        full = run(r, None)
        result = run(r, Budget(max_candidates=1, max_pairs=10**9))
        assert result.stats.complete is False
        assert result.stats.exhausted == "candidates"
        assert "partial" in result.summary()
        # Partial output never exceeds the complete output's size plus
        # sampled-verified salvage.
        assert len(result.dependencies) <= (
            len(full.dependencies) + result.stats.sampled_verified + 50
        )

    @pytest.mark.parametrize("run", DISCOVERY_ENTRY_POINTS)
    def test_expired_deadline_returns_partial_not_raise(self, run):
        r = hard_relation()
        result = run(r, Budget(deadline_s=0.0))
        assert result.stats.complete is False
        assert result.stats.exhausted == "deadline"

    @pytest.mark.parametrize("run", DISCOVERY_ENTRY_POINTS)
    def test_no_budget_and_huge_budget_identical(self, run):
        r = hotel_r5()
        bare = run(r, None)
        governed_run = run(
            r, Budget(deadline_s=3600, max_candidates=10**9, max_pairs=10**12)
        )
        assert list(map(str, bare.dependencies)) == list(
            map(str, governed_run.dependencies)
        )
        assert governed_run.stats.complete is True

    def test_partial_dependencies_are_valid(self):
        r = hard_relation()
        result = tane(r, budget=Budget(max_candidates=8))
        sampled = result.stats.sampled_verified
        exact = result.dependencies[: len(result.dependencies) - sampled]
        for dep in exact:
            assert dep.holds(r)

    def test_ambient_budget_governs_nested_calls(self):
        r = hard_relation()
        b = Budget(max_candidates=1)
        with governed(b):
            result = tane(r)  # budget=None inherits the ambient one
        assert result.stats.complete is False


class TestRepairBudgets:
    def test_repair_fds_partial(self):
        r = random_relation(30, 4, domain_size=2, seed=3)
        fds = [FD([a], [b]) for a in r.schema.names()
               for b in r.schema.names() if a != b]
        repaired, log = repair_fds(r, fds, budget=Budget(max_candidates=1))
        assert log.complete is False
        assert "partial" in log.summary()
        # The untouched path still reports complete.
        __, full_log = repair_fds(r, fds[:1])
        assert full_log.complete is True

    def test_repair_dcs_partial(self):
        r = random_relation(20, 3, domain_size=2, seed=5)
        a, b = sorted(r.schema.names())[:2]
        dc = DC([
            Predicate("a", a, "==", "b", a),
            Predicate("a", b, "!=", "b", b),
        ])
        __, log = repair_dcs(r, [dc], budget=Budget(deadline_s=0.0))
        assert log.complete is False
        assert log.exhausted == "deadline"


class TestProfilerBudget:
    def test_profile_partial_notes(self):
        r = hotel_r5()
        report = profile_relation(r, budget=Budget(max_candidates=1))
        assert any("partial" in n or "exhausted" in n for n in report.notes)

    def test_profile_without_budget_has_no_partial_note(self):
        r = hotel_r5()
        report = profile_relation(r)
        assert not any("exhausted" in n for n in report.notes)


class TestBudgetChild:
    """Deriving stage budgets from a request budget (the server's jobs)."""

    def test_child_counters_propagate_without_resetting_parent(self):
        parent = Budget(max_candidates=100)
        parent.checkpoint(candidates=10)
        child = parent.child()
        child.checkpoint(candidates=5, pairs=3)
        assert parent.candidates == 15
        assert parent.pairs == 3
        # The child starts from zero: its counters are its own work.
        assert child.candidates == 5 and child.pairs == 3
        # Deriving again later sees the accumulated total, not a reset.
        second = parent.child()
        assert second.max_candidates == 100 - 15

    def test_child_caps_clamp_to_parent_headroom(self):
        parent = Budget(max_candidates=10, max_pairs=20)
        parent.checkpoint(candidates=4)
        child = parent.child(max_candidates=100, max_pairs=5)
        assert child.max_candidates == 6  # requested 100 > headroom 6
        assert child.max_pairs == 5  # requested below headroom stands

    def test_child_with_no_args_inherits_remaining_headroom(self):
        parent = Budget(max_candidates=8)
        parent.checkpoint(candidates=3)
        child = parent.child()
        assert child.max_candidates == 5
        assert child.max_pairs is None
        assert child.deadline_s is None

    def test_child_deadline_clamps_to_parent_remaining(self):
        parent = Budget(deadline_s=60.0).start()
        child = parent.child(deadline_s=1e9)
        assert child.deadline_s is not None and child.deadline_s <= 60.0
        tight = parent.child(deadline_s=0.5)
        assert tight.deadline_s == 0.5

    def test_child_exhaustion_does_not_poison_parent(self):
        parent = Budget(max_candidates=10)
        child = parent.child(max_candidates=2)
        with pytest.raises(BudgetExhausted):
            child.checkpoint(candidates=3)
        assert child.exhausted == "candidates"
        assert parent.exhausted == ""
        # Parent still has headroom and keeps governing later stages.
        parent.checkpoint(candidates=1)
        assert parent.candidates == 4  # 3 propagated + 1 direct

    def test_child_work_exhausts_parent_cap_across_stages(self):
        parent = Budget(max_candidates=5)
        first = parent.child()
        first.checkpoint(candidates=4)
        second = parent.child()
        assert second.max_candidates == 1
        with pytest.raises(BudgetExhausted):
            second.checkpoint(candidates=2)
        assert second.exhausted == "candidates"

    def test_grandchild_bills_whole_chain(self):
        root = Budget()
        mid = root.child()
        leaf = mid.child()
        leaf.checkpoint(candidates=2, pairs=7)
        assert (root.candidates, root.pairs) == (2, 7)
        assert (mid.candidates, mid.pairs) == (2, 7)

    def test_child_memory_cap_is_min_of_both(self):
        parent = Budget(max_memory_bytes=1000)
        assert parent.child().max_memory_bytes == 1000
        assert parent.child(max_memory_bytes=500).max_memory_bytes == 500
        assert parent.child(max_memory_bytes=5000).max_memory_bytes == 1000
        free = Budget()
        assert free.child(max_memory_bytes=500).max_memory_bytes == 500

    def test_cancellation_via_exhausted_flag(self):
        # The server cancels running jobs by poisoning the budget; the
        # next checkpoint must raise with the given reason.
        b = Budget()
        b.checkpoint(candidates=1)  # fine while healthy
        b.exhausted = "cancelled"
        with pytest.raises(BudgetExhausted) as err:
            b.checkpoint(candidates=1)
        assert err.value.reason == "cancelled"

    def test_governed_child_drives_engine_partial(self):
        r = hard_relation()
        parent = Budget(max_candidates=3)
        child = parent.child()
        result = tane(r, budget=child)
        assert result.stats.complete is False
        # The engine's work was billed to the parent too.
        assert parent.candidates == child.candidates


class TestExhaustionNeverKillsRules:
    """Regressions for the staticcheck SC008 fixes: mere budget
    exhaustion must never deactivate rules or reject survivors."""

    def _od_detector(self):
        from repro.core.numerical.od import OD
        from repro.incremental.delta import Delta
        from repro.incremental.detector import IncrementalDetector
        from repro.relation import Relation

        rel = Relation.from_rows(
            ["a", "b"], [[i, i] for i in range(50)]
        )
        return (
            IncrementalDetector([OD("a", "b")], rel),
            Delta(inserts=[[99, 98]]),
        )

    def test_mid_batch_deadline_rebuild_keeps_kernel_rules(self):
        # An OD checker cold-rebuilds through the plan kernels, whose
        # checkpoints observe the ambient budget — the rebuild must run
        # under a fresh budget or the deadline marks the rule dead.
        from repro.incremental.delta import Delta

        det, delta = self._od_detector()
        b = Budget(deadline_s=0.0).start()
        with governed(b):
            change = det.apply(delta)
        assert change.complete is False
        assert change.exhausted == "deadline"
        assert det.dead_rules == []
        assert len(det._checkers) == 1
        # The detector stays fully usable after the deadline.
        change = det.apply(Delta(inserts=[[100, 100]]))
        assert change.complete is True

    def test_resume_rule_survives_exhausted_ambient_budget(self):
        det, _ = self._od_detector()
        label = det.rules[0].label()
        assert det.suspend_rule(label)
        b = Budget(deadline_s=0.0).start()
        with governed(b):
            assert det.resume_rule(label)
        assert det.dead_rules == []
        assert len(det._checkers) == 1

    def test_verify_on_sample_is_budget_blind_for_kernel_rules(self):
        from repro.core.numerical.od import OD
        from repro.relation import Relation
        from repro.runtime.budget import verify_on_sample

        rel = Relation.from_rows(
            ["a", "b"], [[i, i] for i in range(50)]
        )
        od = OD("a", "b")
        b = Budget(deadline_s=0.0).start()
        with governed(b):
            survivors = verify_on_sample(rel, [od])
        assert survivors == [od]


class TestKernelLoopsPollBudget:
    """Regression for the SC001 fixes: candidate generators poll the
    budget even when they yield nothing (violation-free data)."""

    def test_sweep_generator_observes_deadline_without_yields(
        self, monkeypatch
    ):
        from repro.core.numerical.od import OD
        from repro.relation import Relation

        # Force the scalar sweep: the vectorized prep has no
        # per-candidate loop at all on violation-free data.
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "scalar")
        # Strictly increasing on both columns: the OD holds, so the
        # sweep yields no candidate pairs — before the fix nothing
        # charged the budget during generation.
        n = 2000
        rel = Relation.from_rows(
            ["a", "b"], [[i, i] for i in range(n)]
        )
        od = OD("a", "b")

        polls = []
        real_checkpoint = Budget.checkpoint

        class CountingBudget(Budget):
            def checkpoint(self, candidates=0, pairs=0):
                polls.append((candidates, pairs))
                return real_checkpoint(
                    self, candidates=candidates, pairs=pairs
                )

        with governed(CountingBudget()):
            assert od.holds(rel)
        # The generator-side polls are plain checkpoint() calls
        # (0, 0); at least one batch of 256 swept rows must have
        # triggered one for n=2000 rows.
        assert any(c == 0 and p == 0 for c, p in polls)
