"""Tests for the violation-detection engine and its scoring."""

import pytest

from repro.core import DD, FD, SD
from repro.datasets import fd_workload, heterogeneous_workload
from repro.quality import DetectionQuality, Detector, detect_violations


class TestDetector:
    def test_mixed_rule_report(self, r1, r7):
        det = Detector([FD("address", "region")])
        report = det.detect(r1)
        assert len(report.violations) == 2
        assert report.rule_count() == 1
        assert "violations" in report.summary()

    def test_flagged_tuples_union(self, r1):
        det = Detector(
            [FD("address", "region"), FD("address", "name")]
        )
        flagged = det.detect(r1).flagged_tuples()
        assert {0, 1, 2, 3, 4, 5} <= flagged

    def test_holds_conjunction(self, r7):
        from repro.core import OD

        det = Detector(
            [
                OD([("nights", "<=")], [("avg/night", ">=")]),
                SD("nights", "subtotal", (100, 200)),
            ]
        )
        assert det.holds(r7)

    def test_detect_violations_wrapper(self, r1):
        vs = detect_violations(r1, [FD("address", "region")])
        assert len(vs) == 2


class TestScoring:
    def test_perfect_scores(self):
        q = DetectionQuality(5, 0, 0)
        assert q.precision == 1.0 and q.recall == 1.0 and q.f1 == 1.0

    def test_zero_division_conventions(self):
        assert DetectionQuality(0, 0, 0).precision == 1.0
        assert DetectionQuality(0, 0, 0).recall == 1.0
        assert DetectionQuality(0, 0, 0).f1 == 0.0 or DetectionQuality(
            0, 0, 0
        ).f1 == 1.0

    def test_all_false_positives(self):
        """Nothing real flagged: precision 0, vacuous recall 1, f1 0."""
        q = DetectionQuality(0, 7, 0)
        assert q.precision == 0.0
        assert q.recall == 1.0
        assert q.f1 == 0.0

    def test_all_false_negatives(self):
        """Nothing flagged at all: vacuous precision 1, recall 0, f1 0."""
        q = DetectionQuality(0, 0, 7)
        assert q.precision == 1.0
        assert q.recall == 0.0
        assert q.f1 == 0.0

    def test_zero_precision_and_recall_f1_defined(self):
        """p + r == 0 must not divide by zero."""
        q = DetectionQuality(0, 3, 4)
        assert q.precision == 0.0
        assert q.recall == 0.0
        assert q.f1 == 0.0

    def test_f1_harmonic_mean(self):
        q = DetectionQuality(2, 2, 2)
        assert q.precision == 0.5 and q.recall == 0.5
        assert q.f1 == pytest.approx(0.5)

    def test_str_finite_on_degenerate_counts(self):
        assert "f1=0.000" in str(DetectionQuality(0, 3, 4))

    def test_fd_recall_perfect_on_injected_errors(self):
        w = fd_workload(200, 20, error_rate=0.05, seed=2)
        q = Detector(w.true_fds).score(w.relation, w.error_tuples)
        assert q.recall == 1.0  # every injected error violates the FD
        assert q.precision < 1.0  # clean partners get flagged too

    def test_metric_rules_cut_false_positives(self):
        """The Section 1.2 story quantified: on variety-ridden data, the
        FD flags format variants; the DD with a tolerant city metric
        does not."""
        w = heterogeneous_workload(
            30, 3, variant_rate=0.5, error_rate=0.08, seed=1
        )
        fd_q = Detector([FD("address", "city")]).score(
            w.relation, w.error_tuples
        )
        dd = DD({"address": 0}, {"city": 4})
        dd_q = Detector([dd]).score(w.relation, w.error_tuples)
        assert dd_q.precision > fd_q.precision
        assert dd_q.recall == 1.0

    def test_str_rendering(self):
        q = DetectionQuality(1, 1, 2)
        assert "precision=" in str(q)


class TestRankSuspects:
    def test_most_flagged_tuple_first(self, r1):
        from repro.core import FD
        from repro.quality import rank_suspects

        rules = [FD("address", "region"), FD("address", "name")]
        ranking = rank_suspects(r1, rules)
        assert ranking, "r1 has violations"
        top_index, top_count = ranking[0]
        assert top_count == max(c for __, c in ranking)
        counts = [c for __, c in ranking]
        assert counts == sorted(counts, reverse=True)

    def test_true_errors_rank_high(self):
        from repro.datasets import fd_workload
        from repro.quality import rank_suspects

        w = fd_workload(150, 15, error_rate=0.04, seed=23)
        ranking = rank_suspects(w.relation, w.true_fds)
        top = {i for i, __ in ranking[: max(len(w.error_tuples), 1)]}
        # At least half of the top slots are real injected errors.
        assert len(top & w.error_tuples) * 2 >= len(w.error_tuples)

    def test_clean_relation_empty_ranking(self, r7):
        from repro.core import OD
        from repro.quality import rank_suspects

        rules = [OD([("nights", "<=")], [("subtotal", "<=")])]
        assert rank_suspects(r7, rules) == []
