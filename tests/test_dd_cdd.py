"""Unit tests for Intervals, DifferentialFunctions, DDs and CDDs."""


import pytest

from repro.core import CDD, CFD, DD, DifferentialFunction, Interval, NED
from repro.relation import Relation


class TestInterval:
    def test_constructors(self):
        assert Interval.at_most(5).contains(5)
        assert not Interval.at_most(5).contains(5.1)
        assert Interval.at_least(10).contains(10)
        assert not Interval.at_least(10).contains(9.9)
        assert Interval.greater_than(5).contains(5.1)
        assert not Interval.greater_than(5).contains(5)
        assert Interval.less_than(5).contains(4.9)
        assert not Interval.less_than(5).contains(5)
        assert Interval.exactly(3).contains(3)
        assert not Interval.exactly(3).contains(2)

    def test_parse(self):
        assert Interval.parse(5) == Interval.at_most(5)
        assert Interval.parse(("<=", 5)) == Interval.at_most(5)
        assert Interval.parse((">=", 2)) == Interval.at_least(2)
        assert Interval.parse((1, 3)) == Interval.between(1, 3)
        assert Interval.parse(Interval.exactly(1)) == Interval.exactly(1)

    def test_parse_bad_operator(self):
        with pytest.raises(ValueError):
            Interval.parse(("~", 1))

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 3)

    def test_subsumes(self):
        assert Interval.at_most(5).subsumes(Interval.at_most(3))
        assert not Interval.at_most(3).subsumes(Interval.at_most(5))
        assert Interval.everything().subsumes(Interval.exactly(7))
        assert Interval.at_most(5).subsumes(Interval.less_than(5))
        assert not Interval.less_than(5).subsumes(Interval.at_most(5))

    def test_similarity_range(self):
        assert Interval.at_most(5).is_similarity_range()
        assert not Interval.at_least(5).is_similarity_range()
        assert not Interval.everything().is_similarity_range()

    def test_str(self):
        assert str(Interval.at_most(5)) == "<=5"
        assert str(Interval.at_least(2)) == ">=2"
        assert str(Interval.exactly(3)) == "=3"


class TestDifferentialFunction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DifferentialFunction({})

    def test_compatibility(self, r6):
        phi = DifferentialFunction({"name": 1, "street": 5})
        assert phi.compatible(r6, 1, 5)  # t2, t6
        assert not phi.compatible(r6, 0, 3)

    def test_subsumption(self):
        loose = DifferentialFunction({"a": 5})
        tight = DifferentialFunction({"a": 2})
        assert loose.subsumes(tight)
        assert not tight.subsumes(loose)
        # A function with fewer attributes and looser ranges matches a
        # superset of the pairs, so it subsumes the stricter one.
        more_attrs = DifferentialFunction({"a": 2, "b": 1})
        assert loose.subsumes(more_attrs)
        assert not more_attrs.subsumes(loose)


class TestDD:
    def test_paper_dd1_on_r6(self, r6):
        """Section 3.3.1: name(<=1), street(<=5) -> address(<=5)."""
        dd1 = DD({"name": 1, "street": 5}, {"address": 5})
        assert dd1.holds(r6)

    def test_paper_dd2_dissimilar_on_r6(self, r6):
        """dd2: street(>=10) -> address(>5) — dissimilarity semantics."""
        dd2 = DD({"street": (">=", 10)}, {"address": (">", 5)})
        assert dd2.holds(r6)

    def test_violation_of_dissimilar_rule(self):
        r = Relation.from_rows(
            ["s", "a"],
            [("aaaaaaaaaaaa", "same addr"), ("bbbbbbbbbbbb", "same addr")],
        )
        dd = DD({"s": (">=", 10)}, {"a": (">", 5)})
        assert not dd.holds(r)

    def test_from_ned_equivalence(self, r6):
        ned = NED({"name": 1, "address": 5}, {"street": 5})
        dd = DD.from_ned(ned)
        assert dd.holds(r6) == ned.holds(r6)

    def test_dd_subsumption(self):
        general = DD({"a": 5}, {"b": 1})
        specific = DD({"a": 2}, {"b": 3})
        assert general.subsumes(specific)
        assert not specific.subsumes(general)


class TestCDD:
    def test_conditioned_scope(self, r6):
        """Section 3.3.5's example shape: within one region, similar
        names imply similar addresses."""
        cdd = CDD(
            {"name": 1}, {"address": 5}, {"region": "San Jose"}
        )
        assert cdd.holds(r6)

    def test_condition_limits_pairs(self):
        r = Relation.from_rows(
            ["region", "name", "addr"],
            [
                ("X", "aa", "place one"),
                ("X", "ab", "completely different location"),
                ("Y", "aa", "spot"),
            ],
        )
        unconditioned = DD({"name": 1}, {"addr": 5})
        assert not unconditioned.holds(r)
        conditioned = CDD({"name": 1}, {"addr": 5}, {"region": "Y"})
        assert conditioned.holds(r)

    def test_from_dd_equivalence(self, r6):
        dd = DD({"name": 1, "street": 5}, {"address": 5})
        cdd = CDD.from_dd(dd)
        assert cdd.holds(r6) == dd.holds(r6)

    def test_from_cfd_equivalence(self, r5):
        cfd = CFD(["region", "name"], "address", {"region": "Jackson"})
        cdd = CDD.from_cfd(cfd)
        assert cdd.holds(r5) == cfd.holds(r5)

    def test_from_cfd_rejects_constant_rhs(self):
        from repro.core import DependencyError

        cfd = CFD("a", "b", {"a": 1, "b": 2})
        with pytest.raises(DependencyError):
            CDD.from_cfd(cfd)
