"""Tests for imputation (P-neighborhood, DD) and consistent query answering."""

import pytest

from repro.core import DD, FD
from repro.quality import (
    consistent_answers,
    dd_impute,
    fd_repairs,
    imputation_accuracy,
    is_exhaustive,
    p_neighborhood_impute,
    possible_answers,
    select_query,
)
from repro.relation import Attribute, AttributeType, Relation, Schema


def textnum_relation(rows):
    schema = Schema(
        [
            Attribute("name", AttributeType.TEXT),
            Attribute("city", AttributeType.TEXT),
            Attribute("price", AttributeType.NUMERICAL),
        ]
    )
    return Relation.from_rows(schema, rows)


class TestPNeighborhood:
    def test_categorical_majority_fill(self):
        r = textnum_relation(
            [
                ("hotel a", "springfield", 100),
                ("hotel b", "springfield", 110),
                ("hotel c", None, 105),
                ("other place", "shelbyville", 500),
            ]
        )
        filled = p_neighborhood_impute(r, {"price": 20}, "city")
        assert filled.value_at(2, "city") == "springfield"
        # Distant tuple untouched.
        assert filled.value_at(3, "city") == "shelbyville"

    def test_numerical_median_fill(self):
        r = textnum_relation(
            [
                ("a", "x", 100),
                ("ab", "x", 120),
                ("ac", "x", None),
            ]
        )
        filled = p_neighborhood_impute(r, {"name": 2}, "price")
        assert filled.value_at(2, "price") in (100, 120)

    def test_no_neighbours_stays_missing(self):
        r = textnum_relation([("solo", None, 100)])
        filled = p_neighborhood_impute(r, {"price": 1}, "city")
        assert filled.value_at(0, "city") is None

    def test_accuracy_metric(self):
        truth = textnum_relation([("a", "x", 1), ("b", "y", 2)])
        guess = textnum_relation([("a", "x", 1), ("b", "z", 2)])
        assert imputation_accuracy(guess, truth, "city", [0, 1]) == 0.5
        assert imputation_accuracy(guess, truth, "city", []) == 1.0


class TestDDImpute:
    def test_fills_from_compatible_neighbours(self):
        r = textnum_relation(
            [
                ("grand hotel", "boston", 200),
                ("grand hotol", "boston", 210),
                ("grand hote", None, 205),
                ("far away inn", "miami", 90),
            ]
        )
        rule = DD({"name": 3}, {"city": 2})
        filled = dd_impute(r, rule, "city")
        assert filled.value_at(2, "city") == "boston"
        assert filled.value_at(3, "city") == "miami"

    def test_target_must_be_constrained(self):
        rule = DD({"name": 3}, {"city": 2})
        with pytest.raises(ValueError):
            dd_impute(textnum_relation([]), rule, "price")


class TestCQA:
    def test_repairs_of_r5(self, r5):
        reps = fd_repairs(r5, [FD("address", "region")])
        assert len(reps) == 2
        assert all(FD("address", "region").holds(r) for r in reps)
        assert {len(r) for r in reps} == {3}

    def test_exhaustiveness_flag(self, r5):
        assert is_exhaustive(r5, [FD("address", "region")])

    def test_certain_vs_possible(self, r5):
        fd = FD("address", "region")
        q = select_query(["region"])
        certain = consistent_answers(r5, [fd], q)
        possible = possible_answers(r5, [fd], q)
        assert ("Jackson",) in certain
        assert certain <= possible
        # The conflicting El Paso variants are possible but not certain.
        assert ("El Paso",) in possible
        assert ("El Paso",) not in certain

    def test_consistent_relation_answers_directly(self, r7):
        q = select_query(["nights"])
        certain = consistent_answers(r7, [FD("nights", "subtotal")], q)
        assert certain == {(1,), (2,), (3,), (4,)}

    def test_selection_predicate(self, r5):
        fd = FD("address", "region")
        q = select_query(["name"], lambda t: t["rate"] > 200)
        certain = consistent_answers(r5, [fd], q)
        assert certain == {("Hyatt",)}

    def test_multiple_fds(self):
        r = Relation.from_rows(
            ["k", "v", "w"],
            [(1, "a", "p"), (1, "b", "p"), (2, "c", "q"), (2, "c", "r")],
        )
        fds = [FD("k", "v"), FD("k", "w")]
        reps = fd_repairs(r, fds)
        assert all(
            all(dep.holds(rep) for dep in fds) for rep in reps
        )
        assert len(reps) == 4
