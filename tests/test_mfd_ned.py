"""Unit tests for MFDs and NEDs (heterogeneous branch, equality->metric)."""

import pytest

from repro.core import FD, MFD, NED, DependencyError, SimilarityPredicate
from repro.metrics import DISCRETE
from repro.relation import Attribute, AttributeType, Relation, Schema


def priced_relation(rows):
    schema = Schema(
        [
            Attribute("name", AttributeType.TEXT),
            Attribute("region", AttributeType.TEXT),
            Attribute("price", AttributeType.NUMERICAL),
        ]
    )
    return Relation.from_rows(schema, rows)


class TestMFD:
    def test_paper_mfd1_on_r6(self, r6):
        """Section 3.1.1: name, region ->^500 price holds on r6."""
        assert MFD(["name", "region"], "price", 500).holds(r6)

    def test_tight_delta_fails(self):
        r = priced_relation(
            [("a", "x", 100), ("a", "x", 700)]
        )
        assert not MFD(["name", "region"], "price", 500).holds(r)
        assert MFD(["name", "region"], "price", 600).holds(r)

    def test_delta_zero_equals_fd(self, r5, r6):
        for rel in (r5, r6):
            for lhs in rel.schema.names():
                for rhs in rel.schema.names():
                    if lhs == rhs:
                        continue
                    mfd = MFD(lhs, rhs, 0.0, metric=DISCRETE)
                    assert mfd.holds(rel) == FD(lhs, rhs).holds(rel)

    def test_group_diameters(self):
        r = priced_relation(
            [("a", "x", 100), ("a", "x", 150), ("b", "y", 10)]
        )
        d = MFD(["name"], "price", 100).group_diameters(r)
        assert d[("a",)] == 50.0
        assert d[("b",)] == 0.0

    def test_approximate_agrees_with_exact(self):
        import random

        rng = random.Random(0)
        for __ in range(20):
            rows = [
                (rng.choice("ab"), "x", rng.randrange(100))
                for __ in range(12)
            ]
            r = priced_relation(rows)
            mfd = MFD(["name"], "price", 40)
            assert mfd.holds_approximate(r) == mfd.holds(r)

    def test_violations_pair_level(self):
        r = priced_relation([("a", "x", 0), ("a", "x", 1000)])
        vs = MFD(["name", "region"], "price", 500).violations(r)
        assert {v.tuples for v in vs} == {(0, 1)}

    def test_negative_delta_rejected(self):
        with pytest.raises(DependencyError):
            MFD("a", "b", -1)

    def test_text_metric_on_dependent_side(self, r1):
        # region variants within distance 4: "Chicago" vs "Chicago, IL"
        mfd = MFD("address", "region", 4)
        flagged = mfd.violations(r1).tuple_indices()
        assert 4 not in flagged and 5 not in flagged  # variants pass
        assert {2, 3} <= flagged  # Boston vs Chicago, MA is a real gap


class TestNED:
    def test_paper_ned1_on_r6(self, r6):
        """Section 3.2.1: name^1 address^5 -> street^5 holds on r6."""
        assert NED({"name": 1, "address": 5}, {"street": 5}).holds(r6)

    def test_lhs_agreement(self, r6):
        ned = NED({"name": 1, "address": 5}, {"street": 5})
        assert ned.lhs_agrees(r6, 1, 5)  # t2 and t6 (paper example)
        assert not ned.lhs_agrees(r6, 0, 3)

    def test_violation_when_rhs_exceeds(self):
        r = Relation.from_rows(
            ["a", "b"], [("hello", "street one"), ("hella", "boulevard")]
        )
        ned = NED({"a": 1}, {"b": 3})
        assert not ned.holds(r)
        assert {v.tuples for v in ned.violations(r)} == {(0, 1)}

    def test_support_and_confidence(self, r6):
        ned = NED({"name": 1, "address": 5}, {"street": 5})
        support, confidence = ned.support_and_confidence(r6)
        assert support >= 1
        assert confidence == 1.0

    def test_empty_sides_rejected(self):
        with pytest.raises(DependencyError):
            NED({}, {"b": 1})
        with pytest.raises(DependencyError):
            NED({"a": 1}, {})

    def test_from_mfd_equivalence(self, r6):
        mfd = MFD(["name", "region"], "price", 500)
        ned = NED.from_mfd(mfd)
        assert ned.holds(r6) == mfd.holds(r6)

    def test_explicit_predicates(self):
        p = SimilarityPredicate("a", 2.0, DISCRETE)
        ned = NED([p], [SimilarityPredicate("b", 0.0, DISCRETE)])
        r = Relation.from_rows(["a", "b"], [(1, 1), (2, 1)])
        assert ned.holds(r)  # discrete distance 1 <= 2; b equal
        r2 = Relation.from_rows(["a", "b"], [(1, 1), (2, 2)])
        assert not ned.holds(r2)
