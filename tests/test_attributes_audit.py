"""Registry-driven audit: ``attributes()`` must cover every column read.

``IncrementalDetector`` routes mutation batches to checkers by the
columns a rule declares via :meth:`Dependency.attributes`.  If a
notation's ``violations()`` reads a column it does not declare, an
update to that column silently skips re-checking and the maintained
violation set drifts from the ground truth.

The audit instruments a relation so every attribute-level read is
recorded, runs one representative instance of each notation through
``violations()`` (under both the compiled-plan and the naive path), and
asserts the recorded reads are a subset of ``attributes()``.

Notations whose semantics inherently span the whole schema (MVD-style
complements) opt out via the ``reads_whole_relation`` class flag and
are checked separately.
"""

from __future__ import annotations

import pytest

from repro.core.base import Dependency
from repro.core.categorical.afd import AFD
from repro.core.categorical.cfd import CFD
from repro.core.categorical.ecfd import ECFD
from repro.core.categorical.fd import FD
from repro.core.categorical.mvd import AMVD, FHD, MVD
from repro.core.categorical.nud import NUD
from repro.core.categorical.pfd import PFD
from repro.core.categorical.sfd import SFD
from repro.core.heterogeneous.cd import CD, SimilarityFunction
from repro.core.heterogeneous.dd import CDD, DD
from repro.core.heterogeneous.ffd import FFD
from repro.core.heterogeneous.md import CMD, MD
from repro.core.heterogeneous.mfd import MFD
from repro.core.heterogeneous.ned import NED
from repro.core.heterogeneous.pac import PAC
from repro.core.numerical.dc import DC, pred2, predc
from repro.core.numerical.od import OD
from repro.core.numerical.ofd import OFD
from repro.core.numerical.sd import CSD, SD
from repro.plan import plan_mode
from repro.relation import Attribute, AttributeType, Relation, Schema


class TrackingRelation(Relation):
    """A relation recording which attributes are read through its API.

    Row-level accessors (``record_at``, ``tuple_at``, ``rows`` and
    iteration) touch every column and record the full schema; the
    targeted accessors record only the columns they were asked for.
    Row-subsetting (``take``/``drop``) is attribute-agnostic and not
    counted — only *which columns* feed the verdict matters for
    routing.
    """

    def __init__(self, schema, columns):
        super().__init__(schema, columns)
        self.reads: set[str] = set()

    def _note(self, attribute) -> None:
        name = attribute.name if isinstance(attribute, Attribute) else attribute
        self.reads.add(name)

    def _note_all(self) -> None:
        self.reads.update(self.schema.names())

    # -- targeted reads --------------------------------------------------
    def column(self, attribute):
        self._note(attribute)
        return super().column(attribute)

    def value_at(self, i, attribute):
        self._note(attribute)
        return super().value_at(i, attribute)

    def values_at(self, i, attributes):
        for a in attributes:
            self._note(a)
        return super().values_at(i, attributes)

    def group_by(self, attributes):
        for a in attributes:
            self._note(a)
        return super().group_by(attributes)

    def cached_group_by(self, attributes):
        for a in attributes:
            self._note(a)
        return super().cached_group_by(attributes)

    def distinct_count(self, attributes):
        for a in attributes:
            self._note(a)
        return super().distinct_count(attributes)

    def value_counts(self, attribute):
        self._note(attribute)
        return super().value_counts(attribute)

    def project(self, attributes):
        for a in attributes:
            self._note(a)
        return super().project(attributes)

    def project_bag(self, attributes):
        for a in attributes:
            self._note(a)
        return super().project_bag(attributes)

    # -- whole-row reads -------------------------------------------------
    def record_at(self, i):
        self._note_all()
        return super().record_at(i)

    def tuple_at(self, i):
        self._note_all()
        return super().tuple_at(i)

    def rows(self):
        self._note_all()
        return super().rows()

    def __iter__(self):
        self._note_all()
        return super().__iter__()

    def select(self, predicate):
        self._note_all()
        return super().select(predicate)


def fresh_relation() -> TrackingRelation:
    """Five numerical columns with duplicates, near-misses and spread."""
    schema = Schema(
        [Attribute(c, AttributeType.NUMERICAL) for c in "abcde"]
    )
    rows = [
        (1, 10.0, 1, 4.0, 0),
        (1, 12.0, 1, 4.5, 1),
        (2, 10.5, 2, 3.0, 2),
        (2, 10.5, 1, 9.0, 3),
        (3, 30.0, 2, 1.0, 4),
        (1, 11.0, 1, 4.0, 5),
        (5, 50.0, 2, 2.0, 6),
        (4, 10.0, 1, 7.0, 7),
    ]
    columns = [[r[i] for r in rows] for i in range(len(schema))]
    return TrackingRelation(schema, columns)


#: One representative instance per notation with a pair/row evaluation.
CASES: list[Dependency] = [
    FD(["a"], ["b"]),
    AFD(["a"], ["b"], 0.2),
    SFD(["a"], ["b"], 0.9),
    PFD(["a"], ["b"], 0.8),
    NUD(["a"], ["b"], 2),
    CFD(["a"], ["b"], {"a": 1}),
    ECFD(["a", "c"], ["b"], {"a": ("<=", 2)}),
    MFD(["a"], ["b"], 1.0),
    NED({"a": 1.0}, {"b": 0.5}),
    DD({"a": ("<=", 2.0)}, {"b": (">", 0.5)}),
    CDD({"a": ("<=", 2.0)}, {"b": (">", 0.5)}, {"c": 1}),
    MD({"a": 1.5}, ["b"]),
    CMD({"a": 1.5}, "b", {"c": 1}),
    CD(
        [SimilarityFunction("a", "b", threshold_ij=1.0)],
        SimilarityFunction("b", "c", threshold_ij=0.5),
    ),
    FFD(["a"], ["b"]),
    PAC({"a": 1.0}, {"b": 0.5}, 0.8),
    OD([("a", "<=")], [("b", "<=")]),
    OFD(["a"], ["b"], ordering="pointwise"),
    OFD(["a", "b"], ["d"], ordering="lex"),
    SD(["a"], "b", (0.0, 5.0)),
    CSD("a", "b", (0.0, 5.0), [(0.0, 2.5), (2.5, 10.0)]),
    DC([pred2("a", "<="), pred2("b", ">")]),
    DC([predc("a", ">", 3.0), predc("d", "<", 3.0)]),
]


@pytest.mark.parametrize(
    "dep", CASES, ids=lambda d: f"{d.kind}:{d}"
)
@pytest.mark.parametrize("mode", ["plan", "naive"])
def test_violations_reads_subset_of_attributes(dep, mode):
    assert not type(dep).reads_whole_relation
    relation = fresh_relation()
    declared = set(dep.attributes())
    assert declared, f"{dep.kind} declares no attributes"
    with plan_mode(mode):
        dep.violations(relation)
    stray = relation.reads - declared
    assert not stray, (
        f"{dep.label()} read undeclared columns {sorted(stray)} "
        f"(declared {sorted(declared)}) under the {mode} path"
    )


@pytest.mark.parametrize("cls", [MVD, FHD, AMVD])
def test_whole_relation_readers_are_flagged(cls):
    """MVD-family semantics complement over the schema: flag, don't audit."""
    assert cls.reads_whole_relation


def test_flag_defaults_false():
    assert Dependency.reads_whole_relation is False
    assert FD.reads_whole_relation is False
