"""Property tests: the encoded substrate must agree with the naive one.

The dictionary-encoded fast path (``repro.relation.encoding``) re-implements
group-by, stripped-partition construction, FastFD difference sets and FASTDC
evidence sets over integer codes.  These hypothesis tests drive random
relations — including ``None`` cells, NaN, bools, and mixed int/float/str
values — through both paths and require bit-identical results.
"""

from __future__ import annotations


from hypothesis import given, settings, strategies as st

from repro.discovery.dc_discovery import (
    _evidence_sets_naive,
    build_predicate_space,
    evidence_sets,
)
from repro.discovery.fastfd import _difference_sets_naive, difference_sets
from repro.relation import (
    Attribute,
    AttributeType,
    Relation,
    Schema,
    StrippedPartition,
    encoded_enabled,
    set_mode,
    substrate_mode,
)

# A single shared NaN object: dict-key semantics (identity shortcut) make
# repeated occurrences group together in the naive path, and the codebook
# reproduces exactly that.
NAN = float("nan")

MIXED = st.sampled_from(
    [None, 0, 1, 2, 3, True, False, 1.0, 2.5, -1, "x", "y", "", NAN]
)
NUMERIC = st.sampled_from(
    [None, 0, 1, 2, -3, 7, 1.5, 2.5, -0.5, True, NAN, 1 << 60]
)


@st.composite
def relations(draw, values=MIXED, max_cols=4, max_rows=25, numerical=False):
    n_cols = draw(st.integers(min_value=1, max_value=max_cols))
    n_rows = draw(st.integers(min_value=0, max_value=max_rows))
    dtype = (
        AttributeType.NUMERICAL if numerical else AttributeType.CATEGORICAL
    )
    schema = Schema([Attribute(f"A{c}", dtype) for c in range(n_cols)])
    rows = [
        tuple(draw(values) for __ in range(n_cols)) for __ in range(n_rows)
    ]
    return Relation.from_rows(schema, rows)


def _both_modes(fn):
    with substrate_mode("naive"):
        naive = fn()
    with substrate_mode("encoded"):
        encoded = fn()
    return naive, encoded


@settings(max_examples=120, deadline=None)
@given(relations())
def test_group_by_parity(r):
    names = r.schema.names()
    for attrs in (names, names[:1], names[-1:]):
        naive, encoded = _both_modes(lambda: r.group_by(attrs))
        assert naive == encoded
        # Insertion (first-occurrence) order of groups must match too.
        assert [sorted(g) for g in naive.values()] == [
            sorted(g) for g in encoded.values()
        ]


@settings(max_examples=120, deadline=None)
@given(relations())
def test_distinct_count_and_project_parity(r):
    names = r.schema.names()
    for attrs in (names, names[:1]):
        n_naive, n_encoded = _both_modes(lambda: r.distinct_count(attrs))
        assert n_naive == n_encoded
        p_naive, p_encoded = _both_modes(lambda: len(r.project(attrs)))
        assert p_naive == p_encoded


@settings(max_examples=120, deadline=None)
@given(relations())
def test_stripped_partition_parity(r):
    names = r.schema.names()
    for attrs in (names, names[:1]):
        naive, encoded = _both_modes(
            lambda: StrippedPartition.from_relation(r, attrs)
        )
        assert naive == encoded
        assert hash(naive) == hash(encoded)


@settings(max_examples=100, deadline=None)
@given(relations(max_cols=4, max_rows=18))
def test_difference_sets_parity(r):
    naive = _difference_sets_naive(r)
    with substrate_mode("encoded"):
        encoded = difference_sets(r)
    assert naive == encoded


@settings(max_examples=40, deadline=None)
@given(relations(values=NUMERIC, max_cols=3, max_rows=10, numerical=True))
def test_evidence_sets_parity_numerical(r):
    space = build_predicate_space(r, cross_columns=True)
    naive = _evidence_sets_naive(r, space)
    with substrate_mode("encoded"):
        encoded = evidence_sets(r, space)
    assert naive == encoded


@settings(max_examples=40, deadline=None)
@given(relations(max_cols=3, max_rows=10))
def test_evidence_sets_parity_categorical(r):
    space = build_predicate_space(r)
    naive = _evidence_sets_naive(r, space)
    with substrate_mode("encoded"):
        encoded = evidence_sets(r, space)
    assert naive == encoded


# -- mode plumbing -----------------------------------------------------------


def test_env_flag_forces_naive(monkeypatch):
    set_mode(None)
    monkeypatch.delenv("REPRO_NAIVE_SUBSTRATE", raising=False)
    assert encoded_enabled()
    monkeypatch.setenv("REPRO_NAIVE_SUBSTRATE", "1")
    assert not encoded_enabled()
    monkeypatch.setenv("REPRO_NAIVE_SUBSTRATE", "0")
    assert encoded_enabled()


def test_set_mode_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_NAIVE_SUBSTRATE", "1")
    set_mode("encoded")
    try:
        assert encoded_enabled()
    finally:
        set_mode(None)
    assert not encoded_enabled()


def test_substrate_mode_restores():
    set_mode(None)
    before = encoded_enabled()
    with substrate_mode("naive"):
        assert not encoded_enabled()
        with substrate_mode("encoded"):
            assert encoded_enabled()
        assert not encoded_enabled()
    assert encoded_enabled() is before


def test_nan_groups_like_dict_keys():
    """Repeated occurrences of one NaN object share a group, like dicts."""
    schema = Schema([Attribute("A")])
    r = Relation.from_rows(schema, [(NAN,), (NAN,), (1,)])
    naive, encoded = _both_modes(lambda: r.group_by(["A"]))
    assert naive == encoded
    assert sorted(len(g) for g in encoded.values()) == [1, 2]


def test_bool_int_float_share_codes():
    """1 == 1.0 == True must collapse to one group (dict equality)."""
    schema = Schema([Attribute("A")])
    r = Relation.from_rows(schema, [(1,), (1.0,), (True,), (2,)])
    naive, encoded = _both_modes(lambda: r.group_by(["A"]))
    assert naive == encoded
    assert sorted(len(g) for g in encoded.values()) == [1, 3]
