"""Property-based tests (hypothesis) on core invariants.

These are the reproduction's strongest evidence: metric axioms, measure
bounds, partition laws, discovery-oracle agreement and family-tree edge
equivalences hold on *arbitrary* generated relations, not just the
paper's examples.
"""


from hypothesis import given, settings, strategies as st

from repro.core import (
    AFD,
    CFD,
    DC,
    FD,
    MD,
    MFD,
    MVD,
    NUD,
    OD,
    OFD,
    PFD,
    SD,
    SFD,
)
from repro.core.familytree import DEFAULT_TREE
from repro.metrics import (
    ABS_DIFF,
    EDIT_DISTANCE,
    damerau_levenshtein,
    jaro_winkler,
    levenshtein,
    qgram_distance,
)
from repro.relation import Relation, StrippedPartition

# -- strategies -------------------------------------------------------------

short_text = st.text(
    alphabet=st.sampled_from("abc "), min_size=0, max_size=6
)

small_values = st.integers(min_value=0, max_value=3)


@st.composite
def relations(draw, n_cols=3, max_rows=8, numerical=False):
    n_rows = draw(st.integers(min_value=0, max_value=max_rows))
    value = (
        st.integers(min_value=0, max_value=5) if numerical else small_values
    )
    rows = [
        tuple(draw(value) for __ in range(n_cols)) for __ in range(n_rows)
    ]
    return Relation.from_rows([f"A{c}" for c in range(n_cols)], rows)


# -- metric axioms --------------------------------------------------------


@given(short_text, short_text)
def test_levenshtein_symmetric(a, b):
    assert levenshtein(a, b) == levenshtein(b, a)


@given(short_text, short_text)
def test_levenshtein_identity(a, b):
    assert (levenshtein(a, b) == 0) == (a == b)


@given(short_text, short_text, short_text)
def test_levenshtein_triangle(a, b, c):
    assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


@given(short_text, short_text)
def test_levenshtein_length_bounds(a, b):
    d = levenshtein(a, b)
    assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))


@given(short_text, short_text)
def test_damerau_never_exceeds_levenshtein(a, b):
    assert damerau_levenshtein(a, b) <= levenshtein(a, b)


@given(short_text, short_text)
def test_qgram_lower_bounds_scaled_edit(a, b):
    # Classic filter property: qgram distance / (2q) <= edit distance.
    q = 2
    assert qgram_distance(a, b, q) <= 2 * q * max(
        levenshtein(a, b), qgram_distance(a, b, q)
    )


@given(short_text, short_text)
def test_jaro_winkler_in_unit_interval(a, b):
    assert 0.0 <= jaro_winkler(a, b) <= 1.0


# -- measure bounds ----------------------------------------------------------


@given(relations())
def test_sfd_strength_in_unit_interval(r):
    s = SFD("A0", "A1").measure(r)
    assert 0.0 < s <= 1.0


@given(relations())
def test_pfd_probability_in_unit_interval(r):
    p = PFD("A0", "A1").measure(r)
    assert 0.0 < p <= 1.0


@given(relations())
def test_afd_g3_in_unit_interval(r):
    g = AFD("A0", "A1").measure(r)
    assert 0.0 <= g < 1.0 or (g == 0.0 and len(r) == 0)


@given(relations())
def test_g3_zero_iff_fd_holds(r):
    dep = FD("A0", "A1")
    assert (AFD("A0", "A1").measure(r) == 0.0) == dep.holds(r)


@given(relations())
def test_afd_removal_set_is_exact(r):
    afd = AFD("A0", "A1", 0.5)
    removed = afd.removal_set(r)
    if len(r):
        assert len(removed) / len(r) == afd.measure(r)
    assert afd.embedded.holds(r.drop(removed))


@given(relations())
def test_g3_monotone_under_violation_removal(r):
    """Removing the removal set leaves error 0 (monotonicity witness)."""
    afd = AFD("A0", "A1", 0.5)
    cleaned = r.drop(afd.removal_set(r))
    assert AFD("A0", "A1", 0.5).measure(cleaned) == 0.0


@given(relations())
def test_pfd_probability_one_iff_g3_zero(r):
    """P = 1 and g3 = 0 coincide (both characterize exact FDs);
    between the extremes they weight groups differently (P averages
    per-value, g3 per-tuple), so no inequality links them."""
    p = PFD("A0", "A1").measure(r)
    g3 = AFD("A0", "A1").measure(r)
    assert (p == 1.0) == (g3 == 0.0)


@given(relations())
def test_nud_minimal_weight_tight(r):
    k = NUD("A0", "A1").max_fanout(r)
    if k >= 1:
        assert NUD("A0", "A1", k).holds(r)
        if k > 1:
            assert not NUD("A0", "A1", k - 1).holds(r)


# -- partition laws -------------------------------------------------------


@given(relations())
def test_partition_product_law(r):
    pi_0 = StrippedPartition.from_relation(r, ["A0"])
    pi_1 = StrippedPartition.from_relation(r, ["A1"])
    assert pi_0.product(pi_1) == StrippedPartition.from_relation(
        r, ["A0", "A1"]
    )


@given(relations())
def test_partition_rank_is_distinct_count(r):
    pi = StrippedPartition.from_relation(r, ["A0", "A1"])
    assert pi.rank == r.distinct_count(["A0", "A1"])


@given(relations())
def test_partition_refinement_criterion(r):
    pi_x = StrippedPartition.from_relation(r, ["A0"])
    pi_y = StrippedPartition.from_relation(r, ["A1"])
    assert pi_x.refines(pi_y) == FD("A0", "A1").holds(r)


# -- family-tree equivalences (the Fig. 1A property) ----------------------


@given(relations())
@settings(max_examples=40)
def test_statistical_embeddings_equivalent(r):
    dep = FD(("A0", "A1"), ("A2",))
    for target in ("SFD", "PFD", "AFD", "NUD", "CFD", "MFD", "FFD", "MD"):
        edge = DEFAULT_TREE.edge("FD", target)
        assert edge.embed(dep).holds(r) == dep.holds(r), target


@given(relations())
@settings(max_examples=40)
def test_fd_implies_mvd(r):
    dep = FD("A0", "A1")
    if dep.holds(r):
        assert MVD.from_fd(dep).holds(r)


@given(relations(numerical=True))
@settings(max_examples=40)
def test_numerical_embeddings(r):
    ofd = OFD(("A0",), ("A1",))
    od = OD.from_ofd(ofd)
    assert od.holds(r) == ofd.holds(r)
    dc = DC.from_od(OD([("A0", "<=")], [("A1", ">=")]))
    assert dc.holds(r) == OD([("A0", "<=")], [("A1", ">=")]).holds(r)


@given(relations(numerical=True))
@settings(max_examples=40)
def test_od_implies_sd(r):
    od = OD([("A0", "<=")], [("A1", ">=")])
    if od.holds(r):
        assert SD.from_od(od).holds(r)


# -- discovery oracle agreement --------------------------------------------


@given(relations(n_cols=3, max_rows=7))
@settings(max_examples=25, deadline=None)
def test_tane_equals_brute_force(r):
    from repro.discovery import brute_force_fds, tane

    assert {str(d) for d in tane(r).dependencies} == {
        str(d) for d in brute_force_fds(r)
    }


@given(relations(n_cols=3, max_rows=7))
@settings(max_examples=25, deadline=None)
def test_fastfd_equals_brute_force(r):
    from repro.discovery import brute_force_fds, fastfd

    assert {str(d) for d in fastfd(r).dependencies} == {
        str(d) for d in brute_force_fds(r)
    }


# -- repair postconditions -------------------------------------------------


@given(relations())
@settings(max_examples=30, deadline=None)
def test_fd_repair_postcondition(r):
    from repro.quality import repair_fds

    fds = [FD("A0", "A1")]
    repaired, __log = repair_fds(r, fds)
    assert all(dep.holds(repaired) for dep in fds)
    assert len(repaired) == len(r)


@given(relations())
@settings(max_examples=25, deadline=None)
def test_cqa_certain_subset_of_possible(r):
    from repro.quality import consistent_answers, possible_answers, select_query

    fds = [FD("A0", "A1")]
    q = select_query(["A1"])
    certain = consistent_answers(r, fds, q, max_repairs=64)
    possible = possible_answers(r, fds, q, max_repairs=64)
    assert certain <= possible
