"""Tests for the profiler and the CLI."""

import pytest

from repro.cli import _parse_fd, load_relation, main
from repro.datasets import fd_workload, hotel_r1, hotel_r7
from repro.profiler import profile_relation
from repro.relation import AttributeType
from repro.relation.io import write_csv


@pytest.fixture
def r1_csv(tmp_path):
    path = tmp_path / "r1.csv"
    write_csv(hotel_r1(), path)
    return str(path)


@pytest.fixture
def r7_csv(tmp_path):
    path = tmp_path / "r7.csv"
    write_csv(hotel_r7(), path)
    return str(path)


class TestProfiler:
    def test_profile_r1(self):
        report = profile_relation(hotel_r1())
        categories = set(report.by_category())
        assert any("exact FDs" in c for c in categories)
        text = report.render()
        assert "8 tuples" in text

    def test_profile_dirty_workload_has_soft_and_approximate(self):
        w = fd_workload(120, 12, error_rate=0.05, seed=3)
        report = profile_relation(
            w.relation, epsilon=0.1, max_lhs_size=1, sfd_strength=0.6
        )
        categories = set(report.by_category())
        assert any("approximate FDs" in c for c in categories)
        assert any("soft FDs" in c for c in categories)
        assert any("constant CFDs" in c for c in categories)

    def test_profile_r7_finds_order_rules(self):
        report = profile_relation(hotel_r7())
        ods = report.by_category().get("order dependencies", [])
        assert any("avg/night" in str(r.rule) for r in ods)
        sds = report.by_category().get(
            "sequential dependencies (fitted gaps)", []
        )
        assert sds

    def test_empty_relation_notes(self):
        from repro.relation import Relation

        report = profile_relation(Relation.empty(["a"]))
        assert report.rules == []
        assert report.notes

    def test_pairwise_skip_note(self):
        w = fd_workload(60, 6, seed=1)
        report = profile_relation(w.relation, max_rows_for_pairwise=10)
        assert any("skipped OD" in n for n in report.notes)

    def test_violation_counts_populated(self):
        w = fd_workload(80, 8, error_rate=0.1, seed=2)
        report = profile_relation(w.relation, epsilon=0.2, max_lhs_size=1)
        approx = [
            r
            for r in report.rules
            if r.category.startswith("approximate")
        ]
        assert any(r.violations > 0 for r in approx)


class TestCLI:
    def test_parse_fd(self):
        dep = _parse_fd("a, b->c")
        assert dep.lhs == ("a", "b") and dep.rhs == ("c",)

    def test_parse_fd_rejects_garbage(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_fd("nonsense")

    def test_load_relation_autodetects_types(self, r1_csv):
        rel = load_relation(r1_csv)
        assert rel.schema["star"].dtype is AttributeType.NUMERICAL
        assert rel.schema["name"].dtype is AttributeType.TEXT

    def test_load_relation_overrides(self, r1_csv):
        rel = load_relation(r1_csv, text=["star"])
        assert rel.schema["star"].dtype is AttributeType.TEXT

    def test_profile_command(self, r1_csv, capsys):
        assert main(["profile", r1_csv]) == 0
        out = capsys.readouterr().out
        assert "exact FDs" in out

    def test_check_command_failure_exit(self, r1_csv, capsys):
        code = main(["check", r1_csv, "--fd", "address->region"])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_check_command_success_exit(self, r1_csv, capsys):
        code = main(["check", r1_csv, "--fd", "address->star"])
        assert code == 0
        assert "[ok]" in capsys.readouterr().out

    def test_check_unknown_attribute(self, r1_csv, capsys):
        code = main(["check", r1_csv, "--fd", "nope->region"])
        assert code == 2

    def test_tree_command(self, capsys):
        assert main(["tree"]) == 0
        assert "Family tree" in capsys.readouterr().out

    def test_survey_command(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Fig. 3" in out

    def test_numerical_profile(self, r7_csv, capsys):
        assert main(["profile", r7_csv]) == 0
        out = capsys.readouterr().out
        assert "order dependencies" in out


def test_python_dash_m_entry_point():
    """``python -m repro`` is the documented CLI entry."""
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "tree"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0
    assert "Family tree" in proc.stdout
