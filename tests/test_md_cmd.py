"""Unit tests for MDs, CMDs, and relative candidate keys."""

import pytest

from repro.core import CMD, FD, MD, DependencyError, RelativeCandidateKey
from repro.relation import Relation


class TestMD:
    def test_paper_md1_on_r6(self, r6):
        """Section 3.7.1: street≈5, region≈2 -> zip⇌ — t5/t6 identified."""
        md1 = MD({"street": 5, "region": 2}, "zip")
        assert md1.holds(r6)
        assert (1, 5) in md1.matches(r6) or (4, 5) in md1.matches(r6)

    def test_violation_when_similar_but_not_identified(self):
        r = Relation.from_rows(
            ["street", "zip"],
            [("12th St.", "95102"), ("12th Str", "99999")],
        )
        md = MD({"street": 5}, "zip")
        assert not md.holds(r)
        assert {v.tuples for v in md.violations(r)} == {(0, 1)}

    def test_support_and_confidence(self, r6):
        md = MD({"street": 5, "region": 2}, "zip")
        assert 0.0 < md.support(r6) <= 1.0
        assert md.confidence(r6) == 1.0

    def test_confidence_counts_identified_fraction(self):
        r = Relation.from_rows(
            ["s", "z"],
            [("aa", 1), ("ab", 1), ("ac", 2)],
        )
        md = MD({"s": 1}, "z")
        assert md.confidence(r) == pytest.approx(1 / 3)

    def test_exact_match_md_equals_fd(self, r5, r6):
        for rel in (r5, r6):
            for lhs in rel.schema.names():
                for rhs in rel.schema.names():
                    if lhs == rhs:
                        continue
                    md = MD.from_fd(FD(lhs, rhs))
                    assert md.holds(rel) == FD(lhs, rhs).holds(rel)

    def test_empty_sides_rejected(self):
        with pytest.raises(DependencyError):
            MD({}, "z")
        with pytest.raises(DependencyError):
            MD({"a": 1}, [])


class TestCMD:
    def test_condition_restricts_rule(self):
        r = Relation.from_rows(
            ["src", "street", "zip"],
            [
                ("good", "12th St.", "95102"),
                ("good", "12th Str", "95102"),
                ("bad", "9th Ave", "11111"),
                ("bad", "9th Av", "22222"),
            ],
        )
        md = MD({"street": 3}, "zip")
        assert not md.holds(r)  # the 'bad' pair violates
        cmd = CMD({"street": 3}, "zip", {"src": "good"})
        assert cmd.holds(r)

    def test_from_md_equivalence(self, r6):
        md = MD({"street": 5, "region": 2}, "zip")
        cmd = CMD.from_md(md)
        assert cmd.holds(r6) == md.holds(r6)

    def test_g3_error_bounds(self):
        r = Relation.from_rows(
            ["s", "z"],
            [("aa", 1), ("ab", 2), ("ac", 3)],
        )
        cmd = CMD({"s": 1}, "z")
        g3 = cmd.g3_error(r)
        assert 0.0 < g3 < 1.0
        assert CMD({"s": 1}, "z").g3_error(
            Relation.from_rows(["s", "z"], [("aa", 1), ("ab", 1)])
        ) == 0.0


class TestRCK:
    def test_coverage(self, r6):
        rck = RelativeCandidateKey({"street": 5, "region": 2}, "zip")
        pairs = [(1, 5), (0, 2)]
        assert rck.covers(r6, (1, 5))
        assert 0.0 <= rck.coverage(r6, pairs) <= 1.0

    def test_empty_pairs_full_coverage(self, r6):
        rck = RelativeCandidateKey({"street": 5}, "zip")
        assert rck.coverage(r6, []) == 1.0


class TestMDImplication:
    def _md(self, thresholds, rhs="z"):
        return MD(thresholds, rhs)

    def test_tighter_specific_is_implied(self):
        from repro.core import md_implies

        general = self._md({"s": 5})
        specific = self._md({"s": 2})
        assert md_implies(general, specific)
        assert not md_implies(specific, general)

    def test_extra_lhs_predicate_is_implied(self):
        from repro.core import md_implies

        general = self._md({"s": 5})
        specific = self._md({"s": 3, "r": 1})
        assert md_implies(general, specific)

    def test_rhs_must_be_covered(self):
        from repro.core import md_implies

        general = self._md({"s": 5}, rhs="z")
        specific = self._md({"s": 2}, rhs="w")
        assert not md_implies(general, specific)

    def test_implication_is_semantically_sound(self, r6):
        """If general implies specific and general holds, specific holds."""
        from repro.core import md_implies

        general = MD({"street": 5, "region": 2}, "zip")
        specific = MD({"street": 2, "region": 1}, "zip")
        assert md_implies(general, specific)
        if general.holds(r6):
            assert specific.holds(r6)

    def test_minimal_cover_drops_dominated(self):
        from repro.core import minimal_md_cover

        general = self._md({"s": 5})
        dominated = self._md({"s": 2})
        cover = minimal_md_cover([general, dominated])
        assert cover == [general]

    def test_minimal_cover_keeps_incomparable(self):
        from repro.core import minimal_md_cover

        a = self._md({"s": 5})
        b = self._md({"r": 5})
        assert set(map(id, minimal_md_cover([a, b]))) == {id(a), id(b)}
