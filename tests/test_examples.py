"""Smoke tests: every example script runs cleanly end to end."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"
    assert "Traceback" not in out


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "hotel_data_cleaning",
        "dependency_discovery",
        "family_tree_explorer",
        "numerical_monitoring",
        "csv_profiling",
    } <= names
