"""Unit tests for fuzzy resemblance relations (FFD substrate)."""

import pytest

from repro.metrics import (
    EDIT_DISTANCE,
    crisp_equal,
    reciprocal_equal,
    scaled_similarity,
    validate_resemblance,
)


class TestCrisp:
    def test_values(self):
        assert crisp_equal("a", "a") == 1.0
        assert crisp_equal("a", "b") == 0.0

    def test_valid(self):
        assert validate_resemblance(crisp_equal, ["a", "b", "c"]) == []


class TestReciprocal:
    def test_paper_ffd1_numbers(self):
        """Section 3.6.1: mu(299,300)=1/2 with beta 1; mu(29,20)=1/91
        with beta 10."""
        mu_price = reciprocal_equal(1)
        mu_tax = reciprocal_equal(10)
        assert mu_price(299, 300) == pytest.approx(1 / 2)
        assert mu_tax(29, 20) == pytest.approx(1 / 91)

    def test_identity(self):
        assert reciprocal_equal(5)(7, 7) == 1.0

    def test_monotone_in_distance(self):
        mu = reciprocal_equal(1)
        assert mu(0, 1) > mu(0, 2) > mu(0, 10)

    def test_beta_zero_is_always_equal(self):
        mu = reciprocal_equal(0)
        assert mu(0, 1000) == 1.0

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            reciprocal_equal(-1)

    def test_valid(self):
        assert validate_resemblance(reciprocal_equal(2), [0, 1, 5.5]) == []


class TestScaledSimilarity:
    def test_from_metric(self):
        mu = scaled_similarity(EDIT_DISTANCE)
        assert mu("abc", "abc") == 1.0
        assert 0.0 < mu("abc", "abd") < 1.0

    def test_valid(self):
        mu = scaled_similarity(EDIT_DISTANCE)
        assert validate_resemblance(mu, ["", "a", "xyz"]) == []


def test_validator_catches_non_reflexive():
    assert validate_resemblance(lambda a, b: 0.5, ["a"]) != []
