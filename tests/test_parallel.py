"""Sharded parallel checking must be invisible except for speed.

The contract under test: for every pairwise notation, backend and
option combination, ``workers=N`` produces violation lists (and
:class:`DetectionReport` orderings) byte-identical to the serial
executor, with parent counters equal to the sum of the per-shard
deltas, and with budget exhaustion propagating *into* running shards
through the shared :class:`ShardToken`.  When the fan-out cannot run
(unpicklable closures, tiny inputs below the ambient row floor), the
serial fallback is silent and lossless.
"""

from __future__ import annotations

import inspect
import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.heterogeneous.md import MD
from repro.core.heterogeneous.mfd import MFD
from repro.core.numerical.dc import DC, pred2
from repro.core.numerical.od import OD
from repro.metrics.base import Metric
from repro.plan import (
    COUNTERS,
    ColumnSlabs,
    KernelCounters,
    context_for,
    denial_violations,
    guard_pairs,
    kernel_backend,
    pairwise_violations,
    resolve_workers,
    workers,
)
from repro.plan.parallel import last_run
from repro.plan.slabs import load_shared, release_shared
from repro.quality.detection import Detector
from repro.relation import Attribute, AttributeType, Relation, Schema
from repro.relation.encoding import substrate_mode
from repro.runtime import Budget, BudgetExhausted, ShardToken, governed


def make_relation(n: int = 600, seed: int = 11) -> Relation:
    rng = random.Random(seed)
    rows = []
    v = 0
    for _ in range(n):
        v += rng.randint(0, 3)
        rows.append(
            {
                "A": v + (7 if rng.random() < 0.02 else 0),
                "B": v + rng.randint(0, 1),
                "C": rng.randint(0, 40),
                "name": f"n{rng.randint(0, 60):03d}",
            }
        )
    return Relation.from_dicts(["A", "B", "C", "name"], rows)


def make_dependencies():
    return [
        MFD(["C"], ["B"], 1.0),
        OD(["A"], ["B"]),
        DC([pred2("C", "="), pred2("B", "!=")]),
        MD({"name": 0.5}, ["C"]),
    ]


def violation_bytes(violations) -> bytes:
    return "\n".join(str(v) for v in violations).encode()


def run_dep(dep, rel, **kw):
    """DCs check through denial semantics, everything else pairwise."""
    if isinstance(dep, DC):
        return denial_violations(dep, rel, **kw)
    return pairwise_violations(dep, rel, **kw)


class TestSlabs:
    def test_context_round_trip(self):
        rel = make_relation(80)
        ctx = context_for(rel)
        slabs = ColumnSlabs.from_context(ctx)
        ctx2 = slabs.to_context()
        assert ctx2.n == ctx.n
        assert ctx2.schema.names() == ctx.schema.names()
        for a in ctx.schema.names():
            assert list(ctx2.column(a)) == list(ctx.column(a))
        assert sorted(map(sorted, ctx2.group_rows(("C",)))) == sorted(
            map(sorted, ctx.group_rows(("C",)))
        )

    def test_pickled_round_trip(self):
        rel = make_relation(50)
        slabs = ColumnSlabs.from_context(context_for(rel))
        ctx2 = pickle.loads(pickle.dumps(slabs)).to_context()
        for a in ("A", "B", "C", "name"):
            assert list(ctx2.column(a)) == list(rel.column(a))

    def test_shared_memory_round_trip(self):
        rel = make_relation(50, seed=3)
        ctx = context_for(rel)
        handle = ctx.share()
        try:
            ctx2 = load_shared(pickle.loads(pickle.dumps(handle))).to_context()
            for a in ("A", "B", "C", "name"):
                assert list(ctx2.column(a)) == list(ctx.column(a))
        finally:
            release_shared()

    def test_kernels_are_engine_neutral(self):
        """Acceptance gate: kernels never touch a row-store handle.

        The old grep-style pin ("the word relation never appears in the
        source") is now the SC002 staticcheck pass, which understands
        imports and identifiers instead of raw substrings.
        """
        from repro.analysis.staticcheck import (
            EngineNeutralityPass,
            load_source,
        )
        from repro.plan import kernels, kernels_vec

        check = EngineNeutralityPass()
        for mod in (kernels, kernels_vec):
            module = load_source(inspect.getsourcefile(mod))
            assert list(check.run(module)) == []

    def test_engine_neutrality_pass_catches_seeded_violation(self):
        """SC002 actually fires: seed a Relation import into a kernel."""
        from repro.analysis.staticcheck import (
            EngineNeutralityPass,
            load_source,
        )
        from repro.plan import kernels

        source = inspect.getsource(kernels)
        seeded = source.replace(
            "from ..runtime import checkpoint",
            "from ..runtime import checkpoint\n"
            "from ..relation import Relation",
            1,
        )
        assert seeded != source
        module = load_source("src/repro/plan/kernels.py", text=seeded)
        findings = list(EngineNeutralityPass().run(module))
        assert findings, "seeded Relation import must be flagged"
        assert all(f.code == "SC002" for f in findings)


class TestTokenLifecycle:
    def test_token_released_when_wait_is_interrupted(self, monkeypatch):
        """Regression (staticcheck SC003): a KeyboardInterrupt while
        waiting on shards must not leak the /dev/shm shard token."""
        import repro.plan.parallel as par

        rel = make_relation(600, seed=59)
        dep = OD(["A"], ["B"])

        created: list[ShardToken] = []
        real_create = ShardToken.create.__func__

        def recording_create(cls, *args, **kwargs):
            token = real_create(cls, *args, **kwargs)
            created.append(token)
            return token

        monkeypatch.setattr(
            ShardToken, "create", classmethod(recording_create)
        )

        def interrupted_wait(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(par, "wait", interrupted_wait)
        budget = Budget(deadline_s=3600)
        with governed(budget):
            with pytest.raises(KeyboardInterrupt):
                pairwise_violations(dep, rel, workers=2)
        par.shutdown()  # the abandoned futures poisoned this pool
        assert len(created) == 1
        name = created[0].name
        with pytest.raises(FileNotFoundError):
            ShardToken.attach(name)
        # The budget no longer references the released token either.
        assert created[0] not in budget._attached


class TestCounterMerge:
    def test_diff_then_merge_composes(self):
        live = KernelCounters()
        live.executions = 3
        live.pairs_examined = 100
        live.note("group")
        live.note_work("group", candidates=100, verified=40)
        earlier = live.snapshot()
        live.executions += 2
        live.pairs_examined += 75
        live.chunks += 2
        live.note("group")
        live.note("sweep")
        live.note_work("sweep", candidates=75, verified=10)
        later = live.snapshot()
        earlier.merge(later.diff(earlier))
        assert earlier == later

    def test_parent_totals_equal_sum_of_shard_deltas(self):
        rel = make_relation(900, seed=5)
        dep = MFD(["C"], ["B"], 1.0)
        with kernel_backend("scalar"):
            before = COUNTERS.snapshot()
            serial = pairwise_violations(dep, rel)
            serial_delta = COUNTERS.snapshot()
            parallel = pairwise_violations(dep, rel, workers=4)
            parent_delta = COUNTERS.snapshot()
        assert violation_bytes(parallel) == violation_bytes(serial)
        run = last_run()
        assert run is not None and run["workers"] == 4
        serial_pairs = serial_delta.pairs_examined - before.pairs_examined
        parent_pairs = (
            parent_delta.pairs_examined - serial_delta.pairs_examined
        )
        shard_pairs = sum(
            s["counters"].pairs_examined for s in run["shards"]
        )
        assert parent_pairs == shard_pairs == serial_pairs
        assert parent_delta.executions - serial_delta.executions == 1
        n = len(rel)
        assert (
            parent_delta.pairs_total - serial_delta.pairs_total
            == n * (n - 1) // 2
        )


class TestParity:
    @pytest.mark.parametrize("backend", ["scalar", "vector"])
    def test_all_notations_order_identical(self, backend):
        rel = make_relation(700, seed=23)
        with kernel_backend(backend):
            for dep in make_dependencies():
                serial = run_dep(dep, rel)
                parallel = run_dep(dep, rel, workers=4)
                assert violation_bytes(parallel) == violation_bytes(serial), (
                    f"{dep.kind} diverged under {backend} backend"
                )
                run = last_run()
                assert run is not None and run["workers"] == 4

    def test_restrict_parity(self):
        rel = make_relation(500, seed=31)
        dep = OD(["A"], ["B"])
        restrict = {3, 77, 210, 499}
        serial = pairwise_violations(dep, rel, restrict=restrict)
        parallel = pairwise_violations(
            dep, rel, restrict=restrict, workers=4
        )
        assert violation_bytes(parallel) == violation_bytes(serial)

    def test_first_only_stays_serial(self):
        rel = make_relation(500, seed=37)
        dep = OD(["A"], ["B"])
        marker = object()
        import repro.plan.parallel as par

        par._last_run = None
        first = pairwise_violations(dep, rel, first_only=True, workers=4)
        assert last_run() is None, "first_only must not fan out"
        assert violation_bytes(first) == violation_bytes(
            pairwise_violations(dep, rel, first_only=True)
        )
        del marker

    def test_guard_pairs_parity(self):
        rel = make_relation(600, seed=41)
        md = MD({"name": 0.5}, ["C"])
        serial = guard_pairs(md, rel, md.similar_on_lhs)
        parallel = guard_pairs(md, rel, md.similar_on_lhs, workers=4)
        assert parallel == serial

    def test_unpicklable_dependency_falls_back_to_serial(self):
        rel = make_relation(400, seed=43)
        local = Metric("test-local", lambda a, b: abs(float(a) - float(b)))
        dep = MFD(["A"], ["B"], 1.0, metric=local)
        import repro.plan.parallel as par

        par._last_run = None
        parallel = pairwise_violations(dep, rel, workers=4)
        assert last_run() is None, "unpicklable metric must stay serial"
        assert violation_bytes(parallel) == violation_bytes(
            pairwise_violations(dep, rel)
        )

    def test_resolve_workers_gates(self):
        assert resolve_workers(4, 10) == 4
        assert resolve_workers(None, 10) == 1
        with workers(4):
            assert resolve_workers(None, 10) == 1
            assert resolve_workers(None, 100_000) == 4
            assert resolve_workers(2, 100_000) == 2


SMALL = st.sampled_from([None, 0, 1, 2, 3, 1.0, 2.5, -1, "x", "y", ""])


@st.composite
def tiny_relations(draw, max_rows=24):
    n_rows = draw(st.integers(min_value=0, max_value=max_rows))
    schema = Schema(
        [Attribute(f"A{c}", AttributeType.NUMERICAL) for c in range(2)]
    )
    pool = st.sampled_from([None, 0, 1, 2, 3, 1.0, 2.5, -1])
    rows = [tuple(draw(pool) for __ in range(2)) for __ in range(n_rows)]
    return Relation.from_rows(schema, rows)


class TestPropertyParity:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        rel=tiny_relations(),
        backend=st.sampled_from(["naive", "scalar", "vector"]),
        dep_ix=st.integers(min_value=0, max_value=2),
        restrict=st.none() | st.sets(st.integers(0, 23), max_size=4),
    )
    def test_workers_invisible_in_report_bytes(
        self, rel, backend, dep_ix, restrict
    ):
        dep = [
            MFD(["A0"], ["A1"], 1.0),
            OD(["A0"], ["A1"]),
            DC([pred2("A0", "="), pred2("A1", "!=")]),
        ][dep_ix]
        substrate = "naive" if backend == "naive" else None
        kb = "scalar" if backend == "naive" else backend
        with substrate_mode(substrate), kernel_backend(kb):
            if restrict is None:
                one = Detector([dep]).detect(rel)
                four_vs = run_dep(dep, rel, workers=4)
                assert violation_bytes(four_vs) == violation_bytes(
                    one.violations
                )
                assert one.complete and one.exhausted == ""
            else:
                restrict = {i for i in restrict if i < len(rel)}
                serial = run_dep(dep, rel, restrict=restrict)
                par = run_dep(dep, rel, restrict=restrict, workers=4)
                assert violation_bytes(par) == violation_bytes(serial)


class TestShardToken:
    def test_publish_totals_and_caps(self):
        token = ShardToken.create(4, max_candidates=100, max_pairs=50)
        try:
            assert token.totals() == (0, 0)
            assert token.over_cap() == ""
            token.publish(0, 30, 10)
            token.publish(3, 40, 12)
            assert token.totals() == (70, 22)
            assert token.over_cap() == ""
            token.publish(1, 31, 0)
            assert token.over_cap() == "candidates"
        finally:
            token.close()
            token.unlink()

    def test_attach_sees_cancellation_first_reason_wins(self):
        token = ShardToken.create(2)
        try:
            peer = ShardToken.attach(token.name)
            assert peer.cancelled() == ""
            token.cancel("deadline")
            token.cancel("pairs")  # late reason must not overwrite
            assert peer.cancelled() == "deadline"
            peer.publish(1, 5, 5)
            assert token.totals() == (5, 5)
            peer.close()
        finally:
            token.close()
            token.unlink()

    def test_uncapped_token_never_over_cap(self):
        token = ShardToken.create(2)
        try:
            token.publish(0, 10**9, 10**9)
            assert token.over_cap() == ""
        finally:
            token.close()
            token.unlink()


class TestBudgetPropagation:
    def test_exhausting_deadline_cancels_running_shards(self):
        rel = make_relation(3000, seed=53)
        dep = MD({"name": 0.99}, ["C"])  # text metric: slow verify
        budget = Budget(deadline_s=0.15)
        with kernel_backend("scalar"), governed(budget):
            with pytest.raises(BudgetExhausted) as excinfo:
                pairwise_violations(dep, rel, workers=4)
        assert excinfo.value.reason == "deadline"
        run = last_run()
        assert run is not None and run["workers"] == 4
        assert run["exhausted"] == "deadline"
        # The shards' partial work was absorbed into the parent budget.
        assert budget.pairs > 0

    def test_shards_share_a_global_pair_cap(self):
        rel = make_relation(1200, seed=59)
        dep = MFD(["C"], ["B"], 1.0)
        budget = Budget(max_pairs=2000)
        with kernel_backend("scalar"), governed(budget):
            with pytest.raises(BudgetExhausted) as excinfo:
                pairwise_violations(dep, rel, workers=4)
        assert excinfo.value.reason == "pairs"
        assert budget.pairs >= 2000

    def test_child_budget_cancellation_propagates_into_shards(self):
        rel = make_relation(3000, seed=61)
        dep = MD({"name": 0.99}, ["C"])
        parent = Budget(deadline_s=30.0)
        stage = parent.child(deadline_s=0.15)
        with kernel_backend("scalar"), governed(stage):
            with pytest.raises(BudgetExhausted) as excinfo:
                pairwise_violations(dep, rel, workers=4)
        assert excinfo.value.reason == "deadline"
        # Stage work propagated up the chain; the parent survives.
        assert parent.pairs > 0 and parent.exhausted == ""

    def test_generous_budget_leaves_results_identical(self):
        rel = make_relation(500, seed=67)
        dep = OD(["A"], ["B"])
        serial = pairwise_violations(dep, rel)
        with governed(Budget(deadline_s=60.0, max_pairs=10**9)):
            parallel = pairwise_violations(dep, rel, workers=4)
        assert violation_bytes(parallel) == violation_bytes(serial)
