"""Unit tests for OFDs and ODs (numerical branch)."""

import pytest

from repro.core import OD, OFD, DependencyError, MarkedAttribute
from repro.core.numerical.ofd import lex_leq, pointwise_leq
from repro.relation import Relation


class TestOrderings:
    def test_pointwise(self):
        assert pointwise_leq((1, 2), (1, 3))
        assert not pointwise_leq((1, 4), (2, 3))
        assert pointwise_leq((1,), (1,))

    def test_lex(self):
        assert lex_leq((1, 9), (2, 0))
        assert not lex_leq((2, 0), (1, 9))

    def test_incomparable_types(self):
        assert not pointwise_leq((1,), ("a",))


class TestOFD:
    def test_paper_ofd1_on_r7(self, r7):
        """Section 4.1.1: subtotal ->^P taxes holds on r7."""
        assert OFD("subtotal", "taxes").holds(r7)

    def test_violation(self):
        r = Relation.from_rows(["x", "y"], [(1, 10), (2, 5)])
        dep = OFD("x", "y")
        assert not dep.holds(r)
        assert {v.tuples for v in dep.violations(r)} == {(0, 1)}

    def test_multi_attribute_pointwise(self):
        r = Relation.from_rows(
            ["x1", "x2", "y"], [(1, 1, 10), (2, 0, 5), (2, 2, 20)]
        )
        # (1,1) <= (2,2) and 10 <= 20; (1,1) vs (2,0) incomparable.
        assert OFD(["x1", "x2"], "y").holds(r)

    def test_lex_ordering_variant(self):
        r = Relation.from_rows(["x1", "x2", "y"], [(1, 9, 5), (2, 0, 4)])
        assert not OFD(["x1", "x2"], "y", ordering="lex").holds(r)
        assert OFD(["x1", "x2"], "y", ordering="pointwise").holds(r)

    def test_none_pairs_skipped(self):
        r = Relation.from_rows(["x", "y"], [(1, None), (2, 5)])
        assert OFD("x", "y").holds(r)

    def test_bad_ordering_rejected(self):
        with pytest.raises(DependencyError):
            OFD("x", "y", ordering="zigzag")


class TestMarkedAttribute:
    def test_marks(self):
        assert MarkedAttribute("a", "<=").compare(1, 1)
        assert not MarkedAttribute("a", "<").compare(1, 1)
        assert MarkedAttribute("a", ">=").compare(2, 1)
        assert MarkedAttribute("a", ">").compare(2, 1)

    def test_aliases(self):
        assert MarkedAttribute("a", "asc").mark == "<="
        assert MarkedAttribute("a", "desc").mark == ">="
        assert MarkedAttribute("a", "≤").mark == "<="

    def test_none_is_unordered(self):
        assert not MarkedAttribute("a", "<=").compare(None, 1)

    def test_bad_mark_rejected(self):
        with pytest.raises(DependencyError):
            MarkedAttribute("a", "!!")


class TestOD:
    def test_paper_od1_on_r7(self, r7):
        """Section 4.2.1: nights^<= -> avg/night^>= holds on r7."""
        assert OD([("nights", "<=")], [("avg/night", ">=")]).holds(r7)

    def test_paper_od2_on_r7(self, r7):
        """Section 4.2.2: subtotal^<= -> taxes^<= (ofd1 as an OD)."""
        assert OD([("subtotal", "<=")], [("taxes", "<=")]).holds(r7)

    def test_violation_both_orientations_checked(self):
        r = Relation.from_rows(["x", "y"], [(2, 10), (1, 5)])
        # increasing x should decrease y; here x=1 -> y=5, x=2 -> y=10.
        dep = OD([("x", "<=")], [("y", ">=")])
        assert not dep.holds(r)

    def test_strict_marks(self):
        r = Relation.from_rows(["x", "y"], [(1, 5), (1, 7)])
        # x ties: strict < never fires, so any RHS is fine.
        assert OD([("x", "<")], [("y", "<")]).holds(r)
        # with <=, ties on x require ties on y under <= both ways.
        assert not OD([("x", "<=")], [("y", "<=")]).holds(r)

    def test_from_ofd_equivalence(self, r7):
        ofd = OFD("subtotal", "taxes")
        od = OD.from_ofd(ofd)
        assert od.holds(r7) == ofd.holds(r7)

    def test_from_lex_ofd_rejected(self):
        with pytest.raises(DependencyError):
            OD.from_ofd(OFD("a", "b", ordering="lex"))

    def test_string_shorthand(self):
        dep = OD("x", "y")
        assert dep.lhs[0].mark == "<=" and dep.rhs[0].mark == "<="
