"""Durable tenant state: WAL, snapshots, recovery, overload, chaos.

Covers the frame-level WAL contract (round trip, torn-tail detection
per corruption mode, fsync policies), atomic checksummed snapshots,
the recovery path (snapshot + WAL tail == the live detector, corrupt
snapshots fall back to full replay, idempotence across the
snapshot/WAL-reset boundary), the overload guards (bounded ingest
admission with ``429`` + ``Retry-After``, the RSS read-only watermark,
the per-rule circuit breaker lifecycle), and chaos: subprocesses killed
at each injected crash point — and a live ``repro serve`` killed with
``SIGKILL`` mid-ingest — must recover to exactly the acknowledged
prefix.
"""

import json
import math
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.core import FD
from repro.incremental import IncrementalDetector
from repro.incremental.delta import Delta
from repro.quality.detection import Detector
from repro.relation import Relation, Schema
from repro.server import OverloadConfig, ReproApp
from repro.server.durability import (
    CircuitBreaker,
    DurabilityManager,
    IngestGate,
    MemoryWatermark,
    SnapshotCorruption,
    WriteAheadLog,
    encode_record,
    load_snapshot,
    scan_wal,
    write_snapshot,
)
from repro.server.state import TenantRegistry, parse_schema

SCHEMA = {"attributes": ["zip", "city"]}
FD_RULES = {"rules": [{"kind": "FD", "lhs": ["zip"], "rhs": ["city"]}]}


# ---------------------------------------------------------------------------
# WAL frames


class TestWal:
    def test_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync="always")
        wal.open_for_append()
        records = [
            {"seq": 1, "type": "register", "tenant": "t"},
            {"seq": 2, "type": "batch", "delta": {"insert": [["a", 1]]}},
            {"seq": 3, "nan": float("nan"), "inf": float("inf")},
        ]
        for r in records:
            wal.append(r)
        wal.close()
        scan = scan_wal(tmp_path / "wal.log")
        assert scan.torn_reason == ""
        assert scan.torn_bytes == 0
        assert [r["seq"] for r in scan.records] == [1, 2, 3]
        assert math.isnan(scan.records[2]["nan"])
        assert scan.records[2]["inf"] == float("inf")

    @pytest.mark.parametrize("fsync", ["always", "batch", "off"])
    def test_fsync_policies_all_durable_to_process_death(
        self, tmp_path, fsync
    ):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync=fsync)
        wal.open_for_append()
        for i in range(100):
            wal.append({"seq": i})
        # No close(): flush-per-append means the bytes are already in
        # the OS, which is all that matters for kill -9 survival.
        scan = scan_wal(tmp_path / "wal.log")
        assert len(scan.records) == 100
        wal.close()

    def test_bad_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            WriteAheadLog(tmp_path / "w.log", fsync="sometimes")

    def _write_frames(self, path, n=3):
        with open(path, "wb") as f:
            for i in range(n):
                f.write(encode_record({"seq": i + 1}))

    def test_torn_tail_truncated_header(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write_frames(path)
        with open(path, "ab") as f:
            f.write(b"\x00\x00")  # half a length field
        scan = scan_wal(path)
        assert len(scan.records) == 3
        assert scan.torn_reason == "truncated frame header"
        assert scan.torn_bytes == 2

    def test_torn_tail_short_payload(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write_frames(path)
        frame = encode_record({"seq": 99})
        with open(path, "ab") as f:
            f.write(frame[: len(frame) - 4])
        scan = scan_wal(path)
        assert len(scan.records) == 3
        assert scan.torn_reason == "payload shorter than declared length"

    def test_torn_tail_checksum_mismatch(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write_frames(path)
        frame = bytearray(encode_record({"seq": 99}))
        frame[-1] ^= 0xFF  # flip a payload bit
        with open(path, "ab") as f:
            f.write(bytes(frame))
        scan = scan_wal(path)
        assert len(scan.records) == 3
        assert scan.torn_reason == "checksum mismatch"

    def test_corruption_mid_file_drops_the_suffix(self, tmp_path):
        # Prefix-durability: a bad frame invalidates everything after
        # it, even frames that would individually verify.
        path = tmp_path / "wal.log"
        good = encode_record({"seq": 1})
        bad = bytearray(encode_record({"seq": 2}))
        bad[-1] ^= 0xFF
        with open(path, "wb") as f:
            f.write(good + bytes(bad) + encode_record({"seq": 3}))
        scan = scan_wal(path)
        assert [r["seq"] for r in scan.records] == [1]
        assert scan.torn_bytes > 0

    def test_open_for_append_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write_frames(path)
        with open(path, "ab") as f:
            f.write(b"GARBAGE")
        wal = WriteAheadLog(path, fsync="off")
        scan = wal.open_for_append()
        assert wal.truncated_bytes == 7
        assert len(scan.records) == 3
        wal.append({"seq": 4})
        wal.close()
        rescan = scan_wal(path)
        assert [r["seq"] for r in rescan.records] == [1, 2, 3, 4]
        assert rescan.torn_bytes == 0

    def test_reset_empties_the_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync="off")
        wal.open_for_append()
        wal.append({"seq": 1})
        wal.reset()
        wal.append({"seq": 2})
        wal.close()
        scan = scan_wal(tmp_path / "wal.log")
        assert [r["seq"] for r in scan.records] == [2]


# ---------------------------------------------------------------------------
# snapshots


class TestSnapshot:
    def test_round_trip(self, tmp_path):
        state = {"version": 1, "tenant": "t", "x": [1, None, float("nan")]}
        write_snapshot(tmp_path, state)
        loaded = load_snapshot(tmp_path)
        assert loaded["tenant"] == "t"
        assert math.isnan(loaded["x"][2])

    def test_absent_is_none(self, tmp_path):
        assert load_snapshot(tmp_path) is None

    def test_overwrite_is_atomic(self, tmp_path):
        write_snapshot(tmp_path, {"version": 1, "gen": 1})
        write_snapshot(tmp_path, {"version": 1, "gen": 2})
        assert load_snapshot(tmp_path)["gen"] == 2
        assert not (tmp_path / "snapshot.json.tmp").exists()

    def test_bit_flip_detected(self, tmp_path):
        write_snapshot(tmp_path, {"version": 1, "tenant": "t"})
        path = tmp_path / "snapshot.json"
        data = bytearray(path.read_bytes())
        data[-3] = ord("X")  # "t" -> "X" inside the body (valid UTF-8)
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotCorruption, match="checksum"):
            load_snapshot(tmp_path)

    def test_non_utf8_garbage_detected(self, tmp_path):
        write_snapshot(tmp_path, {"version": 1, "tenant": "t"})
        path = tmp_path / "snapshot.json"
        data = bytearray(path.read_bytes())
        data[-2] ^= 0xFF  # invalid continuation byte
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotCorruption, match="UTF-8"):
            load_snapshot(tmp_path)

    def test_malformed_header_detected(self, tmp_path):
        (tmp_path / "snapshot.json").write_text("not a snapshot\n{}")
        with pytest.raises(SnapshotCorruption, match="header"):
            load_snapshot(tmp_path)


# ---------------------------------------------------------------------------
# relation state round trip (the snapshot encoding)


class TestRelationState:
    def test_round_trip_with_mixed_values(self):
        schema = parse_schema(
            {"attributes": ["a", {"name": "x", "type": "numerical"}]}
        )
        rel = Relation.from_rows(
            schema,
            [
                ("u", 1.5),
                (None, float("nan")),
                ("u", -0.0),
                ("v", None),
            ],
        )
        back = Relation.from_state(rel.to_state())
        assert back.schema.names() == rel.schema.names()
        rows, brows = rel.rows(), back.rows()
        assert len(rows) == len(brows)
        for r, b in zip(rows, brows):
            for x, y in zip(r, b):
                if isinstance(x, float) and math.isnan(x):
                    assert isinstance(y, float) and math.isnan(y)
                else:
                    assert x == y

    def test_version_check(self):
        schema = parse_schema({"attributes": ["a"]})
        state = Relation.from_rows(schema, [("x",)]).to_state()
        state["version"] = 99
        with pytest.raises(ValueError, match="version"):
            Relation.from_state(state)

    def test_json_safe(self):
        schema = parse_schema({"attributes": ["a", "b"]})
        rel = Relation.from_rows(schema, [("x", 1), ("x", 2)])
        text = json.dumps(rel.to_state(), allow_nan=True)
        back = Relation.from_state(json.loads(text))
        assert back.rows() == rel.rows()


# ---------------------------------------------------------------------------
# manager: WAL + snapshot + recovery equivalence


def _seed_manager(tmp_path, *, fsync="off", snapshot_every=1000, batches=6):
    """A tenant with rules and `batches` applied, durably logged."""
    mgr = DurabilityManager(
        tmp_path, fsync=fsync, snapshot_every=snapshot_every
    )
    reg = TenantRegistry()
    schema = parse_schema(SCHEMA)
    tenant = reg.register("acme", schema, rows=[["1", "a"], ["2", "b"]])
    mgr.log_register(tenant)

    from repro.analysis import lint_entries
    from repro.rules_io import parse_rules_with_meta

    entries = parse_rules_with_meta(FD_RULES, source="t")
    report = lint_entries(entries, schema=schema)
    active = [
        e.dependency
        for i, e in enumerate(entries)
        if i not in report.skippable
    ]
    tenant.rule_entries = list(entries)
    tenant.rules_payload = FD_RULES
    tenant.detector = IncrementalDetector(active, tenant.relation)
    mgr.log_rules(tenant, FD_RULES)

    for i in range(batches):
        delta = Delta.from_json(
            {"insert": [["1", f"dup{i}"], [str(10 + i), "ok"]]}, schema
        )
        mgr.log_batch(tenant, delta)
        tenant.detector.apply(delta)
        tenant.relation = tenant.detector.relation
        tenant.batches_ingested += 1
        tenant.rows_ingested += len(delta.inserts)
        mgr.note_batch_applied(tenant)
    return mgr, reg, tenant


def _assert_equal_state(recovered, live):
    assert len(recovered.detector.relation) == len(live.detector.relation)
    assert sorted(map(tuple, recovered.detector.relation.rows())) == sorted(
        map(tuple, live.detector.relation.rows())
    )
    assert len(recovered.detector.violations()) == len(
        live.detector.violations()
    )
    assert recovered.batches_ingested == live.batches_ingested
    assert recovered.rows_ingested == live.rows_ingested


class TestRecovery:
    def test_wal_only_replay_equals_live(self, tmp_path):
        mgr, _, live = _seed_manager(tmp_path)
        mgr.close()
        mgr2 = DurabilityManager(tmp_path, fsync="off")
        reg2 = TenantRegistry()
        report = mgr2.recover(reg2)
        assert report.batches_replayed == 6
        assert not report.skipped
        _assert_equal_state(reg2.get("acme"), live)
        mgr2.close()

    def test_snapshot_plus_tail_equals_live(self, tmp_path):
        mgr, _, live = _seed_manager(tmp_path, snapshot_every=4)
        mgr.close()
        mgr2 = DurabilityManager(tmp_path, fsync="off")
        reg2 = TenantRegistry()
        report = mgr2.recover(reg2)
        [t] = report.tenants
        assert t.snapshot_used
        # Only the records after the snapshot replay.
        assert t.batches_replayed == 2
        assert not t.warnings
        _assert_equal_state(reg2.get("acme"), live)
        mgr2.close()

    def test_corrupt_snapshot_falls_back_to_full_replay(self, tmp_path):
        mgr, _, live = _seed_manager(tmp_path, snapshot_every=4)
        mgr.close()
        # After the snapshot the WAL was reset, so full replay needs
        # the pre-snapshot records too: corrupt the snapshot AND
        # restore a full WAL by replaying a fresh seed into a second
        # directory is overkill — instead corrupt a snapshot while the
        # WAL still has everything (snapshot_every beyond the run).
        mgr2, _, live2 = _seed_manager(
            tmp_path / "b", snapshot_every=1000
        )
        mgr2.snapshot(live2)  # snapshot at the end; WAL now empty
        # Re-log one batch so recovery has a tail, then corrupt.
        schema = live2.schema
        delta = Delta.from_json({"insert": [["77", "q"]]}, schema)
        mgr2.log_batch(live2, delta)
        live2.detector.apply(delta)
        live2.relation = live2.detector.relation
        live2.batches_ingested += 1
        live2.rows_ingested += 1
        mgr2.close()
        snap = tmp_path / "b" / "tenants" / "acme" / "snapshot.json"
        data = bytearray(snap.read_bytes())
        data[-3] ^= 0xFF
        snap.write_bytes(bytes(data))
        mgr3 = DurabilityManager(tmp_path / "b", fsync="off")
        reg3 = TenantRegistry()
        report = mgr3.recover(reg3)
        # The snapshot is unusable and the WAL alone cannot rebuild
        # (it was reset at snapshot time): the tenant is reported, not
        # silently resurrected wrong.
        assert report.skipped or any(
            t.warnings for t in report.tenants
        )
        mgr3.close()

    def test_snapshot_seq_skips_already_folded_records(self, tmp_path):
        # Crash window between snapshot rename and WAL reset: simulate
        # by snapshotting, then writing the records back into the WAL
        # with their original seqs — replay must skip them.
        mgr, _, live = _seed_manager(tmp_path, snapshot_every=1000)
        log = mgr._log("acme")
        preserved = scan_wal(log.wal.path).records
        mgr.snapshot(live)
        for record in preserved:
            log.wal.append(record)
        mgr.close()
        mgr2 = DurabilityManager(tmp_path, fsync="off")
        reg2 = TenantRegistry()
        report = mgr2.recover(reg2)
        [t] = report.tenants
        assert t.snapshot_used
        assert t.batches_replayed == 0  # every record seq <= snapshot seq
        _assert_equal_state(reg2.get("acme"), live)
        mgr2.close()

    def test_torn_tail_is_reported_and_dropped(self, tmp_path):
        mgr, _, live = _seed_manager(tmp_path)
        mgr.close()
        wal = tmp_path / "tenants" / "acme" / "wal.log"
        with open(wal, "ab") as f:
            f.write(b"\x00\x00\x01\x00only-half-a-frame")
        mgr2 = DurabilityManager(tmp_path, fsync="off")
        reg2 = TenantRegistry()
        report = mgr2.recover(reg2)
        [t] = report.tenants
        assert t.torn_bytes > 0
        assert any("truncated" in w for w in t.warnings)
        _assert_equal_state(reg2.get("acme"), live)
        mgr2.close()

    def test_remove_tenant_drops_durable_state(self, tmp_path):
        mgr, _, _ = _seed_manager(tmp_path)
        mgr.remove_tenant("acme")
        assert not (tmp_path / "tenants" / "acme").exists()
        mgr2 = DurabilityManager(tmp_path, fsync="off")
        report = mgr2.recover(TenantRegistry())
        assert report.tenants == []
        mgr2.close()

    def test_empty_directory_skipped_with_reason(self, tmp_path):
        mgr = DurabilityManager(tmp_path, fsync="off")
        (mgr.tenants_dir / "ghost").mkdir()
        report = mgr.recover(TenantRegistry())
        assert report.tenants == []
        assert report.skipped and "ghost" in report.skipped[0]
        mgr.close()

    def test_recovered_manager_keeps_appending_monotone_seqs(
        self, tmp_path
    ):
        mgr, _, live = _seed_manager(tmp_path)
        mgr.close()
        mgr2 = DurabilityManager(tmp_path, fsync="off")
        reg2 = TenantRegistry()
        mgr2.recover(reg2)
        tenant = reg2.get("acme")
        delta = Delta.from_json(
            {"insert": [["55", "z"]]}, tenant.schema
        )
        mgr2.log_batch(tenant, delta)
        mgr2.close()
        records = scan_wal(
            tmp_path / "tenants" / "acme" / "wal.log"
        ).records
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


# ---------------------------------------------------------------------------
# overload: gate, watermark, breaker


class TestIngestGate:
    def test_bounded_admission(self):
        gate = IngestGate(2)
        assert gate.try_acquire("t")
        assert gate.try_acquire("t")
        assert not gate.try_acquire("t")
        assert gate.shed_total == 1
        gate.release("t")
        assert gate.try_acquire("t")

    def test_tenants_do_not_share_the_bound(self):
        gate = IngestGate(1)
        assert gate.try_acquire("a")
        assert gate.try_acquire("b")
        assert not gate.try_acquire("a")

    def test_zero_disables(self):
        gate = IngestGate(0)
        assert all(gate.try_acquire("t") for _ in range(100))


class TestMemoryWatermark:
    def test_reads_real_rss(self):
        wm = MemoryWatermark(0)
        assert wm.rss_bytes() > 0  # /proc is available on CI

    def test_watermark_flips_read_only(self):
        wm = MemoryWatermark(100)
        wm.forced_rss_bytes = 50 * 1024 * 1024
        assert not wm.read_only()
        wm.forced_rss_bytes = 200 * 1024 * 1024
        assert wm.read_only()

    def test_disabled_watermark_never_read_only(self):
        wm = MemoryWatermark(0)
        wm.forced_rss_bytes = 1 << 60
        assert not wm.read_only()


class _StubDetector:
    """Just enough detector surface for breaker unit tests."""

    def __init__(self):
        self.suspended = []
        self.resumed = []
        self.known = {"FD: a -> b"}

    def suspend_rule(self, label):
        self.suspended.append(label)
        return True

    def resume_rule(self, label):
        if label not in self.known:
            return False
        self.resumed.append(label)
        return True


class TestCircuitBreaker:
    RULE = "FD: a -> b"

    def test_opens_after_threshold_consecutive_faults(self):
        cb = CircuitBreaker(threshold=3, cooldown_s=60)
        det = _StubDetector()
        for _ in range(2):
            assert cb.after_batch("t", det, {self.RULE}) == []
        [t] = cb.after_batch("t", det, {self.RULE})
        assert t.state == "open" and "3 consecutive" in t.reason
        assert det.suspended == [self.RULE]

    def test_clean_batch_resets_the_count(self):
        cb = CircuitBreaker(threshold=3, cooldown_s=60)
        det = _StubDetector()
        cb.after_batch("t", det, {self.RULE})
        cb.after_batch("t", det, {self.RULE})
        cb.after_batch("t", det, set())  # clean batch
        cb.after_batch("t", det, {self.RULE})
        cb.after_batch("t", det, {self.RULE})
        assert det.suspended == []  # never reached 3 consecutive

    def test_half_open_probe_closes_on_success(self):
        cb = CircuitBreaker(threshold=1, cooldown_s=0.0)
        det = _StubDetector()
        [opened] = cb.after_batch("t", det, {self.RULE})
        assert opened.state == "open"
        [probing] = cb.before_batch("t", det)
        assert probing.state == "half-open"
        assert det.resumed == [self.RULE]
        [closed] = cb.after_batch("t", det, set())
        assert closed.state == "closed"
        assert cb.states("t")[self.RULE] == "closed"

    def test_half_open_probe_reopens_on_fault(self):
        cb = CircuitBreaker(threshold=1, cooldown_s=0.0)
        det = _StubDetector()
        cb.after_batch("t", det, {self.RULE})
        cb.before_batch("t", det)
        [reopened] = cb.after_batch("t", det, {self.RULE})
        assert reopened.state == "open"
        assert reopened.reason == "probe faulted"
        assert det.suspended == [self.RULE, self.RULE]

    def test_open_breaker_respects_cooldown(self):
        cb = CircuitBreaker(threshold=1, cooldown_s=3600)
        det = _StubDetector()
        cb.after_batch("t", det, {self.RULE})
        assert cb.before_batch("t", det) == []  # not yet due
        assert det.resumed == []

    def test_vanished_rule_is_forgotten(self):
        cb = CircuitBreaker(threshold=1, cooldown_s=0.0)
        det = _StubDetector()
        det.known = set()  # rule no longer exists
        cb.after_batch("t", det, {self.RULE})
        assert cb.before_batch("t", det) == []
        assert cb.states("t") == {}


class TestDetectorSuspendResume:
    def _detector(self):
        schema = Schema(["a", "b", "c"])
        rel = Relation.from_rows(
            schema, [("1", "x", "p"), ("1", "y", "p")]
        )
        rules = [FD(["a"], ["b"]), FD(["a"], ["c"])]
        return rules, IncrementalDetector(rules, rel)

    def test_suspend_removes_and_resume_rebuilds_exactly(self):
        rules, det = self._detector()
        label = rules[0].label()
        before = len(det.violations())
        assert det.suspend_rule(label)
        assert label in det.suspended_rules
        assert len(det.violations()) < before
        assert det.resume_rule(label)
        assert det.suspended_rules == []
        # Cold rebuild on resume: exact state, nothing drifted.
        assert len(det.violations()) == before

    def test_suspended_rule_skips_batches_then_catches_up(self):
        rules, det = self._detector()
        label = rules[0].label()
        det.suspend_rule(label)
        det.apply(
            Delta(inserts=[("1", "z", "q"), ("2", "w", "r")])
        )
        det.resume_rule(label)
        # The resumed checker sees the rows applied while suspended.
        cold = Detector(rules).detect(det.relation)
        assert len(det.violations()) == len(cold.violations)

    def test_unknown_labels_are_noops(self):
        _, det = self._detector()
        assert not det.suspend_rule("nope")
        assert not det.resume_rule("nope")


# ---------------------------------------------------------------------------
# breaker wired through the app ingest core


class TestBreakerIntegration:
    def test_faulting_rule_trips_then_recovers(self, monkeypatch):
        app = ReproApp(
            overload=OverloadConfig(
                breaker_threshold=2, breaker_cooldown_s=3600
            )
        )
        schema = parse_schema(SCHEMA)
        tenant = app.tenants.register("acme", schema)
        rule = FD(["zip"], ["city"])
        tenant.rules_payload = FD_RULES
        tenant.detector = IncrementalDetector([rule], tenant.relation)
        label = rule.label()

        import repro.incremental.detector as detector_mod

        real = detector_mod.checker_for
        faulty = {"on": True}

        class _Exploding:
            def __init__(self, inner):
                self._inner = inner

            def apply(self, *a, **k):
                if faulty["on"]:
                    raise RuntimeError("flaky checker")
                return self._inner.apply(*a, **k)

            def __getattr__(self, name):
                return getattr(self._inner, name)

        def wrapping(rule_, relation):
            return _Exploding(real(rule_, relation))

        # Every (re)build of this tenant's checker is faulty until the
        # flag flips — so consecutive batches keep faulting.
        tenant.detector._checkers[0] = _Exploding(
            tenant.detector._checkers[0]
        )
        monkeypatch.setattr(detector_mod, "checker_for", wrapping)

        batch = {"insert": [["9", "x"]]}
        _, t1 = app.apply_batch(tenant, batch)
        assert t1 == []  # one fault: breaker still closed
        _, t2 = app.apply_batch(tenant, batch)
        assert [t.state for t in t2] == ["open"]
        assert tenant.detector.suspended_rules == [label]

        # While open, batches flow with the rule suspended: no faults.
        change, t3 = app.apply_batch(tenant, batch)
        assert t3 == [] and change.quarantined == []

        # Heal the rule, force the cooldown to expire, probe, close.
        faulty["on"] = False
        monkeypatch.setattr(detector_mod, "checker_for", real)
        app.guards.breaker._rules["acme"][label].opened_at = -1e9
        change, t4 = app.apply_batch(tenant, batch)
        states = [t.state for t in t4]
        assert states == ["half-open", "closed"]
        assert tenant.detector.suspended_rules == []
        # Post-recovery exactness: equal to a cold detect.
        cold = Detector([rule]).detect(tenant.detector.relation)
        assert len(tenant.detector.violations()) == len(cold.violations)
        app.shutdown()


# ---------------------------------------------------------------------------
# load shedding and the read-only watermark over HTTP


def _req(base, method, path, body=None, headers=None, timeout=30):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json", **(headers or {})},
    )

    def _decode(resp_headers, raw):
        if resp_headers.get("Content-Type", "").startswith(
            "application/json"
        ):
            return json.loads(raw or b"{}")
        return raw.decode()

    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, _decode(resp.headers, resp.read()), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, _decode(exc.headers, exc.read()), exc.headers


class TestOverloadHttp:
    def test_queue_full_sheds_with_retry_after(self):
        app = ReproApp(
            overload=OverloadConfig(
                max_inflight_per_tenant=1, retry_after_s=2.5
            )
        )
        handle = app.run_in_thread()
        try:
            base = handle.base_url
            status, _, _ = _req(
                base, "POST", "/tenants",
                {"tenant": "acme", "schema": SCHEMA},
            )
            assert status == 201
            status, _, _ = _req(
                base, "PUT", "/tenants/acme/rules", FD_RULES
            )
            assert status == 200
            tenant = app.tenants.get("acme")
            # Hold the tenant writer lock so the admitted batch parks
            # inside the executor and keeps its gate slot.
            tenant.lock.acquire()
            try:
                results = []
                first = threading.Thread(
                    target=lambda: results.append(
                        _req(base, "POST", "/tenants/acme/batches",
                             {"insert": [["1", "a"]]})
                    )
                )
                first.start()
                deadline = time.time() + 5
                while (
                    app.guards.gate.depth("acme") == 0
                    and time.time() < deadline
                ):
                    time.sleep(0.01)
                assert app.guards.gate.depth("acme") == 1
                status, body, headers = _req(
                    base, "POST", "/tenants/acme/batches",
                    {"insert": [["2", "b"]]},
                )
                assert status == 429
                assert body["reason"] == "ingest-queue-full"
                assert headers["Retry-After"] == "2.5"
            finally:
                tenant.lock.release()
            first.join(timeout=10)
            assert results and results[0][0] == 200
            # The shed was counted, in the gate and in /metrics.
            assert app.guards.gate.shed_total == 1
            status, text, _ = _req(base, "GET", "/metrics")
            assert "repro_shed_requests_total" in text
        finally:
            handle.stop()

    def test_memory_watermark_flips_read_only(self):
        # Watermark far above the test process's real footprint; the
        # forced-RSS hook pushes us over it deterministically.
        app = ReproApp(overload=OverloadConfig(max_rss_mb=1e9))
        handle = app.run_in_thread()
        try:
            base = handle.base_url
            status, _, _ = _req(
                base, "POST", "/tenants",
                {"tenant": "acme", "schema": SCHEMA},
            )
            assert status == 201
            _req(base, "PUT", "/tenants/acme/rules", FD_RULES)
            app.guards.watermark.forced_rss_bytes = 1 << 60
            status, body, headers = _req(
                base, "POST", "/tenants/acme/batches",
                {"insert": [["1", "a"]]},
            )
            assert status == 429
            assert body["reason"] == "memory-watermark"
            assert "Retry-After" in headers
            status, _, _ = _req(
                base, "POST", "/tenants",
                {"tenant": "other", "schema": SCHEMA},
            )
            assert status == 429  # registration is mutating too
            # Reads still flow.
            status, body, _ = _req(base, "GET", "/tenants/acme/violations")
            assert status == 200
            status, health, _ = _req(base, "GET", "/healthz")
            assert health["read_only"] is True
            app.guards.watermark.forced_rss_bytes = None
            status, _, _ = _req(
                base, "POST", "/tenants/acme/batches",
                {"insert": [["1", "a"]]},
            )
            assert status == 200
        finally:
            handle.stop()


# ---------------------------------------------------------------------------
# chaos: crash points and kill -9


_CHAOS_CHILD = textwrap.dedent(
    """
    import json, sys
    from repro.server import OverloadConfig, ReproApp

    data_dir, fsync, batches = sys.argv[1], sys.argv[2], int(sys.argv[3])
    app = ReproApp(data_dir=data_dir, fsync=fsync)
    schema = {"attributes": ["zip", "city"]}
    rules = {"rules": [{"kind": "FD", "lhs": ["zip"], "rhs": ["city"]}]}

    from repro.server.state import parse_schema
    from repro.incremental import IncrementalDetector
    from repro.analysis import lint_entries
    from repro.rules_io import parse_rules_with_meta

    tenant = app.tenants.register("acme", parse_schema(schema),
                                  rows=[["1", "a"]])
    app.durability.log_register(tenant)
    entries = parse_rules_with_meta(rules, source="t")
    report = lint_entries(entries, schema=tenant.schema)
    active = [e.dependency for i, e in enumerate(entries)
              if i not in report.skippable]
    with tenant.lock:
        app.durability.log_rules(tenant, rules)
        tenant.rule_entries = list(entries)
        tenant.rules_payload = rules
        tenant.detector = IncrementalDetector(active, tenant.relation)

    for i in range(batches):
        print(json.dumps({"event": "applying", "batch": i}), flush=True)
        change, _ = app.apply_batch(
            tenant, {"insert": [["1", "dup%d" % i], [str(100 + i), "ok"]]}
        )
        print(json.dumps({
            "event": "acked", "batch": i,
            "violations": change.total,
            "rows": len(tenant.detector.relation),
        }), flush=True)
    app.shutdown()
    print(json.dumps({"event": "done"}), flush=True)
    """
)


def _run_chaos_child(tmp_path, *, crash_point, fsync="batch", batches=8):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parent.parent / "src"
    )
    if crash_point:
        env["REPRO_CRASH_POINT"] = crash_point
    proc = subprocess.run(
        [sys.executable, "-c", _CHAOS_CHILD,
         str(tmp_path), fsync, str(batches)],
        capture_output=True, text=True, env=env, timeout=120,
    )
    events = [
        json.loads(line)
        for line in proc.stdout.splitlines()
        if line.startswith("{")
    ]
    return proc, events


def _recover(tmp_path):
    app = ReproApp(data_dir=tmp_path, fsync="off")
    report = app.recovery_report
    tenant = app.tenants.get("acme")
    state = {
        "violations": len(tenant.detector.violations()),
        "rows": len(tenant.detector.relation),
        "batches": tenant.batches_ingested,
        "report": report,
    }
    app.shutdown()
    return state


class TestChaos:
    @pytest.mark.parametrize("fsync", ["always", "batch", "off"])
    def test_crash_mid_wal_append_recovers_acked_prefix(
        self, tmp_path, fsync
    ):
        # Crash while the 6th batch's frame is half-written: the torn
        # frame must be truncated and recovery must equal the acked
        # prefix exactly (batches 0..4), under every fsync policy.
        proc, events = _run_chaos_child(
            tmp_path, crash_point="wal-append:8", fsync=fsync
        )
        assert proc.returncode == 137, proc.stderr
        acked = [e for e in events if e["event"] == "acked"]
        assert len(acked) == 5  # register+rules+5 batches = 7 appends
        state = _recover(tmp_path)
        assert state["batches"] == len(acked)
        assert state["violations"] == acked[-1]["violations"]
        assert state["rows"] == acked[-1]["rows"]
        [t] = state["report"].tenants
        assert t.torn_bytes > 0  # the half-frame really was torn

    def test_crash_during_replay_then_second_recovery_converges(
        self, tmp_path
    ):
        proc, events = _run_chaos_child(tmp_path, crash_point=None)
        assert proc.returncode == 0, proc.stderr
        acked = [e for e in events if e["event"] == "acked"]
        assert len(acked) == 8
        # First recovery attempt dies mid-replay (in a child: the
        # crash is os._exit, which cannot be caught in-process)...
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src"
        )
        env["REPRO_CRASH_POINT"] = "replay:3"
        probe = subprocess.run(
            [sys.executable, "-c", textwrap.dedent(
                """
                import sys
                from repro.server import ReproApp
                ReproApp(data_dir=sys.argv[1], fsync="off")
                """
            ), str(tmp_path)],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert probe.returncode == 137, probe.stderr
        # ... the second (no crash armed) must converge to the full
        # durable state: replay itself never mutates the log.
        state = _recover(tmp_path)
        assert state["batches"] == 8
        assert state["violations"] == acked[-1]["violations"]
        assert state["rows"] == acked[-1]["rows"]

    def test_snapshot_write_crash_point_direct(self, tmp_path):
        # Manager-level: first snapshot lands, second dies mid-write in
        # a child process; the surviving snapshot must verify and the
        # WAL tail must carry everything after it.
        child = textwrap.dedent(
            """
            import sys
            sys.path.insert(0, sys.argv[2])
            from tests.test_durability import _seed_manager
            # snapshot_every=3: snapshots after batches 3 and 6; the
            # second snapshot write crashes half-way.
            _seed_manager(sys.argv[1], fsync="off",
                          snapshot_every=3, batches=8)
            """
        )
        env = dict(os.environ)
        root = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = f"{root / 'src'}:{root}"
        env["REPRO_CRASH_POINT"] = "snapshot-write:2"
        proc = subprocess.run(
            [sys.executable, "-c", child, str(tmp_path), str(root)],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 137, proc.stderr
        # The tmp file of the torn write may remain; the real snapshot
        # must still verify as the *first* snapshot generation.
        snap_dir = tmp_path / "tenants" / "acme"
        state = load_snapshot(snap_dir)  # raises if torn/corrupt
        assert state is not None
        mgr = DurabilityManager(tmp_path, fsync="off")
        reg = TenantRegistry()
        report = mgr.recover(reg)
        [t] = report.tenants
        assert t.snapshot_used
        tenant = reg.get("acme")
        # 6 batches were applied before the crash (snapshot due after
        # the 6th); all 6 must be recovered: 3 from the snapshot, 3
        # replayed from the tail.
        assert tenant.batches_ingested == 6
        assert t.batches_replayed == 3
        mgr.close()


# ---------------------------------------------------------------------------
# kill -9 a live server; graceful SIGTERM drain


def _wait_for_port(stderr_path, timeout=30):
    deadline = time.time() + timeout
    while time.time() < deadline:
        text = Path(stderr_path).read_text()
        for line in text.splitlines():
            if "serving on" in line:
                try:
                    record = json.loads(line)
                    message = record.get("message", "")
                except json.JSONDecodeError:
                    message = line
                host_port = message.rsplit("serving on ", 1)[-1]
                return int(host_port.rsplit(":", 1)[-1])
        time.sleep(0.05)
    raise AssertionError(
        f"server never reported its port:\n{Path(stderr_path).read_text()}"
    )


def _start_serve(tmp_path, data_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parent.parent / "src"
    )
    stderr_path = tmp_path / "serve.log"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--data-dir", str(data_dir), *extra],
        stdout=subprocess.DEVNULL,
        stderr=open(stderr_path, "w"),
        env=env,
    )
    try:
        port = _wait_for_port(stderr_path)
    except Exception:
        proc.kill()
        raise
    return proc, f"http://127.0.0.1:{port}"


@pytest.mark.slow
class TestLiveServerChaos:
    def _ingest_some(self, base, batches=6):
        status, _, _ = _req(
            base, "POST", "/tenants",
            {"tenant": "acme", "schema": SCHEMA, "rows": [["1", "a"]]},
        )
        assert status == 201
        status, _, _ = _req(base, "PUT", "/tenants/acme/rules", FD_RULES)
        assert status == 200
        last = None
        for i in range(batches):
            status, body, _ = _req(
                base, "POST", "/tenants/acme/batches",
                {"insert": [["1", f"dup{i}"], [str(50 + i), "ok"]]},
            )
            assert status == 200, body
            last = body
        return last

    def test_kill_dash_nine_mid_ingest_recovers_acked_state(
        self, tmp_path
    ):
        data_dir = tmp_path / "state"
        proc, base = _start_serve(tmp_path, data_dir)
        try:
            last = self._ingest_some(base)
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL
        state = _recover(data_dir)
        # Every acknowledged batch survived the SIGKILL.
        assert state["batches"] == 6
        assert state["violations"] == last["total_violations"]
        assert state["rows"] == last["rows"]

    def test_sigterm_drains_gracefully(self, tmp_path):
        data_dir = tmp_path / "state"
        proc, base = _start_serve(
            tmp_path, data_dir, "--fsync", "always"
        )
        try:
            last = self._ingest_some(base, batches=3)
        except BaseException:
            proc.kill()
            raise
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0  # clean exit, not a crash
        state = _recover(data_dir)
        assert state["batches"] == 3
        assert state["violations"] == last["total_violations"]

    def test_restarted_server_serves_recovered_state(self, tmp_path):
        data_dir = tmp_path / "state"
        proc, base = _start_serve(tmp_path, data_dir)
        try:
            last = self._ingest_some(base, batches=4)
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        proc2, base2 = _start_serve(tmp_path, data_dir)
        try:
            status, body, _ = _req(base2, "GET", "/tenants/acme/violations")
            assert status == 200
            assert body["total_violations"] == last["total_violations"]
            assert body["rows"] == last["rows"]
            status, health, _ = _req(base2, "GET", "/healthz")
            assert health["recovery"]["tenants"] == 1
            # And the recovered tenant keeps accepting writes.
            status, body, _ = _req(
                base2, "POST", "/tenants/acme/batches",
                {"insert": [["1", "post-recovery"]]},
            )
            assert status == 200
        finally:
            proc2.send_signal(signal.SIGTERM)
            proc2.wait(timeout=30)
