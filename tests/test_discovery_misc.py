"""Tests for AMVD / PAC / FFD / CD discovery (the remaining Table 2 rows)."""

import pytest

from repro.core import CD, SimilarityFunction
from repro.datasets import dataspace_person
from repro.discovery import (
    discover_amvds,
    discover_cds,
    discover_ffds,
    discover_mvds_topdown,
    fit_pac,
)
from repro.metrics import reciprocal_equal


class TestAMVDDiscovery:
    def test_results_meet_epsilon(self, r5):
        eps = 0.1
        for dep in discover_amvds(r5, eps):
            assert dep.measure(r5) <= eps

    def test_epsilon_zero_matches_exact_mvds(self, r5):
        exact = {str(d) for d in discover_mvds_topdown(r5)}
        approx = {
            str(d).replace(" ->>_0 ", " ->> ")
            for d in discover_amvds(r5, 0.0)
        }
        assert approx == exact

    def test_larger_epsilon_finds_superset(self, r5):
        small = {
            (d.lhs, d.rhs) for d in discover_amvds(r5, 0.0)
        }
        large = {
            (d.lhs, d.rhs) for d in discover_amvds(r5, 0.3)
        }
        assert small <= large


class TestPACFitting:
    def test_fit_reaches_target_when_feasible(self, r6):
        pac, conf = fit_pac(r6, ["price"], ["tax"], 0.7)
        assert conf >= 0.7
        assert pac.holds(r6)

    def test_fit_reports_best_effort_otherwise(self, r6):
        pac, conf = fit_pac(r6, ["price"], ["tax"], 0.999)
        assert 0.0 <= conf <= 1.0
        # The fitted PAC's measured confidence equals what fit reported.
        assert pac.measure(r6) == pytest.approx(conf)

    def test_lhs_tolerance_is_median_distance(self, r6):
        pac, __ = fit_pac(r6, ["price"], ["tax"], 0.7)
        (lhs_pred,) = pac.lhs
        from repro.discovery import pairwise_distances

        dists = pairwise_distances(r6, "price")
        assert lhs_pred.threshold == dists[len(dists) // 2]


class TestFFDDiscovery:
    def test_discovered_ffds_hold(self, r6):
        res = discover_ffds(
            r6,
            {"price": reciprocal_equal(1), "tax": reciprocal_equal(10)},
            max_lhs_size=1,
        )
        assert len(res) > 0
        for dep in res:
            assert dep.holds(r6)

    def test_minimality_pruning(self, r6):
        res = discover_ffds(r6, {}, max_lhs_size=2)
        by_rhs: dict[str, list[set]] = {}
        for dep in res:
            by_rhs.setdefault(dep.rhs[0], []).append(set(dep.lhs))
        for sets in by_rhs.values():
            for a in sets:
                for b in sets:
                    assert a is b or not (a < b)

    def test_crisp_resemblances_match_fd_discovery(self, r5):
        """With crisp resemblances everywhere, FFD mining finds exactly
        relations whose FDs hold (not necessarily minimal-identical to
        TANE since pruning differs, but every result is a valid FD)."""
        from repro.core import FD

        res = discover_ffds(r5, {}, max_lhs_size=2)
        for dep in res:
            assert FD(dep.lhs, dep.rhs).holds(r5)


class TestCDPayAsYouGo:
    @pytest.fixture
    def ds(self):
        return dataspace_person()

    @pytest.fixture
    def theta1(self):
        return SimilarityFunction("region", "city", 5, 5, 5)

    @pytest.fixture
    def theta2(self):
        return SimilarityFunction("addr", "post", 7, 9, 6)

    def test_discovers_cd1(self, ds, theta1, theta2):
        res = discover_cds(ds, [theta1, theta2], min_confidence=1.0)
        assert any(
            cd.lhs[0] is theta1 and cd.rhs is theta2 for cd in res
        )

    def test_incremental_keeps_existing(self, ds, theta1, theta2):
        first = discover_cds(ds, [theta1], min_confidence=1.0)
        second = discover_cds(
            ds, [theta1, theta2], min_confidence=1.0,
            existing=list(first),
        )
        assert set(map(id, first.dependencies)) <= set(
            map(id, second.dependencies)
        )
        # Known pairs are not re-checked.
        assert second.stats.candidates_pruned >= 0

    def test_confidence_gate(self, ds, theta1):
        low_theta = SimilarityFunction("name", "name", 0)
        res = discover_cds(ds, [theta1, low_theta], min_confidence=1.0)
        # θ(region,city) firing does not imply identical names
        # ('Alice' vs 'Alex'), so that CD must be absent.
        assert not any(
            cd.lhs[0] is theta1 and cd.rhs is low_theta for cd in res
        )
