"""Fault injection: every engine completes, degrades honestly, or
raises a typed :class:`EngineFault` — never hangs, never lies."""

import time

import pytest

from repro.core import FD
from repro.datasets import hotel_r5, random_relation
from repro.discovery import (
    discover_constant_cfds,
    discover_dds,
    discover_mds,
    tane,
)
from repro.incremental import Delta, IncrementalDetector
from repro.quality.detection import Detector
from repro.runtime import (
    Budget,
    EngineFault,
    FaultInjected,
    FaultInjector,
    FaultSpec,
    inject,
)


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="disk", kind="latency")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="metric", kind="bitflip")

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError, match="'every'"):
            FaultSpec(site="metric", kind="latency", every=0)


class TestInjectorMechanics:
    def test_deterministic_after_and_every(self):
        from repro.metrics.base import Metric

        m = Metric("unit", lambda a, b: 0.0)
        spec = FaultSpec(
            site="metric", kind="exception", after=2, every=3
        )
        with FaultInjector(spec) as fi:
            results = []
            for __ in range(8):
                try:
                    m.distance("x", "y")
                    results.append("ok")
                except FaultInjected:
                    results.append("boom")
        # Fires on calls 3, 6 (after 2, then every 3rd).
        assert results == [
            "ok", "ok", "boom", "ok", "ok", "boom", "ok", "ok",
        ]
        assert fi.calls["metric"] == 8
        assert fi.fired["metric"] == 2

    def test_patches_restored_on_exit(self):
        from repro.metrics.base import Metric
        from repro.relation.partition_cache import PartitionCache

        real_distance = Metric.__dict__.get("distance")
        real_partition = PartitionCache.__dict__["partition"]
        with inject("metric", "exception"):
            assert PartitionCache.__dict__["partition"] is not real_partition
        assert Metric.__dict__.get("distance") is real_distance
        assert PartitionCache.__dict__["partition"] is real_partition

    def test_restored_even_when_body_raises(self):
        from repro.relation.partition_cache import PartitionCache

        real = PartitionCache.__dict__["partition"]
        with pytest.raises(RuntimeError):
            with inject("partition", "exception"):
                raise RuntimeError("body error")
        assert PartitionCache.__dict__["partition"] is real


class TestEnginesUnderFaults:
    """The robustness contract, engine by engine."""

    def test_tane_partition_fault_is_typed(self):
        r = hotel_r5()
        with inject("partition", "exception", message="disk on fire"):
            with pytest.raises(EngineFault) as exc:
                tane(r)
        assert exc.value.site == "partition"
        assert "disk on fire" in str(exc.value)

    def test_tane_clean_after_fault_context(self):
        r = hotel_r5()
        before = {str(d) for d in tane(r).dependencies}
        with inject("partition", "exception"):
            with pytest.raises(EngineFault):
                tane(r)
        after = {str(d) for d in tane(r).dependencies}
        assert before == after

    def test_cfdminer_groups_fault_is_typed(self):
        r = hotel_r5()
        with inject("groups", "exception"):
            with pytest.raises(EngineFault) as exc:
                discover_constant_cfds(r)
        assert exc.value.site == "groups"

    def test_dd_metric_exception_is_typed(self):
        r = hotel_r5()
        with inject("metric", "exception"):
            with pytest.raises(EngineFault) as exc:
                discover_dds(r, max_lhs_attrs=1)
        assert exc.value.site == "metric"

    @pytest.mark.parametrize(
        "bad", [-1.0, float("nan"), None, "zero"], ids=repr
    )
    def test_dd_corrupted_metric_detected(self, bad):
        r = hotel_r5()
        with inject("metric", "corrupt", corrupt_value=bad):
            with pytest.raises(EngineFault, match="corrupted"):
                discover_dds(r, max_lhs_attrs=1)

    def test_md_corrupted_metric_detected(self):
        r = hotel_r5()
        rhs = sorted(r.schema.names())[0]
        with inject("metric", "corrupt", corrupt_value=-0.5):
            with pytest.raises(EngineFault, match="corrupted"):
                discover_mds(r, rhs)

    def test_intermittent_latency_still_completes(self):
        r = hotel_r5()
        clean = {str(d) for d in discover_dds(r, max_lhs_attrs=1).dependencies}
        with inject("metric", "latency", latency_s=0.0005, every=100):
            slow = discover_dds(r, max_lhs_attrs=1)
        assert {str(d) for d in slow.dependencies} == clean
        assert slow.stats.complete is True

    def test_latency_plus_deadline_returns_partial_not_hangs(self):
        r = random_relation(30, 5, domain_size=4, seed=9)
        t0 = time.monotonic()
        with inject("metric", "latency", latency_s=0.002):
            result = discover_dds(
                r, max_lhs_attrs=1, budget=Budget(deadline_s=0.05)
            )
        elapsed = time.monotonic() - t0
        assert result.stats.complete is False
        assert result.stats.exhausted == "deadline"
        # Bounded overrun: nowhere near an unguarded full sweep.
        assert elapsed < 5.0


class TestDetectorQuarantine:
    def _detector(self):
        r = random_relation(12, 3, domain_size=3, seed=2)
        names = sorted(r.schema.names())
        rules = [FD([names[0]], [names[1]]), FD([names[1]], [names[2]])]
        return r, rules, IncrementalDetector(rules, r)

    def test_faulty_checker_is_quarantined_and_rebuilt(self):
        r, rules, det = self._detector()

        def boom(old, delta, new, remap):
            raise RuntimeError("checker corrupted")

        det._checkers[0].apply = boom
        change = det.apply(Delta(updates=[(0, {sorted(r.schema.names())[1]: "zz"})]))
        assert len(change.quarantined) == 1
        assert "checker corrupted" in change.quarantined[0]
        assert "quarantined" in change.render()
        assert det.quarantine and det.quarantine[0][0] == change.seq
        # The rule is rebuilt, not dropped: still present in the report
        # and exact w.r.t. cold recomputation.
        assert len(det._checkers) == len(rules)
        cold = Detector(rules).detect(det.relation)
        assert len(det.violations()) == len(cold.violations)

    def test_quarantined_batch_keeps_later_checkers(self):
        r, rules, det = self._detector()

        def boom(old, delta, new, remap):
            raise RuntimeError("boom")

        det._checkers[0].apply = boom
        change = det.apply(Delta(inserts=[("p", "q", "r")]))
        # Second checker still produced its feed.
        assert change.quarantined == [
            f"{rules[0].label()}: RuntimeError: boom"
        ]
        assert rules[1].label() in det.checker_strategy()

    def test_clean_batches_have_no_quarantine(self):
        r, rules, det = self._detector()
        change = det.apply(Delta(inserts=[("x", "y", "z")]))
        assert change.quarantined == []
        assert change.complete is True
        assert det.quarantine == []

    def test_dead_rule_when_rebuild_also_fails(self, monkeypatch):
        r, rules, det = self._detector()

        def boom(old, delta, new, remap):
            raise RuntimeError("boom")

        det._checkers[0].apply = boom
        import repro.incremental.detector as detector_mod

        def failing_rebuild(rule, relation):
            raise RuntimeError("rebuild failed too")

        monkeypatch.setattr(detector_mod, "checker_for", failing_rebuild)
        change = det.apply(Delta(inserts=[("p", "q", "r")]))
        assert det.dead_rules == [rules[0].label()]
        assert any("rebuild failed" in q for q in change.quarantined)
        assert len(det._checkers) == len(rules) - 1
