"""Unit tests for FDs — the family tree's root."""

import pytest

from repro.core import FD, DependencyError
from repro.relation import Relation


@pytest.fixture
def rel():
    return Relation.from_rows(
        ["a", "b", "c"],
        [(1, "x", 1), (1, "x", 2), (2, "y", 1), (2, "z", 1)],
    )


class TestConstruction:
    def test_single_names_accepted(self):
        dep = FD("a", "b")
        assert dep.lhs == ("a",) and dep.rhs == ("b",)

    def test_empty_sides_rejected(self):
        with pytest.raises(DependencyError):
            FD([], "b")
        with pytest.raises(DependencyError):
            FD("a", [])

    def test_equality_and_hash(self):
        assert FD("a", "b") == FD(("a",), ("b",))
        assert FD("a", "b") != FD("b", "a")
        assert len({FD("a", "b"), FD("a", "b")}) == 1

    def test_trivial(self):
        assert FD(["a", "b"], "a").is_trivial()
        assert not FD("a", "b").is_trivial()

    def test_attributes_deduped(self):
        assert FD(["a", "b"], ["b", "c"]).attributes() == ("a", "b", "c")

    def test_str(self):
        assert str(FD(["a", "b"], "c")) == "a, b -> c"


class TestSemantics:
    def test_holds(self, rel):
        assert FD("a", "b").holds(rel) is False  # a=2 -> y and z
        assert FD("b", "a").holds(rel) is True
        assert FD(["a", "c"], "b").holds(rel) is False

    def test_violations_are_cross_pairs(self, rel):
        vs = FD("a", "b").violations(rel)
        assert {v.tuples for v in vs} == {(2, 3)}

    def test_violations_on_fd1_r1(self, r1):
        """Table 1: fd1 flags (t3,t4) and (t5,t6), 0-based (2,3),(4,5)."""
        fd1 = FD("address", "region")
        assert {v.tuples for v in fd1.violations(r1)} == {(2, 3), (4, 5)}

    def test_fd1_misses_t7_t8(self, r1):
        """(t7, t8) differ on address, so fd1 cannot flag them."""
        fd1 = FD("address", "region")
        flagged = fd1.violations(r1).tuple_indices()
        assert 6 not in flagged and 7 not in flagged

    def test_holds_on_empty_and_single(self):
        empty = Relation.empty(["a", "b"])
        assert FD("a", "b").holds(empty)
        single = Relation.from_rows(["a", "b"], [(1, 2)])
        assert FD("a", "b").holds(single)

    def test_pairwise_agrees_with_group_based(self, rel):
        dep = FD("a", "b")
        pairwise = {
            (i, j)
            for i, j in rel.tuple_pairs()
            if dep.pair_violation(rel, i, j) is not None
        }
        assert pairwise == {v.tuples for v in dep.violations(rel)}

    def test_none_values_compare_as_equal_cells(self):
        # Two None X-values group together; None Y-values equal.
        r = Relation.from_rows(["a", "b"], [(None, 1), (None, 1)])
        assert FD("a", "b").holds(r)
        r2 = Relation.from_rows(["a", "b"], [(None, 1), (None, 2)])
        assert not FD("a", "b").holds(r2)


class TestDerived:
    def test_violating_groups(self, rel):
        groups = FD("a", "b").violating_groups(rel)
        assert list(groups) == [(2,)]
        assert groups[(2,)] == [2, 3]

    def test_keeps_is_maximum_consistent_subset(self, rel):
        dep = FD("a", "b")
        kept = dep.keeps(rel)
        assert len(kept) == 3
        assert dep.holds(rel.take(kept))

    def test_keeps_on_satisfying_relation_keeps_all(self, rel):
        dep = FD("b", "a")
        assert dep.keeps(rel) == [0, 1, 2, 3]

    def test_validate_schema(self, rel):
        FD("a", "b").validate_schema(rel.schema)
        with pytest.raises(KeyError):
            FD("a", "nope").validate_schema(rel.schema)
