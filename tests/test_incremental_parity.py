"""Property tests: incremental checking must equal cold recomputation.

The contract of the ISSUE-7 engine: after any sequence of mutation
batches, :class:`~repro.incremental.IncrementalDetector` holds exactly
the violations a cold :class:`~repro.quality.detection.Detector` finds
on a freshly-built copy of the mutated relation — for every supported
notation (FD, AFD, CFD, MFD, DD, MD, DC, OD, SD) and for fallback
notations (MVD here) alike.  The same random traffic also pins the
substrate invariants ``apply_delta`` relies on: patched partition
caches equal fresh ones, and inherited codebooks equal rebuilt ones.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AFD, CFD, DC, DD, FD, MD, MFD, MVD, OD, SD, pred2
from repro.incremental import Delta, IncrementalDetector
from repro.quality.detection import Detector
from repro.relation import (
    Attribute,
    AttributeType,
    Relation,
    Schema,
    StrippedPartition,
)
from repro.relation.partition_cache import cache_for

_C = AttributeType.CATEGORICAL
_N = AttributeType.NUMERICAL

SCHEMA = Schema(
    [
        Attribute("A", _C),
        Attribute("B", _C),
        Attribute("C", _N),
        Attribute("D", _N),
    ]
)

CAT = st.sampled_from(["a1", "a2", "a3", "b1", "b2"])
NUM = st.sampled_from([0, 1, 2, 3, 5, -1, 0.5, 2.5])

ROW = st.tuples(CAT, CAT, NUM, NUM)


def _rules():
    return [
        FD("A", "B"),
        AFD("A", "B", 0.3),
        CFD(["A"], ["B"], {"A": "a1"}),
        MFD(["A"], ["C"], 1.0),
        DD({"C": (0, 1)}, {"D": (0, 3)}),
        MD({"A": 1}, ["B"]),
        OD(["C"], ["D"]),
        SD(["C"], "D", (0, 3)),
        DC([pred2("C", ">", "C"), pred2("D", "<", "D")]),
        MVD("A", "B"),  # no incremental strategy: fallback parity
    ]


@st.composite
def relations(draw, min_rows=0, max_rows=14):
    n = draw(st.integers(min_value=min_rows, max_value=max_rows))
    return Relation.from_rows(SCHEMA, [draw(ROW) for __ in range(n)])


@st.composite
def deltas(draw, size):
    """One mutation batch valid against a relation of ``size`` rows."""
    inserts = draw(st.lists(ROW, max_size=3))
    deletes = []
    updates = []
    if size:
        deletes = draw(
            st.lists(
                st.integers(min_value=0, max_value=size - 1),
                max_size=2,
                unique=True,
            )
        )
        n_upd = draw(st.integers(min_value=0, max_value=2))
        for __ in range(n_upd):
            row = draw(st.integers(min_value=0, max_value=size - 1))
            attr = draw(st.sampled_from(["A", "B", "C", "D"]))
            value = draw(CAT if attr in ("A", "B") else NUM)
            updates.append((row, {attr: value}))
    return Delta(inserts=inserts, deletes=deletes, updates=updates)


def _keys(violations):
    return {(v.dependency, v.tuples) for v in violations}


@settings(max_examples=50, deadline=None)
@given(relations(), st.data())
def test_detector_matches_cold_recompute(r, data):
    rules = _rules()
    det = IncrementalDetector(rules, r)
    prev_keys = _keys(det.violations())
    for __ in range(data.draw(st.integers(min_value=1, max_value=3))):
        delta = data.draw(deltas(len(det.relation)))
        change = det.apply(delta)

        mutated = det.relation
        fresh = Relation.from_rows(mutated.schema, mutated.rows())
        assert mutated.rows() == fresh.rows()

        cold = Detector(rules).detect(fresh)
        per_rule = det.report().per_rule
        for rule in rules:
            assert _keys(per_rule[rule.label()]) == _keys(
                cold.per_rule[rule.label()]
            ), f"divergence on {rule.label()} after {delta}"
        assert det.holds() == Detector(rules).holds(fresh)

        # Changefeed reconciliation: previous state shifted by the
        # delta, minus resolutions, plus additions, is the new state.
        old_size = len(fresh) + len(delta.deletes) - len(delta.inserts)
        remap = delta.remap(old_size)

        def shift(keys):
            out = set()
            for dep, tuples in keys:
                mapped = tuple(remap[t] for t in tuples)
                if None not in mapped:
                    out.add((dep, mapped))
            return out

        now = _keys(det.violations())
        added = _keys(change.added)
        resolved = shift(_keys(change.resolved))
        survived = shift(prev_keys)
        assert added <= now
        assert added.isdisjoint(survived - resolved)
        assert now == (survived - resolved) | added
        prev_keys = now


@settings(max_examples=60, deadline=None)
@given(relations(min_rows=1), st.data())
def test_patched_caches_match_fresh(r, data):
    # Warm group/partition caches so apply_delta must patch them.
    r.cached_group_by(["A"])
    r.cached_group_by(["A", "B"])
    cache_for(r).partition(["A"])
    cache_for(r).partition(["B", "A"])

    delta = data.draw(deltas(len(r)))
    out = r.apply_delta(delta)
    fresh = Relation.from_rows(out.schema, out.rows())

    for attrs in (["A"], ["A", "B"]):
        patched = cache_for(out)._groups.get(tuple(attrs))
        if patched is not None:
            assert dict(patched) == fresh.group_by(attrs)
            for members in patched.values():
                assert members == sorted(members)
    for pkey in (("A",), ("A", "B")):
        part = cache_for(out)._partitions.get(pkey)
        if part is not None:
            assert part == StrippedPartition.from_relation(fresh, list(pkey))

    # Untouched relations never see their parent's patches.
    assert r.rows() == Relation.from_rows(r.schema, r.rows()).rows()


@settings(max_examples=60, deadline=None)
@given(relations(min_rows=1), st.lists(ROW, min_size=1, max_size=4))
def test_insert_only_codebook_extension_matches_rebuild(r, rows):
    r.cached_group_by(["A", "B"])  # force the encoding to exist
    if r._enc is None:
        pytest.skip("encoded substrate disabled")
    out = r.apply_delta(Delta(inserts=rows))
    assert out._enc is not None
    rebuilt = Relation.from_rows(out.schema, out.rows()).encoding()
    for j in range(len(SCHEMA)):
        mine = out._enc.column_codes(j)
        fresh = rebuilt.column_codes(j)
        assert mine.codes == fresh.codes
        assert mine.codebook == fresh.codebook
        assert mine.none_code == fresh.none_code
        assert mine.numeric_safe == fresh.numeric_safe
        assert [sorted(g) for g in mine.groups] == [
            sorted(g) for g in fresh.groups
        ]
