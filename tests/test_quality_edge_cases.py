"""Edge-case hardening for the quality engines."""


from repro.core import FD, MD, NUD, OD, SFD
from repro.quality import (
    CorrelationMap,
    Deduplicator,
    SelectivityEstimator,
    consistent_answers,
    fd_repairs,
    is_exhaustive,
    possible_answers,
    repair_fds,
    select_query,
    verify_repair,
)
from repro.relation import Relation


class TestCQAEdges:
    def test_consistent_relation_single_repair(self):
        r = Relation.from_rows(["k", "v"], [(1, "a"), (2, "b")])
        reps = fd_repairs(r, [FD("k", "v")])
        assert reps == [r]

    def test_cap_flag_false_on_explosive_instances(self):
        # 10 groups, each with a binary choice: 2^10 repairs > cap 64.
        rows = []
        for k in range(10):
            rows.append((k, "a"))
            rows.append((k, "b"))
        r = Relation.from_rows(["k", "v"], rows)
        assert not is_exhaustive(r, [FD("k", "v")], max_repairs=64)
        reps = fd_repairs(r, [FD("k", "v")], max_repairs=64)
        assert 0 < len(reps) <= 64
        for rep in reps:
            assert FD("k", "v").holds(rep)

    def test_empty_relation_cqa(self):
        r = Relation.empty(["k", "v"])
        q = select_query(["v"])
        assert consistent_answers(r, [FD("k", "v")], q) == set()
        assert possible_answers(r, [FD("k", "v")], q) == set()

    def test_repairs_are_maximal(self):
        r = Relation.from_rows(
            ["k", "v"], [(1, "a"), (1, "a"), (1, "b")]
        )
        reps = fd_repairs(r, [FD("k", "v")])
        sizes = sorted(len(rep) for rep in reps)
        assert sizes == [1, 2]  # keep {a,a} or keep {b} — both maximal


class TestRepairEdges:
    def test_empty_relation(self):
        r = Relation.empty(["k", "v"])
        repaired, log = repair_fds(r, [FD("k", "v")])
        assert repaired == r and log.cost() == 0

    def test_tie_breaking_is_deterministic(self):
        r = Relation.from_rows(
            ["k", "v"], [(1, "a"), (1, "b")]
        )
        out1, __ = repair_fds(r, [FD("k", "v")])
        out2, __ = repair_fds(r, [FD("k", "v")])
        assert out1 == out2

    def test_verify_repair_with_ignored(self):
        r = Relation.from_rows(["k", "v"], [(1, "a"), (1, "b")])
        assert not verify_repair(r, [FD("k", "v")])
        assert verify_repair(r, [FD("k", "v")], ignore_tuples=[1])


class TestOptimizerEdges:
    def test_estimator_on_empty_relation(self):
        r = Relation.empty(["a", "b"])
        est = SelectivityEstimator(r)
        assert est.true_selectivity({"a": 1}) == 0.0
        assert est.single_selectivity("a") == 1.0  # distinct floor

    def test_correlation_map_single_bucket(self):
        r = Relation.from_rows(["s", "t"], [(1, "x"), (2, "x")])
        cmap = CorrelationMap(r, "s", "t", buckets=4)
        assert cmap.target_buckets(1) == cmap.target_buckets(2)

    def test_correlation_map_missing_values(self):
        r = Relation.from_rows(
            ["s", "t"], [(1, "x"), (None, "y"), (2, None)]
        )
        cmap = CorrelationMap(r, "s", "t")
        assert cmap.target_buckets(2) == set()
        assert cmap.size() >= 1


class TestDedupEdges:
    def test_empty_relation(self):
        r = Relation.empty(["a", "b"])
        dedup = Deduplicator([MD({"a": 1}, "b")])
        assert dedup.duplicates(r) == []
        assert dedup.identify(r) == r

    def test_identify_with_all_missing_target(self):
        r = Relation.from_rows(["a", "b"], [("x", None), ("x", None)])
        dedup = Deduplicator([MD({"a": 0}, "b")])
        out = dedup.identify(r)
        assert out.column("b") == (None, None)

    def test_single_tuple_no_pairs(self):
        r = Relation.from_rows(["a", "b"], [("x", 1)])
        dedup = Deduplicator([MD({"a": 0}, "b")])
        assert dedup.matching_pairs(r) == set()


class TestMeasuredRuleEdges:
    def test_sfd_on_single_tuple(self):
        r = Relation.from_rows(["a", "b"], [(1, 2)])
        assert SFD("a", "b").measure(r) == 1.0

    def test_nud_with_missing_values(self):
        r = Relation.from_rows(
            ["a", "b"], [(1, None), (1, "x"), (1, None)]
        )
        # None counts as a distinct value (a representation variant).
        assert NUD("a", "b", 2).holds(r)
        assert not NUD("a", "b", 1).holds(r)

    def test_od_on_empty(self):
        r = Relation.empty(["x", "y"])
        assert OD([("x", "<=")], [("y", "<=")]).holds(r)
