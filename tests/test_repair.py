"""Tests for the repair engines (FD, CFD, DC)."""


from repro.core import CFD, DC, FD, pred2, predc
from repro.datasets import fd_workload
from repro.quality import (
    CellEdit,
    repair_cfds,
    repair_dcs,
    repair_fds,
    verify_repair,
)
from repro.relation import Relation


class TestFDRepair:
    def test_majority_wins(self):
        r = Relation.from_rows(
            ["k", "v"],
            [(1, "a"), (1, "a"), (1, "b"), (2, "c")],
        )
        repaired, log = repair_fds(r, [FD("k", "v")])
        assert repaired.column("v") == ("a", "a", "a", "c")
        assert log.cost() == 1
        assert log.edits[0] == CellEdit(2, "v", "b", "a")

    def test_workload_repair_restores_consistency(self):
        w = fd_workload(150, 15, error_rate=0.08, seed=3)
        repaired, log = repair_fds(w.relation, w.true_fds)
        assert verify_repair(repaired, w.true_fds)
        assert log.cost() > 0

    def test_repair_accuracy_against_clean(self):
        w = fd_workload(150, 15, error_rate=0.05, seed=4)
        repaired, __ = repair_fds(w.relation, w.true_fds)
        fixed = sum(
            1
            for i in w.error_tuples
            if repaired.tuple_at(i) == w.clean.tuple_at(i)
        )
        assert fixed / len(w.error_tuples) > 0.8

    def test_noop_on_clean_data(self):
        w = fd_workload(60, 6, error_rate=0.0, seed=5)
        __, log = repair_fds(w.relation, w.true_fds)
        assert log.cost() == 0

    def test_interacting_fds_reach_fixpoint(self):
        r = Relation.from_rows(
            ["a", "b", "c"],
            [(1, "x", "p"), (1, "x", "p"), (1, "y", "q")],
        )
        fds = [FD("a", "b"), FD("b", "c")]
        repaired, __ = repair_fds(r, fds)
        assert verify_repair(repaired, fds)


class TestCFDRepair:
    def test_constant_enforcement(self):
        r = Relation.from_rows(
            ["cc", "code"],
            [("44", "131"), ("44", "999"), ("01", "111")],
        )
        dep = CFD("cc", "code", {"cc": "44", "code": "131"})
        repaired, log = repair_cfds(r, [dep])
        assert repaired.column("code") == ("131", "131", "111")
        assert log.cost() == 1

    def test_variable_part_majority(self):
        r = Relation.from_rows(
            ["region", "zip", "street"],
            [
                ("uk", "z1", "high"),
                ("uk", "z1", "high"),
                ("uk", "z1", "low"),
                ("us", "z1", "main"),
            ],
        )
        dep = CFD(["region", "zip"], "street", {"region": "uk"})
        repaired, log = repair_cfds(r, [dep])
        assert dep.holds(repaired)
        assert repaired.value_at(3, "street") == "main"  # untouched

    def test_summary_readable(self):
        r = Relation.from_rows(["cc", "code"], [("44", "999")])
        dep = CFD("cc", "code", {"cc": "44", "code": "131"})
        __, log = repair_cfds(r, [dep])
        assert "cell edits" in log.summary()


class TestDCRepair:
    def test_order_violation_fixed(self, r7):
        broken = r7.with_value(0, "taxes", 999)
        dc1 = DC([pred2("subtotal", "<"), pred2("taxes", ">")])
        assert not dc1.holds(broken)
        repaired, log = repair_dcs(broken, [dc1])
        assert verify_repair(
            repaired, [dc1], ignore_tuples=log.quarantined
        )

    def test_constant_dc_repair(self):
        r = Relation.from_rows(
            ["region", "price"],
            [("Chicago", 150), ("Chicago", 300), ("Boston", 100)],
        )
        dc = DC([predc("region", "=", "Chicago"), predc("price", "<", 200)])
        repaired, log = repair_dcs(r, [dc])
        assert verify_repair(repaired, [dc], ignore_tuples=log.quarantined)

    def test_clean_data_untouched(self, r7):
        dc1 = DC([pred2("subtotal", "<"), pred2("taxes", ">")])
        repaired, log = repair_dcs(r7, [dc1])
        assert repaired == r7
        assert log.cost() == 0

    def test_quarantine_when_unfixable(self):
        # A DC that every value assignment violates for the pair:
        # two tuples may never share x — with only two tuples and a
        # single shared-domain column, flips cannot help.
        r = Relation.from_rows(["x"], [(1,), (1,)])
        dc = DC([pred2("x", "=")])
        repaired, log = repair_dcs(r, [dc])
        assert verify_repair(repaired, [dc], ignore_tuples=log.quarantined)
