"""Tests for QPIAD-style AFD imputation and eCFD predicate discovery."""

import pytest

from repro.datasets import fd_workload
from repro.discovery import discover_ecfds
from repro.quality import afd_impute, afd_value_distribution
from repro.relation import Relation


class TestAFDImputation:
    @pytest.fixture
    def holed(self):
        """A code -> city workload with some cities removed."""
        w = fd_workload(120, 10, error_rate=0.0, seed=19)
        rel = w.relation
        removed = [5, 20, 40]
        for i in removed:
            rel = rel.with_value(i, "city", None)
        return rel, w.relation, removed

    def test_distribution_from_group(self, holed):
        rel, truth, removed = holed
        dist = afd_value_distribution(rel, ["code"], "city", removed[0])
        assert dist
        assert sum(dist.values()) == pytest.approx(1.0)
        # Clean FD workload: the group is unanimous.
        assert max(dist.values()) == 1.0

    def test_impute_restores_truth(self, holed):
        rel, truth, removed = holed
        filled = afd_impute(rel, ["code"], "city")
        for i in removed:
            assert filled.value_at(i, "city") == truth.value_at(i, "city")

    def test_confidence_gate(self):
        r = Relation.from_rows(
            ["k", "v"],
            [(1, "a"), (1, "b"), (1, None)],
        )
        # Mode probability is 1/2 < 0.9: stays missing.
        gated = afd_impute(r, ["k"], "v", min_confidence=0.9)
        assert gated.value_at(2, "v") is None
        filled = afd_impute(r, ["k"], "v", min_confidence=0.0)
        assert filled.value_at(2, "v") in ("a", "b")

    def test_no_evidence_stays_missing(self):
        r = Relation.from_rows(["k", "v"], [(1, None), (2, "x")])
        filled = afd_impute(r, ["k"], "v")
        assert filled.value_at(0, "v") is None

    def test_distribution_proportions(self):
        r = Relation.from_rows(
            ["k", "v"],
            [(1, "a"), (1, "a"), (1, "b"), (1, None)],
        )
        dist = afd_value_distribution(r, ["k"], "v", 3)
        assert dist["a"] == pytest.approx(2 / 3)
        assert dist["b"] == pytest.approx(1 / 3)


class TestECFDDiscovery:
    def test_finds_rate_condition_on_r5(self, r5):
        found = discover_ecfds(r5, min_support=2, max_lhs_size=2)
        assert len(found) > 0
        for dep in found:
            assert dep.holds(r5)
            # Each eCFD has at least one operator predicate.
            assert any(
                not dep.pattern.entry(a).is_wildcard for a in dep.lhs
            )

    def test_redundant_when_fd_holds(self):
        r = Relation.from_rows(
            ["x", "y"], [(1, "a"), (2, "b"), (3, "c")]
        )
        # x -> y holds exactly: no eCFD needed.
        found = discover_ecfds(r, min_support=1, max_lhs_size=1)
        assert len(found) == 0

    def test_support_respected(self, r5):
        for dep in discover_ecfds(r5, min_support=3, max_lhs_size=1):
            assert len(dep.matching_indices(r5)) >= 3

    def test_synthetic_threshold_rule(self):
        """name -> addr holds only among cheap records (the ecfd1 shape)."""
        rows = [
            (100, "H", "a1"),
            (100, "H", "a1"),
            (300, "K", "b1"),
            (300, "K", "b2"),  # breaks the plain FD name, rate -> addr
        ]
        from repro.relation import Attribute, AttributeType, Schema

        schema = Schema(
            [
                Attribute("rate", AttributeType.NUMERICAL),
                Attribute("name", AttributeType.CATEGORICAL),
                Attribute("addr", AttributeType.CATEGORICAL),
            ]
        )
        r = Relation.from_rows(schema, rows)
        found = discover_ecfds(r, min_support=2, max_lhs_size=2)
        assert any(
            set(dep.lhs) == {"rate", "name"}
            and dep.rhs == ("addr",)
            for dep in found
        )
