"""Property tests: plan simplification never changes results.

The static simplifier (:func:`repro.analysis.simplify.simplify_plan`)
claims its rewrites are equivalence-preserving on *any* relation —
including ``None`` cells, NaN, and mixed incomparable types.  This
suite pins that claim two ways, over the same hostile value pool as
``test_plan_parity``:

* **deny-set identity** — for every notation and every ordered pair,
  the simplified plan's ``denies`` agrees with the raw compiled plan;
* **violation-output identity** — ``violations()`` through the kernels
  is order-identical (same pairs, same reasons) with simplification on
  (the default) and off (``REPRO_NO_SIMPLIFY=1``).

The dependency list is seeded with rules the simplifier actually
rewrites: duplicate atoms, subsumed clauses, mergeable metric
intervals, statically dead clauses, and fully unsatisfiable plans.
"""

from __future__ import annotations

import os

from hypothesis import given, settings, strategies as st

from repro.analysis.simplify import simplify_plan
from repro.core.categorical.fd import FD
from repro.core.heterogeneous.dd import CDD, DD
from repro.core.heterogeneous.md import MD
from repro.core.heterogeneous.mfd import MFD
from repro.core.heterogeneous.ned import NED
from repro.core.numerical.dc import DC, pred2, predc
from repro.core.numerical.od import OD
from repro.plan.compile import compile_dependency
from repro.relation import Attribute, AttributeType, Relation, Schema

NAN = float("nan")

MIXED = st.sampled_from(
    [None, 0, 1, 2, 3, True, False, 1.0, 2.5, -1, "x", "y", "", NAN]
)


@st.composite
def relations(draw, max_cols=3, max_rows=12):
    n_cols = draw(st.integers(min_value=3, max_value=max_cols))
    n_rows = draw(st.integers(min_value=0, max_value=max_rows))
    schema = Schema(
        [
            Attribute(f"A{c}", AttributeType.CATEGORICAL)
            for c in range(n_cols)
        ]
    )
    rows = [
        tuple(draw(MIXED) for __ in range(n_cols)) for __ in range(n_rows)
    ]
    return Relation.from_rows(schema, rows)


def make_dependencies():
    """Rules chosen so the simplifier has real rewrites to perform."""
    return [
        # Plain rules (simplifier should mostly leave these alone).
        FD(["A0"], ["A1"]),
        MD({"A0": 2.0}, ["A1"]),
        NED({"A0": 2.0}, {"A1": 1.0}),
        OD([("A0", "<=")], [("A1", "<=")]),
        DC([pred2("A0", "<", "A1")]),
        # Duplicate-atom / subsumed-clause fodder.
        FD(["A0", "A0"], ["A1"]),
        FD(["A0"], ["A1", "A1"]),
        DC([pred2("A0", "<="), pred2("A0", "<="), pred2("A1", ">")]),
        # Same-term-pair subsumption: < implies <= and !=.
        DC([pred2("A0", "<"), pred2("A0", "<="), pred2("A0", "!=")]),
        # Mergeable metric intervals on one measure.
        DD({"A0": (0.0, 5.0), "A1": (0.0, 9.0)}, {"A2": (0.0, 1.0)}),
        CDD({"A0": (0.0, 5.0)}, {"A1": (0.0, 1.0)}, {"A2": "x"}),
        MFD(["A0"], ["A1"], 1.0),
        # Statically dead: strict cycle, twin negation, empty constants.
        DC([pred2("A0", "<"), pred2("A0", ">")]),
        DC([pred2("A0", "<", "A1"), pred2("A1", "<", "A0")]),
        DC([predc("A0", ">", 5.0), predc("A0", "<", 3.0)]),
        DC([predc("A0", "=", "x"), predc("A0", "!=", "x")]),
        # Trivial (consequent contradicts a guard -> every clause dead).
        FD(["A0", "A1"], ["A0"]),
        OD([("A0", "<")], [("A0", "<")]),
        # Partially dead: one live clause, one dead.
        FD(["A0"], ["A1", "A0"]),
        # Constant atoms against None (never hold under SQL semantics).
        DC([predc("A0", "=", None)]),
        DC([pred2("A0", "="), predc("A1", "<", 2.0)]),
    ]


def _deny_sets_equal(raw, simplified, relation) -> bool:
    n = len(relation)
    if raw.arity == 1:
        pairs = [(i, i) for i in range(n)]
    else:
        pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
    return all(
        raw.denies(relation, i, j) == simplified.denies(relation, i, j)
        for i, j in pairs
    )


@given(relations())
@settings(max_examples=60, deadline=None)
def test_simplified_deny_set_identical(relation):
    for dep in make_dependencies():
        raw = compile_dependency(dep)
        simplified = simplify_plan(raw)
        assert _deny_sets_equal(raw, simplified, relation), (
            f"simplification changed the deny-set of {dep.label()}"
        )


def test_simplify_is_idempotent_and_source_preserving():
    for dep in make_dependencies():
        raw = compile_dependency(dep)
        once = simplify_plan(raw)
        twice = simplify_plan(once)
        assert twice is once
        assert once.source is dep
        assert once.arity == raw.arity
        assert once.style == raw.style


def test_simplifier_shrinks_seeded_rules():
    def size(plan):
        return sum(len(c.atoms) for c in plan.clauses)

    # Duplicate guard atom: one of the two X-equality atoms must go.
    raw = compile_dependency(FD(["A0", "A0"], ["A1"]))
    assert size(simplify_plan(raw)) < size(raw)
    # Duplicate clause (duplicated RHS attribute).
    raw = compile_dependency(FD(["A0"], ["A1", "A1"]))
    assert len(simplify_plan(raw).clauses) < len(raw.clauses)
    # Mergeable LHS intervals (two guards collapse into one).
    raw = compile_dependency(
        DD({"A0": (0.0, 5.0)}, {"A0": (0.0, 1.0), "A1": (0.0, 2.0)})
    )
    simplified = simplify_plan(raw)
    assert size(simplified) <= size(raw)
    # Fully dead plans get the never flag (kernels skip the scan).
    raw = compile_dependency(DC([pred2("A0", "<"), pred2("A0", ">")]))
    assert simplify_plan(raw).never
    raw = compile_dependency(FD(["A0", "A1"], ["A0"]))
    assert simplify_plan(raw).never


def _snapshot(dep, relation):
    return [(v.tuples, v.reason) for v in dep.violations(relation)]


@given(relations(max_rows=10))
@settings(max_examples=40, deadline=None)
def test_kernel_output_with_and_without_simplification(relation):
    # Fresh dependency objects per pass: each carries its own cached
    # plan, so the two passes genuinely compile under different modes.
    os.environ["REPRO_NO_SIMPLIFY"] = "1"
    try:
        expected = [
            _snapshot(dep, relation) for dep in make_dependencies()
        ]
    finally:
        del os.environ["REPRO_NO_SIMPLIFY"]
    got = [_snapshot(dep, relation) for dep in make_dependencies()]
    labels = [dep.label() for dep in make_dependencies()]
    for label, want, have in zip(labels, expected, got, strict=True):
        assert have == want, (
            f"simplification changed kernel output for {label}"
        )


def test_never_plan_reports_no_violations():
    schema = Schema(
        [Attribute(f"A{c}", AttributeType.CATEGORICAL) for c in range(3)]
    )
    relation = Relation.from_rows(
        schema, [(1, 2, 3), (1, 5, 3), (2, 2, 2), (None, NAN, "x")]
    )
    for dep in (
        DC([pred2("A0", "<"), pred2("A0", ">")]),
        FD(["A0", "A1"], ["A0"]),
        OD([("A0", "<")], [("A0", "<")]),
    ):
        assert dep.holds(relation)
        assert len(dep.violations(relation)) == 0
