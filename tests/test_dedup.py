"""Tests for MD-driven deduplication."""

import pytest

from repro.core import MD
from repro.datasets import heterogeneous_workload
from repro.quality import Deduplicator, UnionFind


class TestUnionFind:
    def test_clusters(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(3, 4)
        uf.union(1, 3)
        assert uf.clusters() == [[0, 1, 3, 4], [2]]

    def test_idempotent_union(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        uf.union(0, 1)
        assert uf.find(1) == uf.find(0)


class TestDeduplicator:
    @pytest.fixture
    def workload(self):
        return heterogeneous_workload(
            20, 3, variant_rate=0.4, error_rate=0.0, seed=7
        )

    def test_same_address_clusters_entity(self, workload):
        dedup = Deduplicator([MD({"address": 0}, "city")])
        q = dedup.score(workload.relation, workload.duplicate_pairs)
        assert q.precision == 1.0
        assert q.recall == 1.0

    def test_duplicates_only_size_two_plus(self, workload):
        dedup = Deduplicator([MD({"address": 0}, "city")])
        for cluster in dedup.duplicates(workload.relation):
            assert len(cluster) >= 2

    def test_identify_canonicalizes_city(self, workload):
        dedup = Deduplicator([MD({"address": 0}, "city")])
        identified = dedup.identify(workload.relation)
        for cluster in dedup.duplicates(workload.relation):
            values = {identified.value_at(t, "city") for t in cluster}
            assert len(values) == 1

    def test_md1_on_r6_identifies_zip(self, r6):
        dedup = Deduplicator([MD({"street": 5, "region": 2}, "zip")])
        clusters = dedup.duplicates(r6)
        # t2, t5, t6 (0-based 1, 4, 5) share street/region neighborhood.
        assert any({1, 4, 5} <= set(c) for c in clusters)

    def test_transitive_closure_expands_pairs(self):
        from repro.relation import Relation

        r = Relation.from_rows(
            ["s", "z"], [("aa", 1), ("ab", 1), ("bb", 1)]
        )
        dedup = Deduplicator([MD({"s": 1}, "z")])
        # aa~ab and ab~bb but not aa~bb; closure puts all three together.
        clusters = dedup.duplicates(r)
        assert clusters == [[0, 1, 2]]

    def test_match_quality_zero_division(self):
        from repro.quality import MatchQuality

        q = MatchQuality(0, 0, 0)
        assert q.precision == 1.0 and q.recall == 1.0


class TestMatchAcross:
    def test_cross_relation_pairs(self):
        from repro.quality import match_across
        from repro.relation import Attribute, AttributeType, Relation, Schema

        schema = Schema(
            [
                Attribute("name", AttributeType.TEXT),
                Attribute("city", AttributeType.TEXT),
            ]
        )
        left = Relation.from_rows(
            schema, [("Grand Hotel", "Boston"), ("Plaza", "NYC")]
        )
        right = Relation.from_rows(
            schema, [("Grand Hotl", "Boston"), ("Hilton", "Miami")]
        )
        md = MD({"name": 2}, "city")
        pairs = match_across(left, right, md)
        assert pairs == [(0, 0)]

    def test_within_relation_pairs_excluded(self):
        from repro.quality import match_across
        from repro.relation import Relation

        left = Relation.from_rows(["name", "city"], [("aa", 1), ("ab", 1)])
        right = Relation.from_rows(["name", "city"], [("zz", 9)])
        md = MD({"name": 1}, "city")
        # aa~ab is a within-left pair: must not be returned.
        assert match_across(left, right, md) == []

    def test_missing_attribute_raises(self):
        from repro.quality import match_across
        from repro.relation import Relation

        left = Relation.from_rows(["name", "city"], [("a", 1)])
        right = Relation.from_rows(["name"], [("a",)])
        md = MD({"name": 1}, "city")
        with pytest.raises(KeyError):
            match_across(left, right, md)

    def test_extra_attributes_ignored(self):
        from repro.quality import match_across
        from repro.relation import Relation

        left = Relation.from_rows(
            ["name", "city", "extra"], [("aa", 1, "x")]
        )
        right = Relation.from_rows(["city", "name"], [(1, "aa")])
        md = MD({"name": 0}, "city")
        assert match_across(left, right, md) == [(0, 0)]
