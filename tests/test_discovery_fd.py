"""Tests for TANE and FastFD (exact FD discovery) and AFD discovery."""

import pytest

from repro.core import AFD, FD
from repro.datasets import fd_workload, random_relation
from repro.discovery import brute_force_fds, difference_sets, fastfd, tane


def as_strs(deps):
    return set(map(str, deps))


class TestTane:
    def test_r5_minimal_fds(self, r5):
        found = as_strs(tane(r5).dependencies)
        assert found == {
            "address -> name",
            "rate -> address",
            "rate -> name",
            "region -> address",
            "region -> name",
        }

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_brute_force(self, seed):
        r = random_relation(15, 4, domain_size=3, seed=seed)
        assert as_strs(tane(r).dependencies) == as_strs(brute_force_fds(r))

    def test_discovered_fds_hold(self):
        r = random_relation(25, 5, domain_size=4, seed=3)
        for dep in tane(r).dependencies:
            assert dep.holds(r)

    def test_minimality(self):
        r = random_relation(25, 5, domain_size=4, seed=5)
        found = tane(r).dependencies
        lhs_by_rhs: dict[str, list] = {}
        for dep in found:
            lhs_by_rhs.setdefault(dep.rhs[0], []).append(set(dep.lhs))
        for sets in lhs_by_rhs.values():
            for a in sets:
                for b in sets:
                    assert a is b or not (a < b)

    def test_max_lhs_size_cap(self):
        r = random_relation(20, 5, domain_size=3, seed=7)
        for dep in tane(r, max_lhs_size=2).dependencies:
            assert len(dep.lhs) <= 2

    def test_empty_relation(self):
        from repro.relation import Relation

        r = Relation.empty(["a", "b"])
        # On 0 tuples every FD holds; minimal FDs are all singletons.
        found = tane(r).dependencies
        assert as_strs(found) == {"a -> b", "b -> a"}

    def test_afd_mode_finds_approximate(self):
        w = fd_workload(100, 10, error_rate=0.05, seed=4)
        exact = as_strs(d for d in tane(w.relation).dependencies)
        approx = tane(w.relation, epsilon=0.1).dependencies
        assert all(isinstance(d, AFD) for d in approx)
        # The dirtied FD code -> city is approximately recovered.
        assert any(
            d.lhs == ("code",) and d.rhs == ("city",) for d in approx
        )
        assert not any("code -> city" == s for s in exact)

    def test_afd_results_satisfy_epsilon(self):
        w = fd_workload(100, 10, error_rate=0.08, seed=9)
        eps = 0.15
        for dep in tane(w.relation, epsilon=eps).dependencies:
            assert dep.measure(w.relation) <= eps + 1e-12

    def test_stats_populated(self, r5):
        res = tane(r5)
        assert res.stats.candidates_checked > 0
        assert res.stats.partitions_built > 0
        assert "TANE" in res.summary()


class TestFastFD:
    def test_difference_sets_r5(self, r5):
        diffs = difference_sets(r5)
        assert frozenset({"rate"}) in diffs  # t3 vs t4 differ on... rate?
        # t3/t4 (El Paso rows) differ only on region.
        assert frozenset({"region"}) in diffs

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_brute_force(self, seed):
        r = random_relation(15, 4, domain_size=3, seed=seed)
        assert as_strs(fastfd(r).dependencies) == as_strs(
            brute_force_fds(r)
        )

    def test_agrees_with_tane(self):
        for seed in range(8):
            r = random_relation(18, 5, domain_size=3, seed=seed)
            assert as_strs(fastfd(r).dependencies) == as_strs(
                tane(r).dependencies
            )

    def test_constant_column_yields_singleton_fds(self):
        from repro.relation import Relation

        r = Relation.from_rows(
            ["a", "b"], [(1, "k"), (2, "k"), (3, "k")]
        )
        found = as_strs(fastfd(r).dependencies)
        assert "a -> b" in found
        # a is a key: b -> a cannot hold (b constant, a varies).
        assert "b -> a" not in found
