#!/usr/bin/env bash
# Crash-recovery smoke: start `repro serve --data-dir`, ingest batches,
# `kill -9` the live server, restart it on the same data directory, and
# assert the recovered /violations state matches the last acknowledged
# batch exactly — the shell-level version of the chaos tests in
# tests/test_durability.py, exercising the real CLI entry point.
# CI runs this in the crash-recovery job; locally:
#     bash scripts/crash_recovery_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

DATA=$(mktemp -d)
LOG=$(mktemp)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$DATA" "$LOG"
}
trap cleanup EXIT

start_server() {
    : >"$LOG"
    PYTHONPATH=src python -m repro.cli serve --port 0 \
        --data-dir "$DATA" --fsync batch 2>"$LOG" &
    SERVER_PID=$!
    PORT=""
    for _ in $(seq 1 100); do
        PORT=$(grep -o 'serving on 127\.0\.0\.1:[0-9]*' "$LOG" \
            | head -1 | grep -o '[0-9]*$' || true)
        [ -n "$PORT" ] && break
        sleep 0.1
    done
    if [ -z "$PORT" ]; then
        echo "server did not start; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    BASE="http://127.0.0.1:$PORT"
}

json_field() {  # json_field FIELD <<< payload
    python -c 'import json,sys; print(json.load(sys.stdin)[sys.argv[1]])' "$1"
}

start_server
echo "server up on $BASE (data dir $DATA)"

curl -fsS -X POST "$BASE/tenants" -H 'Content-Type: application/json' \
    -d '{"tenant":"crash","schema":["city","zip"]}' >/dev/null
curl -fsS -X PUT "$BASE/tenants/crash/rules" \
    -H 'Content-Type: application/json' \
    -d '{"rules":[{"kind":"FD","lhs":["zip"],"rhs":["city"]}]}' >/dev/null

# Eight acked batches; every batch adds a fresh city for zip 10115, so
# the FD violation count grows with each acknowledgement.
ACKED=""
for i in $(seq 1 8); do
    ACKED=$(curl -fsS -X POST "$BASE/tenants/crash/batches" \
        -d "{\"insert\":[[\"dup-$i\",\"10115\"],[\"ok-$i\",\"z$i\"]]}")
done
WANT_ROWS=$(json_field rows <<<"$ACKED")
WANT_VIOL=$(json_field total_violations <<<"$ACKED")
echo "last ack: rows=$WANT_ROWS violations=$WANT_VIOL"

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "killed server with SIGKILL"

start_server
echo "server restarted on $BASE"

STATE=$(curl -fsS "$BASE/tenants/crash/violations")
GOT_ROWS=$(json_field rows <<<"$STATE")
GOT_VIOL=$(json_field total_violations <<<"$STATE")
[ "$GOT_ROWS" = "$WANT_ROWS" ] \
    || { echo "recovered rows $GOT_ROWS != acked $WANT_ROWS" >&2; exit 1; }
[ "$GOT_VIOL" = "$WANT_VIOL" ] \
    || { echo "recovered violations $GOT_VIOL != acked $WANT_VIOL" >&2; exit 1; }

curl -fsS "$BASE/healthz" | grep -q '"tenants": 1' \
    || { echo "healthz did not report one recovered tenant" >&2; exit 1; }

# The recovered server must keep accepting writes.
AFTER=$(curl -fsS -X POST "$BASE/tenants/crash/batches" \
    -d '{"insert":[["dup-9","10115"],["ok-9","z9"]]}')
AFTER_ROWS=$(json_field rows <<<"$AFTER")
[ "$AFTER_ROWS" = "$((WANT_ROWS + 2))" ] \
    || { echo "post-recovery ingest broken: rows=$AFTER_ROWS" >&2; exit 1; }

echo "crash recovery smoke OK (rows=$GOT_ROWS violations=$GOT_VIOL)"
