#!/usr/bin/env bash
# End-to-end smoke of `repro serve`: ephemeral port, tenant + rules,
# three row batches, then assert the violation counters and /metrics.
# CI runs this against the installed package; locally:
#     bash scripts/server_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

LOG=$(mktemp)
PYTHONPATH=src python -m repro.cli serve --port 0 2>"$LOG" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

PORT=""
for _ in $(seq 1 100); do
    PORT=$(grep -o 'serving on 127\.0\.0\.1:[0-9]*' "$LOG" \
        | head -1 | grep -o '[0-9]*$' || true)
    [ -n "$PORT" ] && break
    sleep 0.1
done
if [ -z "$PORT" ]; then
    echo "server did not start; log:" >&2
    cat "$LOG" >&2
    exit 1
fi
BASE="http://127.0.0.1:$PORT"
echo "server up on $BASE"

curl -fsS "$BASE/healthz" >/dev/null

curl -fsS -X POST "$BASE/tenants" -H 'Content-Type: application/json' \
    -d '{"tenant":"smoke","schema":["city","zip",{"name":"price","type":"numerical"}]}' \
    >/dev/null

# A rule over an unknown attribute must be rejected with its DD code.
REJECT=$(curl -sS -o /dev/null -w '%{http_code}' -X PUT \
    "$BASE/tenants/smoke/rules" -H 'Content-Type: application/json' \
    -d '{"rules":[{"kind":"FD","lhs":["zip"],"rhs":["nope"]}]}')
[ "$REJECT" = "400" ] || { echo "expected 400, got $REJECT" >&2; exit 1; }
curl -sS -X PUT "$BASE/tenants/smoke/rules" \
    -H 'Content-Type: application/json' \
    -d '{"rules":[{"kind":"FD","lhs":["zip"],"rhs":["nope"]}]}' \
    | grep -q '"DD001"' || { echo "missing DD001 in lint body" >&2; exit 1; }

curl -fsS -X PUT "$BASE/tenants/smoke/rules" \
    -H 'Content-Type: application/json' \
    -d '{"rules":[{"kind":"FD","lhs":["zip"],"rhs":["city"]}]}' >/dev/null

# Three batches; the second introduces an FD violation on zip 10115.
curl -fsS -X POST "$BASE/tenants/smoke/batches" \
    -d '{"insert":[{"city":"Berlin","zip":"10115","price":9.5}]}' >/dev/null
curl -fsS -X POST "$BASE/tenants/smoke/batches" \
    -d '{"insert":[{"city":"Bonn","zip":"10115","price":4.0}]}' >/dev/null
curl -fsS -X POST "$BASE/tenants/smoke/batches" \
    -d '{"insert":[{"city":"Mainz","zip":"55116","price":7.25}]}' >/dev/null

curl -fsS "$BASE/tenants/smoke/violations" \
    | grep -q '"total_violations": 1' \
    || { echo "expected 1 cumulative violation" >&2; exit 1; }

METRICS=$(curl -fsS "$BASE/metrics")
for want in \
    'repro_batches_total{tenant="smoke"} 3' \
    'repro_rows_ingested_total{tenant="smoke"} 3' \
    'repro_violations_added_total{tenant="smoke"} 1' \
    'repro_violations{tenant="smoke"} 1' \
    'repro_requests_total{tenant="smoke",route="/tenants/{tenant}/batches",method="POST",status="200"} 3'
do
    echo "$METRICS" | grep -qF "$want" \
        || { echo "missing metric: $want" >&2; echo "$METRICS" >&2; exit 1; }
done

echo "server smoke OK"
