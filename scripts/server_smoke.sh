#!/usr/bin/env bash
# End-to-end smoke of `repro serve`: ephemeral port, tenant + rules,
# three row batches, then assert the violation counters and /metrics.
# CI runs this against the installed package; locally:
#     bash scripts/server_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

LOG=$(mktemp)
PYTHONPATH=src python -m repro.cli serve --port 0 2>"$LOG" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

PORT=""
for _ in $(seq 1 100); do
    PORT=$(grep -o 'serving on 127\.0\.0\.1:[0-9]*' "$LOG" \
        | head -1 | grep -o '[0-9]*$' || true)
    [ -n "$PORT" ] && break
    sleep 0.1
done
if [ -z "$PORT" ]; then
    echo "server did not start; log:" >&2
    cat "$LOG" >&2
    exit 1
fi
BASE="http://127.0.0.1:$PORT"
echo "server up on $BASE"

# Batch POSTs retry on 429/503 with exponential backoff + full jitter,
# honoring the server's Retry-After hint when it sheds load (overload
# protection returns 429 rather than queueing unboundedly; a polite
# client backs off instead of hammering).  Pattern documented in
# docs/server.md under "Backpressure and load shedding".
post_with_retry() {  # post_with_retry URL JSON_BODY
    local url=$1 data=$2 attempt status hdrs hint delay
    for attempt in 1 2 3 4 5 6; do
        hdrs=$(mktemp)
        status=$(curl -sS -o /dev/null -D "$hdrs" -w '%{http_code}' \
            -X POST "$url" -H 'Content-Type: application/json' \
            -d "$data" || echo 000)
        hint=$(awk 'tolower($1)=="retry-after:" {gsub("\r","",$2); print $2}' \
            "$hdrs")
        rm -f "$hdrs"
        case "$status" in
            2??) return 0 ;;
            429|503|000) ;;  # shed, unavailable, or connect failure
            *) echo "POST $url failed with HTTP $status" >&2; return 1 ;;
        esac
        # exponential base 0.2s * 2^(attempt-1), jittered to [50%,150%];
        # never undercut the server's own Retry-After.
        delay=$(awk -v a="$attempt" -v r="${hint:-0}" -v s="$RANDOM" \
            'BEGIN { d = 0.2 * 2^(a - 1) * (0.5 + s / 32767);
                     if (r + 0 > d) d = r; printf "%.2f", d }')
        echo "HTTP $status from $url; retry $attempt/6 in ${delay}s" >&2
        sleep "$delay"
    done
    echo "POST $url still shedding after 6 attempts" >&2
    return 1
}

curl -fsS "$BASE/healthz" >/dev/null

curl -fsS -X POST "$BASE/tenants" -H 'Content-Type: application/json' \
    -d '{"tenant":"smoke","schema":["city","zip",{"name":"price","type":"numerical"}]}' \
    >/dev/null

# A rule over an unknown attribute must be rejected with its DD code.
REJECT=$(curl -sS -o /dev/null -w '%{http_code}' -X PUT \
    "$BASE/tenants/smoke/rules" -H 'Content-Type: application/json' \
    -d '{"rules":[{"kind":"FD","lhs":["zip"],"rhs":["nope"]}]}')
[ "$REJECT" = "400" ] || { echo "expected 400, got $REJECT" >&2; exit 1; }
curl -sS -X PUT "$BASE/tenants/smoke/rules" \
    -H 'Content-Type: application/json' \
    -d '{"rules":[{"kind":"FD","lhs":["zip"],"rhs":["nope"]}]}' \
    | grep -q '"DD001"' || { echo "missing DD001 in lint body" >&2; exit 1; }

curl -fsS -X PUT "$BASE/tenants/smoke/rules" \
    -H 'Content-Type: application/json' \
    -d '{"rules":[{"kind":"FD","lhs":["zip"],"rhs":["city"]}]}' >/dev/null

# Three batches; the second introduces an FD violation on zip 10115.
post_with_retry "$BASE/tenants/smoke/batches" \
    '{"insert":[{"city":"Berlin","zip":"10115","price":9.5}]}'
post_with_retry "$BASE/tenants/smoke/batches" \
    '{"insert":[{"city":"Bonn","zip":"10115","price":4.0}]}'
post_with_retry "$BASE/tenants/smoke/batches" \
    '{"insert":[{"city":"Mainz","zip":"55116","price":7.25}]}'

curl -fsS "$BASE/tenants/smoke/violations" \
    | grep -q '"total_violations": 1' \
    || { echo "expected 1 cumulative violation" >&2; exit 1; }

METRICS=$(curl -fsS "$BASE/metrics")
for want in \
    'repro_batches_total{tenant="smoke"} 3' \
    'repro_rows_ingested_total{tenant="smoke"} 3' \
    'repro_violations_added_total{tenant="smoke"} 1' \
    'repro_violations{tenant="smoke"} 1' \
    'repro_requests_total{tenant="smoke",route="/tenants/{tenant}/batches",method="POST",status="200"} 3'
do
    echo "$METRICS" | grep -qF "$want" \
        || { echo "missing metric: $want" >&2; echo "$METRICS" >&2; exit 1; }
done

echo "server smoke OK"
