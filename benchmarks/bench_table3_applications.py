"""Table 3: the application matrix, with one live engine per row.

Regenerates the matrix from the registry and *executes* a working
instance of each application (detection, repair, optimization, CQA,
dedup, partition-style clustering, normalization, fairness), proving
every cell of Table 3 is backed by code.  Benchmarks the detection
engine (the most-cited row).
"""

from repro import DD, FD, MD, MVD, SFD
from repro.datasets import fd_workload, heterogeneous_workload, hotel_r5
from repro.quality import (
    Deduplicator,
    Detector,
    SelectivityEstimator,
    bcnf_decompose,
    consistent_answers,
    is_interventionally_fair,
    repair_fds,
    repair_for_fairness,
    select_query,
    verify_repair,
)
from repro.survey import APPLICATIONS, render_table3
from _harness import write_artifact


def test_table3_matrix_and_live_demos(benchmark):
    lines = [render_table3(), "", "live demonstration per application row:"]

    w = fd_workload(120, 12, error_rate=0.05, seed=21)
    h = heterogeneous_workload(20, 3, 0.4, 0.0, seed=21)
    r5 = hotel_r5()

    # violation detection (benchmarked)
    detector = Detector(w.true_fds)
    quality = benchmark(
        lambda: detector.score(w.relation, w.error_tuples)
    )
    assert quality.recall == 1.0
    lines.append(f"  violation detection: {quality}")

    # data repairing
    repaired, log = repair_fds(w.relation, w.true_fds)
    assert verify_repair(repaired, w.true_fds)
    lines.append(f"  data repairing: {log.cost()} edits, rules restored")

    # query optimization
    est = SelectivityEstimator(w.relation, [SFD("code", "city", 0.95)])
    err_indep = est.average_estimation_error(["code", "city"], False)
    err_sfd = est.average_estimation_error(["code", "city"], True)
    assert err_sfd < err_indep
    lines.append(
        f"  query optimization: estimation error {err_indep:.4f} -> "
        f"{err_sfd:.4f} with the SFD"
    )

    # consistent query answering
    certain = consistent_answers(
        r5, [FD("address", "region")], select_query(["region"])
    )
    assert ("Jackson",) in certain
    lines.append(f"  consistent query answering: certain regions {certain}")

    # data deduplication
    dedup = Deduplicator([MD({"address": 0}, "city")])
    mq = dedup.score(h.relation, h.duplicate_pairs)
    assert mq.f1 == 1.0
    lines.append(
        f"  data deduplication: precision {mq.precision:.2f}, "
        f"recall {mq.recall:.2f}"
    )

    # data partition (MD/DD clusters partition the data)
    clusters = dedup.clusters(h.relation)
    assert sum(len(c) for c in clusters) == len(h.relation)
    lines.append(f"  data partition: {len(clusters)} blocks via MD clusters")

    # schema normalization
    parts = bcnf_decompose(
        list(w.relation.schema.names()),
        w.true_fds + [FD("city", "state")],
    )
    lines.append(f"  schema normalization: BCNF parts {parts}")

    # model fairness
    from repro.relation import Relation

    biased = Relation.from_rows(
        ["adm", "prot", "outcome"],
        [("l", "a", "n"), ("l", "b", "y"), ("h", "a", "y")],
    )
    assert not is_interventionally_fair(biased, ["adm"], ["prot"])
    repaired_fair, dropped = repair_for_fairness(biased, ["adm"], ["prot"])
    assert is_interventionally_fair(repaired_fair, ["adm"], ["prot"])
    lines.append(
        f"  model fairness: MVD repair dropped {len(dropped)} tuple(s)"
    )

    assert len(APPLICATIONS) == 8
    write_artifact("table3_applications", "\n".join(lines))
