"""Perf-3: detection quality across the family tree, quantified.

The survey's qualitative claims (Sections 1.2 and 2.7), reproduced as
measured precision/recall on generated heterogeneous data with known
injected errors and format variants:

* strict FDs: perfect recall, poor precision (variants flagged);
* metric rules (MFD/DD): recall kept, precision recovered;
* conditional rules (CFD-style restriction): high precision, partial
  recall — "the coverage (recall), however, is limited";
* statistical rules (AFD acceptance): fewer rules fire, recall drops
  as epsilon grows.
"""

import pytest

from repro import AFD, DD, FD, MFD
from repro.datasets import heterogeneous_workload
from repro.quality import Detector
from _harness import format_rows, write_artifact


@pytest.fixture(scope="module")
def workload():
    return heterogeneous_workload(
        n_entities=40,
        records_per_entity=3,
        variant_rate=0.35,
        error_rate=0.08,
        seed=33,
    )


def _score(workload, rules):
    return Detector(rules).score(workload.relation, workload.error_tuples)


def test_fd_vs_metric_rules(benchmark, workload):
    fd = FD("address", "city")
    mfd = MFD("address", "city", 4)
    dd = DD({"address": 0}, {"city": 4})

    fd_q = _score(workload, [fd])
    mfd_q = _score(workload, [mfd])
    dd_q = benchmark(lambda: _score(workload, [dd]))

    # The paper's shape: metric rules keep recall, win on precision.
    assert fd_q.recall == 1.0
    assert mfd_q.recall == 1.0 and dd_q.recall == 1.0
    assert mfd_q.precision > fd_q.precision
    assert dd_q.precision > fd_q.precision

    rows = [
        ["FD address -> city", f"{fd_q.precision:.3f}",
         f"{fd_q.recall:.3f}", f"{fd_q.f1:.3f}"],
        ["MFD address ->^4 city", f"{mfd_q.precision:.3f}",
         f"{mfd_q.recall:.3f}", f"{mfd_q.f1:.3f}"],
        ["DD address(<=0) -> city(<=4)", f"{dd_q.precision:.3f}",
         f"{dd_q.recall:.3f}", f"{dd_q.f1:.3f}"],
    ]
    write_artifact(
        "perf3_detection_tradeoff",
        "Perf-3 — detection quality: strict vs metric rules\n"
        f"(workload: {len(workload.relation)} records, "
        f"{len(workload.error_tuples)} errors, "
        f"{len(workload.variant_tuples)} format variants)\n\n"
        + format_rows(["rule", "precision", "recall", "f1"], rows)
        + "\n\nshape reproduced: metric rules remove the variety false"
        "\npositives (Section 1.2) at unchanged recall.",
    )


def test_statistical_acceptance_lowers_detection(benchmark, workload):
    """Section 2.7: approximate rules improve discovery recall on dirty
    data but, used as acceptance thresholds, tolerate real errors."""
    fd = FD("address", "city")
    # As epsilon grows, the AFD *holds* despite the injected errors —
    # a monitor that alarms on AFD failure misses everything.
    strict = AFD("address", "city", 0.0)
    tolerant = AFD("address", "city", 0.9)
    benchmark(lambda: strict.measure(workload.relation))
    assert not strict.holds(workload.relation)
    assert tolerant.holds(workload.relation)

    rows = [
        ["g3 measured", f"{strict.measure(workload.relation):.3f}"],
        ["AFD eps=0.0 alarms?", str(not strict.holds(workload.relation))],
        ["AFD eps=0.9 alarms?", str(not tolerant.holds(workload.relation))],
    ]
    write_artifact(
        "perf3_statistical_tolerance",
        "Perf-3 — statistical tolerance (Section 2.7)\n\n"
        + format_rows(["quantity", "value"], rows),
    )


def test_conditional_rules_trade_recall_for_precision(benchmark, workload):
    """Section 2.7: conditional rules have high precision but bounded
    coverage — quantified via a rule restricted to one city."""
    from repro.core import CFD

    # Pick the city with the most injected errors to condition on.
    target_city = None
    best = -1
    for i in workload.error_tuples:
        city = workload.clean.value_at(i, "city")
        count = sum(
            1
            for j in workload.error_tuples
            if workload.clean.value_at(j, "city") == city
        )
        if count > best:
            best, target_city = count, city

    full = benchmark(
        lambda: Detector([FD("address", "city")]).score(
            workload.relation, workload.error_tuples
        )
    )
    # CFD conditioned on one address prefix — covers a subset only.
    conditioned_rules = [
        CFD(["address"], ["city"], {"address": addr})
        for addr in set(workload.relation.column("address"))
        if any(
            workload.relation.value_at(i, "address") == addr
            for i in workload.error_tuples
        )
    ][:3]
    part = Detector(conditioned_rules).score(
        workload.relation, workload.error_tuples
    )
    assert part.recall <= full.recall
    write_artifact(
        "perf3_conditional_coverage",
        "Perf-3 — conditional coverage (Section 2.7)\n\n"
        f"full FD recall:          {full.recall:.3f}\n"
        f"3-row CFD tableau recall: {part.recall:.3f}\n"
        "shape reproduced: conditional rules cover only the conditioned"
        "\nsubset, capping recall.",
    )
