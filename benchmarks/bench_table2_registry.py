"""Tables 2 and 4: the dependency index and the notation glossary.

Regenerates both tables from the machine-readable registry, checks the
registry's consistency with the implemented class hierarchy, and
benchmarks the rendering (trivially fast — included so that *every*
table has a harness target).
"""

from repro.survey import (
    NOTATIONS,
    consistency_problems,
    render_table2,
    render_table4,
)
from _harness import write_artifact


def test_table2_index(benchmark):
    text = benchmark(render_table2)
    assert "Conditional Functional Dependencies" in text
    assert consistency_problems() == []
    # Spot-check rows against the paper.
    assert NOTATIONS["MVD"].year == 1977
    assert NOTATIONS["CFD"].publications == 471
    assert NOTATIONS["SD"].definition_refs == ("[48]",)
    write_artifact("table2_index", text)


def test_table4_notations(benchmark):
    text = benchmark(render_table4)
    assert "pattern tuple" in text
    write_artifact("table4_notations", text)
