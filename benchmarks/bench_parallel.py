"""Sharded-checking speedup contract: workers=4 vs the serial executor.

One n=10⁵ pairwise workload per strategy family — group-partition
(MFD), sorted-sweep (OD) and the vectorized streamed blocks (MD under
``kernel_backend("vector")``) — each checked twice, ``workers=1`` and
``workers=4``, over shared-memory column slabs.

Two contracts, enforced at different strictness depending on the
machine this runs on (recorded in the artifact):

* **Order identity — always.**  The merged ``workers=4`` violation
  list must be byte-identical to the serial one, on any machine,
  including single-core CI runners where the fan-out is pure overhead.
* **Speedup — only where cores exist.**  With ≥4 usable cores the
  4-worker run must beat serial by ≥2.5×; with 2–3 cores by ≥1.3×; on
  a single core the floor is waived (four processes time-slicing one
  core cannot win) and only order identity is asserted.

Every measurement lands in ``BENCH_parallel.json`` at the repo root
(uploaded as a CI artifact) with the usable-core count and which
contract tier actually applied.
"""

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.core.heterogeneous.md import MD
from repro.core.heterogeneous.mfd import MFD
from repro.core.numerical.od import OD
from repro.plan import kernel_backend, pairwise_violations
from repro.plan.parallel import last_run, shutdown
from repro.relation import Attribute, AttributeType, Relation, Schema

from _harness import format_rows, write_artifact

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

N = 100_000
WORKERS = 4
#: Acceptance floor with >= 4 usable cores.
MIN_SPEEDUP = 2.5
#: Relaxed floor with 2-3 usable cores (sharding still must pay).
MIN_SPEEDUP_2CORE = 1.3


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def group_workload(n: int, seed: int = 17) -> Relation:
    """~50-row groups on C; B breaks the MFD tolerance sparsely."""
    rng = random.Random(seed)
    schema = Schema(
        [Attribute("B", AttributeType.NUMERICAL),
         Attribute("C", AttributeType.NUMERICAL)]
    )
    groups = max(200, n // 50)
    rows = []
    for i in range(n):
        c = rng.randrange(groups)
        rows.append((float(c) + (3.0 if i % 977 == 0 else rng.random()), c))
    return Relation.from_rows(schema, rows)


def order_workload(n: int) -> Relation:
    """50-row tie blocks on A0; sparse dips violate the order."""
    schema = Schema(
        [Attribute(f"A{c}", AttributeType.NUMERICAL) for c in range(2)]
    )
    rows = []
    for i in range(n):
        a = float(i // 50)
        rows.append((a, a if i % 701 else a - 3.0))
    return Relation.from_rows(schema, rows)


def metric_workload(n: int, seed: int = 3) -> Relation:
    """Quantized A0, A2 = A0 // 64: bounded metric-blocking buckets."""
    rng = random.Random(seed)
    distinct = max(200, n // 50)
    schema = Schema(
        [Attribute("A0", AttributeType.NUMERICAL),
         Attribute("A2", AttributeType.NUMERICAL)]
    )
    rows = []
    for __ in range(n):
        a = rng.randrange(distinct)
        rows.append((a, a // 64))
    return Relation.from_rows(schema, rows)


CASES = {
    "MFD/group": (
        lambda: MFD(["C"], ["B"], 1.0), group_workload, "scalar",
    ),
    "OD/sweep": (
        lambda: OD([("A0", "<=")], [("A1", "<=")]), order_workload, "scalar",
    ),
    "MD/vec-blocks": (
        lambda: MD({"A0": 1.0}, ["A2"]), metric_workload, "vector",
    ),
}


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


@pytest.fixture(scope="module")
def measurements():
    cores = usable_cores()
    results = {}
    for name, (make, workload, backend) in CASES.items():
        relation = workload(N)
        dep = make()
        with kernel_backend(backend):
            t1, serial = _timed(lambda: pairwise_violations(dep, relation))
            t4, merged = _timed(
                lambda: pairwise_violations(dep, relation, workers=WORKERS)
            )
        run = last_run()
        assert run is not None and run["workers"] == WORKERS, (
            f"{name}: the {WORKERS}-worker run fell back to serial"
        )
        assert [str(v) for v in merged] == [str(v) for v in serial], (
            f"{name}: workers={WORKERS} diverged from the serial order"
        )
        results[name] = {
            "n": N,
            "backend": backend,
            "strategy": run["strategy"],
            "shared_memory": run["shared"],
            "serial_ms": round(t1 * 1e3, 2),
            "workers4_ms": round(t4 * 1e3, 2),
            "speedup": round(t1 / t4, 2),
            "violations": len(serial),
        }
    shutdown()
    if cores >= WORKERS:
        tier = f"enforced (>= {MIN_SPEEDUP}x)"
    elif cores >= 2:
        tier = f"relaxed (>= {MIN_SPEEDUP_2CORE}x at {cores} cores)"
    else:
        tier = "waived (single core: order identity only)"
    payload = {
        "workload": f"n={N} pairwise checks, workers=1 vs workers={WORKERS}",
        "usable_cores": cores,
        "speedup_contract": tier,
        "results": results,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    rows = [
        [name, r["strategy"], r["serial_ms"], r["workers4_ms"],
         f"{r['speedup']}x", r["violations"]]
        for name, r in results.items()
    ]
    write_artifact(
        "parallel_checking",
        f"usable cores: {cores}   contract: {tier}\n\n"
        + format_rows(
            ["case", "strategy", "serial ms", "4-worker ms", "speedup",
             "violations"],
            rows,
        ),
    )
    return payload


def test_order_identity_and_fanout(measurements):
    """Parity asserted during measurement; every case truly fanned out."""
    for name, r in measurements["results"].items():
        assert r["shared_memory"], f"{name} did not use shared-memory slabs"


def test_speedup_contract(measurements):
    cores = measurements["usable_cores"]
    if cores < 2:
        pytest.skip("single usable core: speedup floor waived")
    floor = MIN_SPEEDUP if cores >= WORKERS else MIN_SPEEDUP_2CORE
    for name, r in measurements["results"].items():
        assert r["speedup"] >= floor, (
            f"{name}: {r['speedup']}x below the {floor}x floor "
            f"({cores} cores)"
        )
