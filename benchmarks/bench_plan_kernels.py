"""Plan-kernel speedup contract: pruned evaluation vs the legacy scan.

The compiled plan kernels (``repro.plan``) prune the quadratic pair
space per notation — metric blocking for DD/MD, a sorted sweep for OD.
This benchmark times ``violations()`` under ``plan_mode("plan")``
against the reference scan under ``plan_mode("naive")`` on the same
relations at n ∈ {500, 2000}, asserts bit-identical violation lists,
enforces the **≥3× floor at n=2000**, and writes the measurements to
``BENCH_plan.json`` at the repo root (uploaded as a CI artifact).

Workloads are correlated (RHS mostly follows LHS) so the timing
reflects candidate-space pruning rather than violation construction,
which both paths share.
"""

import json
import random
import time
from pathlib import Path

import pytest

from repro.core.heterogeneous.dd import DD
from repro.core.heterogeneous.md import MD
from repro.core.numerical.od import OD
from repro.plan import plan_mode
from repro.relation import Attribute, AttributeType, Relation, Schema

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_plan.json"

#: Acceptance floor at n=2000: pruned kernels must beat the scan by this.
MIN_SPEEDUP = 3.0

SIZES = (500, 2000)


def metric_workload(n: int, seed: int = 3) -> Relation:
    """200-value quantized A0 with A1 ≈ 2·A0 and A2 = A0 // 4.

    Quantization keeps the metric-blocking bucket count small against
    n; the correlations keep DD/MD violations sparse.
    """
    rng = random.Random(seed)
    schema = Schema(
        [Attribute(f"A{c}", AttributeType.NUMERICAL) for c in range(3)]
    )
    rows = []
    for __ in range(n):
        a = rng.randrange(200)
        rows.append((a, 2 * a + rng.randrange(4), a // 4))
    return Relation.from_rows(schema, rows)


def order_workload(n: int) -> Relation:
    """Mostly sorted A0/A1 with sparse inversions every 401 rows."""
    schema = Schema(
        [Attribute(f"A{c}", AttributeType.NUMERICAL) for c in range(2)]
    )
    rows = [(i, i if i % 401 else i - 300) for i in range(n)]
    return Relation.from_rows(schema, rows)


CASES = {
    "DD": (
        lambda: DD({"A0": ("<=", 1.0)}, {"A1": ("<=", 6.0)}),
        metric_workload,
        "metric-blocking",
    ),
    "MD": (
        lambda: MD({"A0": 1.0}, ["A2"]),
        metric_workload,
        "metric-blocking",
    ),
    "OD": (
        lambda: OD([("A0", "<=")], [("A1", "<=")]),
        order_workload,
        "sorted-sweep",
    ),
}


def _snapshot(dep, relation):
    return [(v.tuples, v.reason) for v in dep.violations(relation)]


def _time_once(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


@pytest.fixture(scope="module")
def speedups():
    """Time every case once, check parity, persist the trajectory."""
    results = {}
    for kind, (make, workload, strategy) in CASES.items():
        for n in SIZES:
            relation = workload(n)
            dep = make()
            with plan_mode("plan"):
                t_plan, got = _time_once(lambda: _snapshot(dep, relation))
            with plan_mode("naive"):
                t_naive, expected = _time_once(
                    lambda: _snapshot(dep, relation)
                )
            assert got == expected, f"plan/naive divergence for {kind}"
            results[f"{kind}@{n}"] = {
                "kind": kind,
                "n": n,
                "strategy": strategy,
                "naive_ms": round(t_naive * 1e3, 2),
                "plan_ms": round(t_plan * 1e3, 2),
                "speedup": round(t_naive / t_plan, 1),
                "violations": len(got),
            }
    BENCH_JSON.write_text(
        json.dumps(
            {
                "workload": "correlated metric / mostly-sorted order",
                "sizes": list(SIZES),
                "min_speedup_at_2000": MIN_SPEEDUP,
                "results": results,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    return results


class TestPlanKernelSpeedup:
    """The ≥3× contract of the pruned kernels at n=2000."""

    def test_dd_metric_blocking_speedup(self, speedups):
        assert speedups["DD@2000"]["speedup"] >= MIN_SPEEDUP

    def test_md_metric_blocking_speedup(self, speedups):
        assert speedups["MD@2000"]["speedup"] >= MIN_SPEEDUP

    def test_od_sorted_sweep_speedup(self, speedups):
        assert speedups["OD@2000"]["speedup"] >= MIN_SPEEDUP

    def test_small_n_no_regression(self, speedups):
        """At n=500 the kernels must at least not lose to the scan."""
        for key in ("DD@500", "MD@500", "OD@500"):
            assert speedups[key]["speedup"] >= 1.0, key

    def test_trajectory_file_written(self, speedups):
        payload = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        assert payload["min_speedup_at_2000"] == MIN_SPEEDUP
        assert set(payload["results"]) == {
            f"{kind}@{n}" for kind in CASES for n in SIZES
        }
