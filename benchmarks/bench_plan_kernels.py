"""Plan-kernel speedup contract: pruned + vectorized vs the scans.

Two ladders, one file:

* **n ∈ {500, 2000}** — the original contract: ``plan_mode("plan")``
  (whatever backend ``auto`` picks) against the reference quadratic
  scan of ``plan_mode("naive")``, bit-identical violations, **≥3× at
  n=2000** and no regression at n=500.
* **n ∈ {10⁴}** (plus **10⁵** when ``REPRO_BENCH_FULL=1``) — the
  vectorized-backend contract: the columnar kernels of
  ``repro.plan.kernels_vec`` against the scalar plan kernels on the
  same relations, **≥10× at n=10⁴** for DD/MD/OD.  The naive scan is
  not timed here (50M+ Python pair probes); parity at these sizes is
  scalar-plan vs vectorized-plan, with the naive oracle covered by the
  hypothesis suites (``test_plan_parity``, ``test_vector_parity``).

Every measurement lands in ``BENCH_plan.json`` at the repo root
(uploaded as a CI artifact) together with the backend that actually
ran and the per-strategy candidate/verified counter deltas.

Workloads are correlated (RHS mostly follows LHS) so the timing
reflects candidate-space pruning rather than violation construction,
which both paths share; the order workload carries 50-row tie blocks —
the duplicate-key regime where the scalar sweep must brute-force ties
pair by pair while the vectorized backend masks them wholesale.
"""

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.core.heterogeneous.dd import DD
from repro.core.heterogeneous.md import MD
from repro.core.numerical.od import OD
from repro.plan import COUNTERS, kernel_backend, plan_mode
from repro.relation import Attribute, AttributeType, Relation, Schema

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_plan.json"

#: Acceptance floor at n=2000: pruned kernels must beat the scan by this.
MIN_SPEEDUP = 3.0
#: Acceptance floor at n=10⁴: vectorized must beat scalar plan by this.
MIN_VEC_SPEEDUP = 10.0

SIZES = (500, 2000)
LARGE_SIZES = (
    (10_000, 100_000) if os.environ.get("REPRO_BENCH_FULL") else (10_000,)
)


def metric_workload(n: int, seed: int = 3) -> Relation:
    """Quantized A0 with A1 ≈ 2·A0 and A2 = A0 // 64.

    Quantization keeps the metric-blocking bucket count small against
    n (the distinct count scales as n/50 past 10⁴ so per-bucket blocks
    stay bounded); the correlations keep DD/MD violations sparse —
    A0-similar pairs disagree on A2 only across the rare //64
    boundaries, so the timing measures candidate evaluation, not
    violation-object construction (which both backends share).
    """
    rng = random.Random(seed)
    distinct = max(200, n // 50)
    schema = Schema(
        [Attribute(f"A{c}", AttributeType.NUMERICAL) for c in range(3)]
    )
    rows = []
    for __ in range(n):
        a = rng.randrange(distinct)
        rows.append((a, 2 * a + rng.randrange(4), a // 64))
    return Relation.from_rows(schema, rows)


def order_workload(n: int) -> Relation:
    """50-row tie blocks on A0, A1 flat per block with sparse dips.

    Equal ordering keys make every within-block pair a sweep candidate
    (the duplicate-timestamp regime); the rare dips every 701 rows are
    the only actual order violations.
    """
    schema = Schema(
        [Attribute(f"A{c}", AttributeType.NUMERICAL) for c in range(2)]
    )
    rows = []
    for i in range(n):
        a = float(i // 50)
        rows.append((a, a if i % 701 else a - 3.0))
    return Relation.from_rows(schema, rows)


CASES = {
    "DD": (
        lambda: DD({"A0": ("<=", 1.0)}, {"A1": ("<=", 6.0)}),
        metric_workload,
        "metric-blocking",
    ),
    "MD": (
        lambda: MD({"A0": 1.0}, ["A2"]),
        metric_workload,
        "metric-blocking",
    ),
    "OD": (
        lambda: OD([("A0", "<=")], [("A1", "<=")]),
        order_workload,
        "sorted-sweep",
    ),
}


def _snapshot(dep, relation):
    return [(v.tuples, v.reason) for v in dep.violations(relation)]


def _timed_counted(fn):
    """(seconds, result, counter deltas) for one measured run."""
    COUNTERS.reset()
    start = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - start
    counters = {
        "backends": COUNTERS.backends(),
        "by_strategy": dict(COUNTERS.by_strategy),
        "candidates_by_strategy": dict(COUNTERS.candidates_by_strategy),
        "verified_by_strategy": dict(COUNTERS.verified_by_strategy),
        "chunks": COUNTERS.chunks,
    }
    return elapsed, out, counters


def _dominant_backend(counters) -> str:
    backends = counters["backends"]
    if not backends:
        return "none"
    return max(backends, key=lambda k: backends[k])


@pytest.fixture(scope="module")
def speedups():
    """Time every case once, check parity, persist the trajectory."""
    results = {}
    for kind, (make, workload, strategy) in CASES.items():
        for n in SIZES:
            relation = workload(n)
            dep = make()
            with plan_mode("plan"):
                t_plan, got, counters = _timed_counted(
                    lambda: _snapshot(dep, relation)
                )
            with plan_mode("naive"):
                t_naive, expected, __ = _timed_counted(
                    lambda: _snapshot(dep, relation)
                )
            assert got == expected, f"plan/naive divergence for {kind}"
            results[f"{kind}@{n}"] = {
                "kind": kind,
                "n": n,
                "strategy": strategy,
                "backend": _dominant_backend(counters),
                "baseline": "naive-scan",
                "naive_ms": round(t_naive * 1e3, 2),
                "plan_ms": round(t_plan * 1e3, 2),
                "speedup": round(t_naive / t_plan, 1),
                "violations": len(got),
                "counters": counters,
            }
        for n in LARGE_SIZES:
            relation = workload(n)
            dep = make()
            with kernel_backend("scalar"), plan_mode("plan"):
                t_scalar, expected, __ = _timed_counted(
                    lambda: _snapshot(dep, relation)
                )
            dep = make()
            with kernel_backend("vector"), plan_mode("plan"):
                t_vec, got, counters = _timed_counted(
                    lambda: _snapshot(dep, relation)
                )
            assert got == expected, f"scalar/vector divergence for {kind}"
            assert counters["backends"].get("vectorized"), (
                f"{kind}@{n} did not run vectorized"
            )
            results[f"{kind}@{n}"] = {
                "kind": kind,
                "n": n,
                "strategy": strategy,
                "backend": _dominant_backend(counters),
                "baseline": "scalar-plan",
                "scalar_plan_ms": round(t_scalar * 1e3, 2),
                "vector_plan_ms": round(t_vec * 1e3, 2),
                "speedup": round(t_scalar / t_vec, 1),
                "violations": len(got),
                "counters": counters,
            }
    BENCH_JSON.write_text(
        json.dumps(
            {
                "workload": (
                    "correlated metric / tie-blocked order"
                ),
                "sizes": list(SIZES) + list(LARGE_SIZES),
                "min_speedup_at_2000": MIN_SPEEDUP,
                "min_vec_speedup_at_10000": MIN_VEC_SPEEDUP,
                "results": results,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    return results


class TestPlanKernelSpeedup:
    """The ≥3× contract of the pruned kernels at n=2000."""

    def test_dd_metric_blocking_speedup(self, speedups):
        assert speedups["DD@2000"]["speedup"] >= MIN_SPEEDUP

    def test_md_metric_blocking_speedup(self, speedups):
        assert speedups["MD@2000"]["speedup"] >= MIN_SPEEDUP

    def test_od_sorted_sweep_speedup(self, speedups):
        assert speedups["OD@2000"]["speedup"] >= MIN_SPEEDUP

    def test_small_n_no_regression(self, speedups):
        """At n=500 the kernels must at least not lose to the scan."""
        for key in ("DD@500", "MD@500", "OD@500"):
            assert speedups[key]["speedup"] >= 1.0, key


class TestVectorBackendSpeedup:
    """The ≥10× contract of the columnar backend at n=10⁴."""

    def test_dd_vectorized_speedup(self, speedups):
        assert speedups["DD@10000"]["speedup"] >= MIN_VEC_SPEEDUP

    def test_md_vectorized_speedup(self, speedups):
        assert speedups["MD@10000"]["speedup"] >= MIN_VEC_SPEEDUP

    def test_od_vectorized_speedup(self, speedups):
        assert speedups["OD@10000"]["speedup"] >= MIN_VEC_SPEEDUP

    def test_backend_recorded(self, speedups):
        for n in LARGE_SIZES:
            for kind in CASES:
                entry = speedups[f"{kind}@{n}"]
                assert entry["backend"] == "vectorized", entry
                assert entry["counters"]["chunks"] > 0, entry

    def test_trajectory_file_written(self, speedups):
        payload = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        assert payload["min_speedup_at_2000"] == MIN_SPEEDUP
        assert payload["min_vec_speedup_at_10000"] == MIN_VEC_SPEEDUP
        expected = {f"{kind}@{n}" for kind in CASES for n in SIZES}
        expected |= {f"{kind}@{n}" for kind in CASES for n in LARGE_SIZES}
        assert set(payload["results"]) == expected
        for entry in payload["results"].values():
            assert "backend" in entry
            assert "candidates_by_strategy" in entry["counters"]
            assert "verified_by_strategy" in entry["counters"]
