"""Figs. 1B and 2: publication counts and the proposal timeline.

Regenerates both figures from the machine-readable Table 2 registry
and asserts the paper's narrative claims about them.
"""

from repro.survey import (
    NOTATIONS,
    fig1b_publications,
    fig2_timeline,
    render_fig1b,
    render_fig2,
    timeline_milestones,
)
from _harness import write_artifact


def test_fig1b_publications(benchmark):
    series = benchmark(fig1b_publications)

    counts = dict(series)
    # Fig. 1B narrative (Section 1.4.1): CFDs attract more attention
    # than the other categorical *extensions*; recent heterogeneous
    # proposals (MDs, DDs) out-cite the newer numerical ones (SDs).
    assert counts["CFD"] > max(
        counts[n] for n in ("SFD", "PFD", "AFD", "eCFD")
    )
    assert counts["MD"] > counts["CDD"]
    assert counts["SD"] > counts["OD"]

    write_artifact("fig1b_publications", render_fig1b())


def test_fig2_timeline(benchmark):
    timeline = benchmark(fig2_timeline)

    by_year = dict(timeline)
    # Milestones the paper calls out.
    assert "AFD" in by_year[1995]
    assert "CFD" in by_year[2007]
    assert "CDD" in by_year[2015]
    assert "CMD" in by_year[2017]
    assert "AMVD" in by_year[2020]

    milestones = timeline_milestones()
    lines = [render_fig2(), "", "milestones (Section 1.4.1):"]
    lines.extend(f"  {name}: {year}" for name, year in milestones.items())
    write_artifact("fig2_timeline", "\n".join(lines))
