"""Incremental validation benchmark: delta maintenance vs recompute.

The ISSUE-7 acceptance workload: a 5k-row FD/AFD/CFD relation mutated
by 50 batches.  The incremental path advances an
:class:`~repro.incremental.IncrementalDetector` per batch; the baseline
rebuilds the relation from scratch (fresh caches) and runs the batch
:class:`~repro.quality.detection.Detector` cold.  The contract is a
≥5× end-to-end speedup, and the measurements land in
``BENCH_incremental.json`` at the repo root.

A second, smaller workload covers the pairwise re-probe strategies
(OD + DD over a numerical series) — reported in the JSON but held to
the same floor only on the group-keyed workload, since pair-quadratic
baselines make the incremental win there far larger and noisier.
"""

import json
import random
import time
from pathlib import Path

import pytest

from repro.core.categorical.afd import AFD
from repro.core.categorical.cfd import CFD
from repro.core.categorical.fd import FD
from repro.core.heterogeneous.dd import DD
from repro.core.numerical.od import OD
from repro.datasets import fd_workload, ordered_workload
from repro.incremental import Delta, IncrementalDetector
from repro.quality.detection import Detector
from repro.relation import Relation

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_incremental.json"

#: Acceptance floor: incremental must beat per-batch recompute by ≥5×
#: on the 5k-row / 50-batch workload.
MIN_SPEEDUP = 5.0

N_ROWS = 5000
N_BATCHES = 50


def _mutation_batches(relation, n_batches, seed):
    """A reproducible mostly-insert/update stream with occasional deletes."""
    rng = random.Random(seed)
    schema = relation.schema
    names = schema.names()
    cities = sorted({relation.value_at(i, "city") for i in range(200)})
    size = len(relation)
    batches = []
    for b in range(n_batches):
        inserts = []
        updates = []
        deletes = []
        for __ in range(rng.randint(2, 6)):
            src = rng.randrange(size)
            row = list(relation.record_at(src % len(relation)).values())
            if rng.random() < 0.1:
                row[names.index("city")] = rng.choice(cities)
            inserts.append(tuple(row))
        for __ in range(rng.randint(1, 4)):
            updates.append(
                {
                    "row": rng.randrange(size),
                    "set": {"city": rng.choice(cities)},
                }
            )
        if b % 10 == 7:
            deletes = sorted(rng.sample(range(size), 3))
        size += len(inserts) - len(deletes)
        batches.append(
            Delta.from_json(
                {"insert": inserts, "update": updates, "delete": deletes},
                schema,
            )
        )
    return batches


def _run_incremental(rules, relation, batches):
    detector = IncrementalDetector(rules, relation)
    start = time.perf_counter()
    for delta in batches:
        detector.apply(delta)
    elapsed = time.perf_counter() - start
    return elapsed, detector


def _run_recompute(rules, relation, batches):
    """Per-batch cold recompute: rebuild the relation, rerun detection."""
    detector = Detector(rules)
    current = relation
    start = time.perf_counter()
    report = None
    for delta in batches:
        mutated = current.apply_delta(delta)
        # Fresh relation = fresh caches/codebooks, as a cold consumer
        # re-reading the table would see.
        current = Relation.from_rows(mutated.schema, mutated.rows())
        report = detector.detect(current)
    elapsed = time.perf_counter() - start
    return elapsed, current, report


@pytest.fixture(scope="module")
def measurements():
    results = {}

    # -- group-keyed workload (FD/AFD/CFD over partitions) -------------
    relation = fd_workload(N_ROWS, 200, error_rate=0.02, seed=11).relation
    rules = [
        FD("code", "city"),
        FD("code", "state"),
        AFD("code", "city", 0.05),
        CFD(["code"], ["city"], {}),
    ]
    batches = _mutation_batches(relation, N_BATCHES, seed=13)

    t_inc, detector = _run_incremental(rules, relation, batches)
    t_full, final, report = _run_recompute(rules, relation, batches)

    # Parity sanity: the incremental state equals the last cold report.
    assert {(v.dependency, v.tuples) for v in detector.violations()} == {
        (v.dependency, v.tuples) for v in report.violations
    }
    assert len(detector.relation) == len(final)

    results["group_keyed"] = {
        "rules": [r.label() for r in rules],
        "rows": N_ROWS,
        "batches": N_BATCHES,
        "incremental_s": round(t_inc, 4),
        "recompute_s": round(t_full, 4),
        "speedup": round(t_full / t_inc, 1),
    }

    # -- pairwise workload (OD + DD re-probe) --------------------------
    series = ordered_workload(300, glitch_rate=0.03, seed=17).relation
    pair_rules = [
        OD(["t"], ["value"]),
        DD({"t": (0.0, 1.0)}, {"value": (0.0, 50.0)}),
    ]
    pair_batches = []
    rng = random.Random(19)
    size = len(series)
    for __ in range(8):
        pair_batches.append(
            Delta.from_json(
                {
                    "insert": [
                        {"t": size + k, "value": float(15 * (size + k))}
                        for k in range(3)
                    ],
                    "update": [
                        {
                            "row": rng.randrange(size),
                            "set": {"value": float(rng.randrange(5000))},
                        }
                    ],
                },
                series.schema,
            )
        )
        size += 3

    t_inc_p, det_p = _run_incremental(pair_rules, series, pair_batches)
    t_full_p, __, report_p = _run_recompute(pair_rules, series, pair_batches)
    assert {(v.dependency, v.tuples) for v in det_p.violations()} == {
        (v.dependency, v.tuples) for v in report_p.violations
    }
    results["pairwise"] = {
        "rules": [r.label() for r in pair_rules],
        "rows": 300,
        "batches": 8,
        "incremental_s": round(t_inc_p, 4),
        "recompute_s": round(t_full_p, 4),
        "speedup": round(t_full_p / t_inc_p, 1),
    }

    BENCH_JSON.write_text(
        json.dumps(
            {
                "workload": f"fd_workload({N_ROWS}, 200) × {N_BATCHES} "
                "batches; ordered_workload(300) × 8 batches",
                "min_speedup": MIN_SPEEDUP,
                "results": results,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    return results


class TestIncrementalSpeedup:
    """The ≥5× contract of the incremental validation engine."""

    def test_group_keyed_speedup(self, measurements):
        assert measurements["group_keyed"]["speedup"] >= MIN_SPEEDUP

    def test_pairwise_faster_than_recompute(self, measurements):
        assert measurements["pairwise"]["speedup"] >= 1.0

    def test_trajectory_file_written(self, measurements):
        payload = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        assert payload["min_speedup"] == MIN_SPEEDUP
        assert set(payload["results"]) >= {"group_keyed", "pairwise"}
