"""Robustness: the governance layer must be (nearly) free and deadlines
must actually bound wall-clock.

Two claims pinned here:

* **<5% overhead with no budget** — :func:`repro.runtime.checkpoint`
  is a single context-variable read when ungoverned, so a governed
  entry point called without a budget runs at the speed of the old
  ungoverned code (best-of-several to absorb scheduler jitter);
* **bounded overrun under a deadline** — a 50 ms deadline on workloads
  whose full run takes far longer returns an honest partial result
  within a small multiple of the deadline (the overrun is the cost of
  one checkpoint interval plus the capped sampled-verification
  salvage).
"""

import time

import pytest

from repro.datasets import random_relation
from repro.discovery import (
    discover_dcs,
    discover_dds,
    discover_mvds_topdown,
    fastfd,
    tane,
)
from repro.runtime import Budget, checkpoint, governed
from _harness import format_rows, write_artifact

DEADLINE_S = 0.050
#: Generous CI-jitter allowance; locally the overrun is ~1.2x.
MAX_OVERRUN_FACTOR = 10.0


def _best_of(fn, n=5):
    best = float("inf")
    for __ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def hard_workload():
    return random_relation(60, 7, domain_size=4, seed=21)


GOVERNED_ENTRY_POINTS = [
    ("tane", lambda r, b: tane(r, budget=b)),
    ("fastfd", lambda r, b: fastfd(r, budget=b)),
    ("dc", lambda r, b: discover_dcs(r, budget=b)),
    ("dd", lambda r, b: discover_dds(r, max_lhs_attrs=1, budget=b)),
    ("mvd", lambda r, b: discover_mvds_topdown(r, budget=b)),
]


def test_checkpoint_noop_cost(benchmark):
    """The ungoverned checkpoint is one ContextVar read."""

    def sweep():
        for __ in range(10_000):
            checkpoint(candidates=1)

    benchmark(sweep)


def test_governed_overhead_under_5_percent():
    """The no-budget governed path adds <5% over pre-governance code.

    With no budget a checkpoint is exactly one ContextVar read, so the
    total governance cost of a run is ``(number of checkpoints hit) x
    (per-call no-op cost)`` — both directly measurable, which gives a
    jitter-free bound instead of differencing two noisy wall-clock
    timings of a single run.
    """
    r = hard_workload()
    tane(r)  # warm the partition cache so all runs share it

    bare = _best_of(lambda: tane(r))

    # Count the checkpoints a full run actually executes: under an
    # unlimited budget every checkpoint ticks a counter.
    counter = Budget()
    with governed(counter):
        tane(r)
    n_checkpoints = counter.candidates + counter.pairs

    n = 100_000
    t0 = time.perf_counter()
    for __ in range(n):
        checkpoint(candidates=1)
    per_call = (time.perf_counter() - t0) / n

    overhead = (n_checkpoints * per_call) / bare if bare > 0 else 0.0
    assert overhead < 0.05, (
        f"governance overhead {overhead:.1%} "
        f"({n_checkpoints} checkpoints x {per_call * 1e9:.0f} ns "
        f"on a {bare * 1000:.1f} ms run)"
    )

    # Informational: the *live* (unlimited-budget) path, which also
    # pays counter arithmetic per checkpoint.
    with governed(Budget()):
        live = _best_of(lambda: tane(r))

    write_artifact(
        "robustness_governance_overhead",
        "Robustness — governance overhead on tane (hard workload)\n\n"
        + format_rows(
            ["quantity", "value"],
            [
                ["no budget, best-of-N", f"{bare * 1000:.2f} ms"],
                ["unlimited budget, best-of-N", f"{live * 1000:.2f} ms"],
                ["checkpoints per run", str(n_checkpoints)],
                ["no-op checkpoint cost", f"{per_call * 1e9:.0f} ns"],
                ["no-budget overhead", f"{overhead:.2%}"],
            ],
        ),
    )


def test_no_budget_results_bit_identical():
    r = hard_workload()
    bare = [str(d) for d in tane(r).dependencies]
    with governed(Budget()):
        live = [str(d) for d in tane(r).dependencies]
    assert bare == live


@pytest.mark.parametrize("name,run", GOVERNED_ENTRY_POINTS)
def test_deadline_bounds_wallclock(name, run):
    """50 ms deadline => partial result within a small multiple."""
    r = hard_workload()
    t0 = time.perf_counter()
    result = run(r, Budget(deadline_s=DEADLINE_S))
    elapsed = time.perf_counter() - t0
    # The workload is sized so the full run blows a 50 ms budget; if a
    # machine is fast enough to finish inside it, the completeness
    # claim is trivially satisfied and the bound is vacuous.
    if result.stats.complete:
        return
    assert result.stats.exhausted == "deadline"
    assert elapsed <= DEADLINE_S * MAX_OVERRUN_FACTOR, (
        f"{name}: {elapsed * 1000:.0f} ms against a "
        f"{DEADLINE_S * 1000:.0f} ms deadline"
    )


def test_deadline_overrun_artifact():
    r = hard_workload()
    rows = []
    for name, run in GOVERNED_ENTRY_POINTS:
        t0 = time.perf_counter()
        result = run(r, Budget(deadline_s=DEADLINE_S))
        elapsed = time.perf_counter() - t0
        rows.append(
            [
                name,
                "partial" if not result.stats.complete else "complete",
                f"{elapsed * 1000:.1f}",
                f"{elapsed / DEADLINE_S:.2f}x",
                str(len(result.dependencies)),
            ]
        )
    write_artifact(
        "robustness_deadline_overrun",
        f"Robustness — {DEADLINE_S * 1000:.0f} ms deadline on the hard "
        "workload\n\n"
        + format_rows(
            ["engine", "result", "elapsed ms", "overrun", "deps"], rows
        ),
    )
