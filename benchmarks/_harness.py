"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper:
it *asserts* the paper's qualitative claims (who wins, what holds),
writes the rendered artifact to ``benchmarks/output/<name>.txt``, and
benchmarks the computational kernel with pytest-benchmark.

Run everything with::

    pytest benchmarks/ --benchmark-only

and inspect ``benchmarks/output/`` for the regenerated tables/figures.
"""

from __future__ import annotations

from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"


def write_artifact(name: str, text: str) -> Path:
    """Persist a regenerated table/figure under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def format_rows(header: list[str], rows: list[list[str]]) -> str:
    """Fixed-width table rendering for artifact files."""
    table = [header] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[c]) for r in table) for c in range(len(header))]
    lines = []
    for k, row in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row))
        )
        if k == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
