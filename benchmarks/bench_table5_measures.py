"""Table 5 / Section 2: every categorical measure on r5.

Regenerates all Section 2 worked numbers (SFD strength, PFD
probability, AFD g3, NUD fanout, CFD/eCFD/MVD satisfaction) and
benchmarks the measure computations.
"""

import pytest

from repro import AFD, CFD, ECFD, MVD, NUD, PFD, SFD, hotel_r5
from _harness import format_rows, write_artifact


@pytest.fixture(scope="module")
def r5():
    return hotel_r5()


def test_table5_statistical_measures(benchmark, r5):
    def compute():
        return {
            "S(address -> region)": SFD("address", "region").measure(r5),
            "S(name -> address)": SFD("name", "address").measure(r5),
            "P(address -> region)": PFD("address", "region").measure(r5),
            "P(name -> address)": PFD("name", "address").measure(r5),
            "g3(address -> region)": AFD("address", "region").measure(r5),
            "g3(name -> address)": AFD("name", "address").measure(r5),
        }

    measures = benchmark(compute)

    expected = {
        "S(address -> region)": 2 / 3,
        "S(name -> address)": 1 / 2,
        "P(address -> region)": 3 / 4,
        "P(name -> address)": 1 / 2,
        "g3(address -> region)": 1 / 4,
        "g3(name -> address)": 1 / 2,
    }
    for key, value in expected.items():
        assert measures[key] == pytest.approx(value), key

    rows = [
        [key, f"{expected[key]:.4f}", f"{measures[key]:.4f}", "match"]
        for key in expected
    ]
    write_artifact(
        "table5_measures",
        "Table 5 / Section 2 — statistical measures on r5\n\n"
        + format_rows(["measure", "paper", "measured", "verdict"], rows),
    )


def test_table5_conditional_and_mvd(benchmark, r5):
    cfd1 = CFD(["region", "name"], "address", {"region": "Jackson"})
    ecfd1 = ECFD(["rate", "name"], "address", {"rate": ("<=", 200)})
    nud1 = NUD("address", "region", 2)
    mvd1 = MVD(["address", "rate"], "region")

    def check_all():
        return (
            cfd1.holds(r5),
            ecfd1.holds(r5),
            nud1.holds(r5),
            nud1.max_fanout(r5),
            mvd1.holds(r5),
        )

    cfd_ok, ecfd_ok, nud_ok, fanout, mvd_ok = benchmark(check_all)
    assert cfd_ok and ecfd_ok and nud_ok and mvd_ok
    assert fanout == 2

    rows = [
        [str(cfd1), "holds", str(cfd_ok)],
        [str(ecfd1), "holds", str(ecfd_ok)],
        [f"{nud1} (max fanout {fanout})", "holds", str(nud_ok)],
        [str(mvd1), "holds", str(mvd_ok)],
    ]
    write_artifact(
        "table5_conditional",
        "Table 5 — conditional/tuple-generating rules on r5\n\n"
        + format_rows(["rule", "paper", "measured"], rows),
    )
