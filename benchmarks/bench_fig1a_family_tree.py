"""Fig. 1A: the family tree of extensions, empirically verified.

Regenerates the tree rendering and verifies every arrow's semantic
claim on random relations; benchmarks one full verification sweep.
"""

from repro import (
    CFD,
    DD,
    ECFD,
    FD,
    MD,
    MFD,
    MVD,
    NED,
    OD,
    OFD,
    SD,
    DEFAULT_TREE,
    verify_edge,
)
from repro.datasets import random_relation
from _harness import write_artifact

SAMPLES = {
    "FD": FD(("A0", "A1"), ("A2",)),
    "CFD": CFD(("A0", "A1"), ("A2",), {"A0": 1}),
    "MVD": MVD(("A0",), ("A1",)),
    "MFD": MFD(("A0",), ("A1",), 1.0),
    "NED": NED({"A0": 1}, {"A1": 2}),
    "DD": DD({"A0": 1}, {"A1": 2}),
    "MD": MD({"A0": 1.0}, "A1"),
    "OFD": OFD(("A0",), ("A1",)),
    "OD": OD([("A0", "<=")], [("A1", ">=")]),
    "eCFD": ECFD(("A0", "A1"), ("A2",), {"A0": ("<=", 2)}),
    "SD": SD("A0", "A1", (0, None)),
}
NUMERICAL = {"MFD", "NED", "DD", "MD", "OFD", "OD", "eCFD", "SD"}


def _verify_all():
    results = []
    for edge in DEFAULT_TREE.edges:
        numerical = edge.source in NUMERICAL
        relations = [
            random_relation(
                n, 4, 5 if numerical else 3, seed=s, numerical=numerical
            )
            for s in range(4)
            for n in (5, 8)
        ]
        results.append(verify_edge(edge, SAMPLES[edge.source], relations))
    return results


def test_fig1a_all_edges_verify(benchmark):
    results = benchmark(_verify_all)
    assert all(r.passed for r in results)
    assert len(results) == 24
    assert DEFAULT_TREE.is_dag()
    assert DEFAULT_TREE.roots() == ["FD", "OFD"]

    lines = [DEFAULT_TREE.to_text(), "", "verification (random relations):"]
    for r in results:
        rel = "equivalence" if r.edge.equivalence else "implication"
        lines.append(
            f"  {r.edge.source:>5} -> {r.edge.target:<5} "
            f"{rel:12} {r.agreements}/{r.checked} OK"
        )
    write_artifact("fig1a_family_tree", "\n".join(lines))
