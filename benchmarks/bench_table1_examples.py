"""Table 1 / Section 1: fd1 on the hotel relation r1.

Regenerates the paper's motivating example — which pairs fd1 flags,
which it misses — and benchmarks FD violation detection.
"""

from repro import FD, hotel_r1
from _harness import write_artifact


def test_table1_fd1_story(benchmark):
    r1 = hotel_r1()
    fd1 = FD("address", "region")

    violations = benchmark(lambda: fd1.violations(r1))

    pairs = {v.tuples for v in violations}
    # The paper's claims (0-based indices: t1 = 0):
    assert (2, 3) in pairs, "true error (t3, t4) detected"
    assert (4, 5) in pairs, "format variety (t5, t6) falsely flagged"
    assert not any({6, 7} & set(p) for p in pairs), "(t7, t8) missed"

    lines = [
        "Table 1 / Section 1.1-1.2 — fd1: address -> region on r1",
        "",
        r1.to_text(),
        "",
        "violations (1-based, as in the paper):",
    ]
    for v in violations:
        lines.append(
            f"  (t{v.tuples[0] + 1}, t{v.tuples[1] + 1}) — {v.reason}"
        )
    lines += [
        "",
        "paper narrative reproduced:",
        "  (t3, t4): true violation detected       [OK]",
        "  (t5, t6): variety false positive        [OK — motivates Sec. 3]",
        "  (t7, t8): true violation missed by fd1  [OK — motivates Sec. 3]",
    ]
    write_artifact("table1_fd1", "\n".join(lines))
