"""Section 3.4.4: CD-accelerated dataspace querying, measured.

"According to the comparable dependency, if LHS attributes of the
query tuple and a data tuple are found comparable, then the data tuple
can be returned without evaluating on RHS attributes.  It thus
improves the query efficiency."  The bench measures exactly that:
identical answers, fewer θ evaluations.
"""

import pytest

from repro.core import CD, SimilarityFunction
from repro.datasets import dataspace_workload
from repro.quality import cd_accelerated_search, comparable_search
from _harness import format_rows, write_artifact


@pytest.fixture(scope="module")
def dataspace():
    return dataspace_workload(60, seed=0)


@pytest.fixture(scope="module")
def cd(dataspace):
    theta_loc = SimilarityFunction("region", "city", 0, 1, 0)
    theta_addr = SimilarityFunction("addr", "post", 1, 2, 1)
    dep = CD([theta_loc], theta_addr)
    assert dep.holds(dataspace)
    return dep


def test_dataspace_cd_query_speedup(benchmark, dataspace, cd):
    target_region = dataspace.value_at(14, "region")  # entity 7, source 1
    target_addr = dataspace.value_at(14, "addr")
    query = {"region": target_region, "addr": target_addr}

    fast = benchmark(
        lambda: cd_accelerated_search(dataspace, query, cd)
    )
    full = comparable_search(
        dataspace, query, [cd.lhs[0], cd.rhs]
    )

    # Same answers (both records of entity 7), fewer comparisons.
    assert set(fast.indices) == set(full.indices)
    assert len(fast.indices) == 2
    assert fast.comparisons < full.comparisons

    rows = [
        ["answers (both strategies)", str(sorted(fast.indices))],
        ["θ evaluations, full search", str(full.comparisons)],
        ["θ evaluations, CD-accelerated", str(fast.comparisons)],
        ["saved", f"{1 - fast.comparisons / full.comparisons:.0%}"],
    ]
    write_artifact(
        "dataspace_cd_query",
        "Section 3.4.4 — CD-accelerated dataspace query\n\n"
        + format_rows(["quantity", "value"], rows),
    )
