"""Substrate micro-benchmarks: the primitives everything rests on.

Not a paper figure — performance coverage for the building blocks, so
regressions in the partitions/metrics/indexes show up in the harness.

The ``TestEncodedSpeedup`` block additionally measures the
dictionary-encoded fast path against the naive value-tuple path on
1k-row generator workloads, asserts the ≥3× contract, and writes the
measurements to ``BENCH_substrate.json`` at the repo root.
"""

import json
import time
from pathlib import Path

import pytest

from repro.datasets import fd_workload, random_relation
from repro.discovery.fastfd import _difference_sets_naive, difference_sets
from repro.metrics import levenshtein
from repro.relation import (
    InvertedIndex,
    Relation,
    SortedIndex,
    StrippedPartition,
    substrate_mode,
)


@pytest.fixture(scope="module")
def wide():
    return random_relation(2000, 4, domain_size=50, seed=1)


def test_partition_build(benchmark, wide):
    pi = benchmark(
        lambda: StrippedPartition.from_relation(wide, ["A0"])
    )
    assert pi.n == 2000


def test_partition_product(benchmark, wide):
    pi_0 = StrippedPartition.from_relation(wide, ["A0"])
    pi_1 = StrippedPartition.from_relation(wide, ["A1"])
    product = benchmark(lambda: pi_0.product(pi_1))
    assert product == StrippedPartition.from_relation(wide, ["A0", "A1"])


def test_g3_from_partitions(benchmark, wide):
    pi_x = StrippedPartition.from_relation(wide, ["A0"])
    pi_xy = StrippedPartition.from_relation(wide, ["A0", "A1"])
    err = benchmark(lambda: pi_x.g3_error(pi_xy))
    assert 0.0 <= err <= 1.0


def test_group_by(benchmark, wide):
    groups = benchmark(lambda: wide.group_by(["A0", "A1"]))
    assert sum(len(g) for g in groups.values()) == len(wide)


def test_levenshtein_medium_strings(benchmark):
    a = "No.5, Central Park, New York City"
    b = "#5 Central Park, NYC"
    d = benchmark(lambda: levenshtein(a, b))
    assert d > 0


def test_levenshtein_bounded_early_exit(benchmark):
    a = "a" * 60
    b = "b" * 60
    d = benchmark(lambda: levenshtein(a, b, bound=3))
    assert d == 4  # bound + 1


def test_inverted_index_build_and_lookup(benchmark):
    w = fd_workload(3000, 40, seed=2)

    def build_and_probe():
        idx = InvertedIndex(w.relation, "code")
        return idx.lookup(w.relation.value_at(0, "code"))

    hits = benchmark(build_and_probe)
    assert hits


def test_sorted_index_range_query(benchmark, wide):
    idx = SortedIndex(wide, "A2")
    hits = benchmark(lambda: idx.in_range(10, 30))
    assert all(10 <= wide.value_at(i, "A2") <= 30 for i in hits)


# -- encoded-vs-naive speedup contract ----------------------------------------

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"

#: The acceptance floor: the encoded substrate must beat the naive
#: value-tuple path by at least this factor on the 1k-row workloads.
MIN_SPEEDUP = 3.0


def _best_of(fn, repeat=5, number=10):
    """Minimum per-call time over ``repeat`` batches of ``number`` calls."""
    fn()  # warm caches/encodings out of the measured region
    times = []
    for __ in range(repeat):
        start = time.perf_counter()
        for __ in range(number):
            fn()
        times.append((time.perf_counter() - start) / number)
    return min(times)


def _fresh_workload():
    return fd_workload(1000, 50, seed=7).relation


def _record(results, name, naive_s, encoded_s):
    results[name] = {
        "naive_ms": round(naive_s * 1e3, 4),
        "encoded_ms": round(encoded_s * 1e3, 4),
        "speedup": round(naive_s / encoded_s, 1),
    }


@pytest.fixture(scope="class")
def speedups():
    """Measure every primitive once, then let the tests assert slices."""
    results = {}
    r = _fresh_workload()
    attrs = ["code", "city"]

    with substrate_mode("naive"):
        t_naive = _best_of(lambda: r.group_by(attrs))
        g_naive = r.group_by(attrs)
    with substrate_mode("encoded"):
        t_enc = _best_of(lambda: r.group_by(attrs))
        assert r.group_by(attrs) == g_naive
    _record(results, "group_by", t_naive, t_enc)

    with substrate_mode("naive"):
        t_naive = _best_of(lambda: StrippedPartition.from_relation(r, attrs))
        p_naive = StrippedPartition.from_relation(r, attrs)
    with substrate_mode("encoded"):
        t_enc = _best_of(lambda: StrippedPartition.from_relation(r, attrs))
        assert StrippedPartition.from_relation(r, attrs) == p_naive
    _record(results, "partition_build", t_naive, t_enc)

    with substrate_mode("naive"):
        t_naive = _best_of(lambda: r.distinct_count(attrs), number=20)
    with substrate_mode("encoded"):
        t_enc = _best_of(lambda: r.distinct_count(attrs), number=20)
    _record(results, "distinct_count", t_naive, t_enc)

    # FastFD difference sets are pair-quadratic: one naive timing only.
    w = random_relation(1000, 4, domain_size=8, seed=9)
    start = time.perf_counter()
    d_naive = _difference_sets_naive(w)
    t_naive = time.perf_counter() - start
    with substrate_mode("encoded"):
        t_enc = _best_of(lambda: difference_sets(w), repeat=3, number=1)
        assert difference_sets(w) == d_naive
    _record(results, "difference_sets", t_naive, t_enc)

    BENCH_JSON.write_text(
        json.dumps(
            {
                "workload": "fd_workload(1000, 50) / random_relation(1000, 4)",
                "rows": 1000,
                "min_speedup": MIN_SPEEDUP,
                "results": results,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    return results


class TestEncodedSpeedup:
    """The ≥3× contract of the dictionary-encoded substrate."""

    def test_group_by_speedup(self, speedups):
        assert speedups["group_by"]["speedup"] >= MIN_SPEEDUP

    def test_partition_build_speedup(self, speedups):
        assert speedups["partition_build"]["speedup"] >= MIN_SPEEDUP

    def test_difference_sets_speedup(self, speedups):
        assert speedups["difference_sets"]["speedup"] >= MIN_SPEEDUP

    def test_distinct_count_speedup(self, speedups):
        assert speedups["distinct_count"]["speedup"] >= MIN_SPEEDUP

    def test_trajectory_file_written(self, speedups):
        payload = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        assert payload["min_speedup"] == MIN_SPEEDUP
        assert set(payload["results"]) >= {
            "group_by",
            "partition_build",
            "difference_sets",
            "distinct_count",
        }
