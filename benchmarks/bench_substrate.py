"""Substrate micro-benchmarks: the primitives everything rests on.

Not a paper figure — performance coverage for the building blocks, so
regressions in the partitions/metrics/indexes show up in the harness.
"""

import pytest

from repro.datasets import fd_workload, random_relation
from repro.metrics import levenshtein
from repro.relation import InvertedIndex, SortedIndex, StrippedPartition


@pytest.fixture(scope="module")
def wide():
    return random_relation(2000, 4, domain_size=50, seed=1)


def test_partition_build(benchmark, wide):
    pi = benchmark(
        lambda: StrippedPartition.from_relation(wide, ["A0"])
    )
    assert pi.n == 2000


def test_partition_product(benchmark, wide):
    pi_0 = StrippedPartition.from_relation(wide, ["A0"])
    pi_1 = StrippedPartition.from_relation(wide, ["A1"])
    product = benchmark(lambda: pi_0.product(pi_1))
    assert product == StrippedPartition.from_relation(wide, ["A0", "A1"])


def test_g3_from_partitions(benchmark, wide):
    pi_x = StrippedPartition.from_relation(wide, ["A0"])
    pi_xy = StrippedPartition.from_relation(wide, ["A0", "A1"])
    err = benchmark(lambda: pi_x.g3_error(pi_xy))
    assert 0.0 <= err <= 1.0


def test_group_by(benchmark, wide):
    groups = benchmark(lambda: wide.group_by(["A0", "A1"]))
    assert sum(len(g) for g in groups.values()) == len(wide)


def test_levenshtein_medium_strings(benchmark):
    a = "No.5, Central Park, New York City"
    b = "#5 Central Park, NYC"
    d = benchmark(lambda: levenshtein(a, b))
    assert d > 0


def test_levenshtein_bounded_early_exit(benchmark):
    a = "a" * 60
    b = "b" * 60
    d = benchmark(lambda: levenshtein(a, b, bound=3))
    assert d == 4  # bound + 1


def test_inverted_index_build_and_lookup(benchmark):
    w = fd_workload(3000, 40, seed=2)

    def build_and_probe():
        idx = InvertedIndex(w.relation, "code")
        return idx.lookup(w.relation.value_at(0, "code"))

    hits = benchmark(build_and_probe)
    assert hits


def test_sorted_index_range_query(benchmark, wide):
    idx = SortedIndex(wide, "A2")
    hits = benchmark(lambda: idx.in_range(10, 30))
    assert all(10 <= wide.value_at(i, "A2") <= 30 for i in hits)
