"""Server ingest benchmark: sustained batch throughput over HTTP.

The acceptance workload: one `ReproApp` on an ephemeral port, one
tenant with an FD/AFD rule set over an 8-column schema, and a single
keep-alive client POSTing 100-row insert batches as fast as the server
accepts them.  The contract is **≥100 batches/s sustained** (10k rows/s
through parse → delta → incremental detection → response), measured
end to end including HTTP framing; p50/p99 request latency comes from
the server's own ``repro_request_seconds`` histogram reservoir, so the
benchmark also exercises the observability path it reports through.

Measurements land in ``BENCH_server.json`` at the repo root.
"""

import http.client
import json
import time
from pathlib import Path

import pytest

from repro.server import ReproApp

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_server.json"

#: Acceptance floor: sustained single-client ingest throughput.
MIN_BATCHES_PER_S = 100.0

N_COLS = 8
ROWS_PER_BATCH = 100
N_BATCHES = 150
WARMUP_BATCHES = 10

SCHEMA = [
    {"name": "k", "type": "categorical"},
    {"name": "city", "type": "categorical"},
    {"name": "state", "type": "categorical"},
    {"name": "zip", "type": "categorical"},
    {"name": "price", "type": "numerical"},
    {"name": "tax", "type": "numerical"},
    {"name": "nights", "type": "numerical"},
    {"name": "note", "type": "text"},
]

RULES = {
    "rules": [
        {"kind": "FD", "lhs": ["zip"], "rhs": ["city"]},
        {"kind": "FD", "lhs": ["zip"], "rhs": ["state"]},
        {"kind": "AFD", "lhs": ["city"], "rhs": ["state"],
         "max_error": 0.05},
    ]
}

assert len(SCHEMA) == N_COLS


def _batch(b):
    """One 100-row insert batch with one conflicting zip -> city pair.

    The violating pair gets a zip that is fresh to this batch, so each
    conflict group stays two rows wide: the incremental checker's
    per-group refresh cost stays O(batch) and the stream measures
    steady-state ingest, not an ever-growing pathological group.
    """
    rows = []
    for i in range(ROWS_PER_BATCH):
        k = b * ROWS_PER_BATCH + i
        z = k % 5000
        if i < 2:
            city, state, zip_ = ("Alba", "Bravo")[i], "st-0", f"bad-{b}"
        else:
            city, state, zip_ = f"city-{z}", f"st-{z % 50}", f"z{z}"
        rows.append(
            {
                "k": f"r{k}",
                "city": city,
                "state": state,
                "zip": zip_,
                "price": float(k % 500),
                "tax": float(k % 19),
                "nights": float(k % 7),
                "note": f"note {k}",
            }
        )
    return {"insert": rows}


class _Client:
    def __init__(self, handle):
        self.conn = http.client.HTTPConnection(
            handle.host, handle.port, timeout=60
        )

    def post(self, path, body):
        self.conn.request("POST", path, body=json.dumps(body))
        resp = self.conn.getresponse()
        payload = json.loads(resp.read())
        assert resp.status in (200, 201, 202), payload
        return payload

    def put(self, path, body):
        self.conn.request("PUT", path, body=json.dumps(body))
        resp = self.conn.getresponse()
        payload = json.loads(resp.read())
        assert resp.status == 200, payload
        return payload

    def close(self):
        self.conn.close()


@pytest.fixture(scope="module")
def measurements():
    app = ReproApp()
    handle = app.run_in_thread()
    client = _Client(handle)
    try:
        client.post(
            "/tenants", {"tenant": "bench", "schema": SCHEMA}
        )
        client.put("/tenants/bench/rules", RULES)

        for b in range(WARMUP_BATCHES):
            client.post("/tenants/bench/batches", _batch(b))

        start = time.perf_counter()
        last = None
        for b in range(WARMUP_BATCHES, WARMUP_BATCHES + N_BATCHES):
            last = client.post("/tenants/bench/batches", _batch(b))
        elapsed = time.perf_counter() - start

        route = "/tenants/{tenant}/batches"
        hist = app.request_seconds
        results = {
            "columns": N_COLS,
            "rows_per_batch": ROWS_PER_BATCH,
            "batches": N_BATCHES,
            "warmup_batches": WARMUP_BATCHES,
            "elapsed_s": round(elapsed, 4),
            "batches_per_s": round(N_BATCHES / elapsed, 1),
            "rows_per_s": round(N_BATCHES * ROWS_PER_BATCH / elapsed, 1),
            "latency_p50_ms": round(
                hist.quantile(0.50, route=route) * 1000, 3
            ),
            "latency_p99_ms": round(
                hist.quantile(0.99, route=route) * 1000, 3
            ),
            "requests_observed": hist.count(route=route),
            "final_rows": last["rows"],
            "final_violations": last["total_violations"],
            "all_batches_complete": True,
        }
    finally:
        client.close()
        handle.stop()

    # Sanity: every row of every batch landed, detection really ran.
    assert last["rows"] == (WARMUP_BATCHES + N_BATCHES) * ROWS_PER_BATCH
    assert last["complete"] is True
    assert last["total_violations"] > 0

    BENCH_JSON.write_text(
        json.dumps(
            {
                "workload": f"{N_BATCHES} batches × {ROWS_PER_BATCH} rows "
                f"× {N_COLS} columns over HTTP (single keep-alive client, "
                "FD/FD/AFD rule set)",
                "min_batches_per_s": MIN_BATCHES_PER_S,
                "results": results,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    return results


class TestServerThroughput:
    """The ≥100 batches/s sustained-ingest contract."""

    def test_sustained_batch_rate(self, measurements):
        assert measurements["batches_per_s"] >= MIN_BATCHES_PER_S

    def test_latency_quantiles_reported(self, measurements):
        assert 0 < measurements["latency_p50_ms"]
        assert (
            measurements["latency_p50_ms"]
            <= measurements["latency_p99_ms"]
        )

    def test_trajectory_file_written(self, measurements):
        payload = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        assert payload["min_batches_per_s"] == MIN_BATCHES_PER_S
        assert payload["results"]["rows_per_s"] > 0
