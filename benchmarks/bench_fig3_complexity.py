"""Fig. 3: the discovery-complexity landscape, with live evidence.

Regenerates the complexity classification and demonstrates its
practical consequence on real runs:

* the PTIME problems (MFD verification, SD confidence, CSD tableau DP)
  scale polynomially — measured directly;
* the NP-hard side is navigated by the bounded/greedy algorithms
  (FASTDC with bounded width, greedy CFD tableau), whose cost grows
  with the predicate space, not the data alone.
"""

import time


from repro import FD, MFD, SD
from repro.datasets import ordered_workload, random_relation
from repro.discovery import (
    discover_csd_tableau,
    discover_dcs,
    greedy_tableau,
    sd_confidence,
    verify_mfd,
)
from repro.survey import render_fig3, tractable_problems
from _harness import format_rows, write_artifact


def test_fig3_landscape(benchmark):
    text = benchmark(render_fig3)
    assert "NP-complete" in text and "PTIME" in text
    assert "CSD tableau discovery" in "".join(tractable_problems())
    write_artifact("fig3_complexity", text)


def test_fig3_ptime_mfd_verification(benchmark):
    r = random_relation(300, 3, domain_size=10, seed=1, numerical=True)
    mfd = MFD(("A0",), ("A1",), 3.0)
    benchmark(lambda: verify_mfd(r, mfd))


def test_fig3_ptime_sd_confidence(benchmark):
    w = ordered_workload(300, glitch_rate=0.05, seed=1)
    sd = SD("t", "value", (0, 50))
    benchmark(lambda: sd_confidence(w.relation, sd))


def test_fig3_ptime_csd_tableau(benchmark):
    w = ordered_workload(60, glitch_rate=0.08, seed=3)
    sd = SD("t", "value", (0, 50))
    csd = benchmark(
        lambda: discover_csd_tableau(w.relation, sd, min_confidence=1.0)
    )
    assert csd is not None


def test_fig3_bounded_fastdc(benchmark):
    r = random_relation(30, 3, domain_size=6, seed=2, numerical=True)
    result = benchmark(lambda: discover_dcs(r, max_predicates=2))
    assert all(dc.holds(r) for dc in result)


def test_fig3_greedy_tableau_heuristic(benchmark):
    r = random_relation(60, 3, domain_size=4, seed=3)
    fd = FD(("A0", "A1"), ("A2",))
    tab = benchmark(
        lambda: greedy_tableau(r, fd, support_target=0.5,
                               min_confidence=1.0)
    )
    assert tab.holds(r)


def test_fig3_polynomial_scaling_evidence(benchmark):
    """CSD DP time grows ~quadratically with n, not exponentially.

    Doubling the series should multiply the cost by roughly 4-8x
    (quadratic candidates x linear confidence), far below the
    exponential blowup of the NP-hard tableau problems.
    """
    small = ordered_workload(30, glitch_rate=0.05, seed=5)
    benchmark(
        lambda: discover_csd_tableau(
            small.relation, SD("t", "value", (0, 50)), min_confidence=1.0
        )
    )
    timings = []
    for n in (30, 60, 120):
        w = ordered_workload(n, glitch_rate=0.05, seed=5)
        sd = SD("t", "value", (0, 50))
        start = time.perf_counter()
        discover_csd_tableau(w.relation, sd, min_confidence=1.0)
        timings.append((n, time.perf_counter() - start))
    rows = [[str(n), f"{t * 1000:.1f} ms"] for n, t in timings]
    # Growth factor per doubling stays polynomial (allow generous slack
    # for timer noise: strictly less than x40 per doubling).
    for (n1, t1), (n2, t2) in zip(timings, timings[1:]):
        assert t2 < t1 * 40 + 0.05
    write_artifact(
        "fig3_ptime_scaling",
        "CSD tableau DP — polynomial scaling evidence\n\n"
        + format_rows(["series length", "time"], rows),
    )
