"""Perf-3b: repair quality — the Table 3 "data repairing" row, measured.

On workloads with known clean versions: FD majority repair restores
rule satisfaction and mostly recovers the hidden truth; DC holistic
repair resolves order violations; the matching+repairing interaction
(Section 3.7.4) beats either engine alone on heterogeneous data.
"""


from repro import CFD, DC, FD, MD, pred2
from repro.datasets import fd_workload, ordered_workload
from repro.quality import (
    interactive_clean,
    repair_dcs,
    repair_fds,
    verify_repair,
)
from _harness import format_rows, write_artifact


def test_fd_repair_quality(benchmark):
    w = fd_workload(200, 20, error_rate=0.06, seed=17)
    rules = w.true_fds

    repaired, log = benchmark(lambda: repair_fds(w.relation, rules))

    assert verify_repair(repaired, rules)
    restored = sum(
        1
        for i in w.error_tuples
        if repaired.tuple_at(i) == w.clean.tuple_at(i)
    )
    accuracy = restored / len(w.error_tuples)
    assert accuracy > 0.8

    rows = [
        ["injected errors", str(len(w.error_tuples))],
        ["cell edits", str(log.cost())],
        ["rules hold after", "yes"],
        ["errors restored to truth", f"{restored} ({accuracy:.0%})"],
    ]
    write_artifact(
        "perf3b_fd_repair",
        "Perf-3b — FD majority repair quality\n\n"
        + format_rows(["quantity", "value"], rows),
    )


def test_dc_repair_restores_order(benchmark):
    w = ordered_workload(25, glitch_rate=0.1, seed=3)
    dc = DC([pred2("t", "<"), pred2("value", ">")])  # value must ascend
    assert not dc.holds(w.relation)

    repaired, log = benchmark(lambda: repair_dcs(w.relation, [dc]))
    assert verify_repair(repaired, [dc], ignore_tuples=log.quarantined)

    write_artifact(
        "perf3b_dc_repair",
        "Perf-3b — holistic DC repair on a glitched series\n\n"
        f"glitches injected: {len(w.error_tuples)}\n"
        f"cell edits: {log.cost()}; quarantined: {len(log.quarantined)}\n"
        "order constraint holds after repair: yes",
    )


def test_interaction_beats_single_engines(benchmark):
    """Section 3.7.4's claim: matching and repairing help each other."""
    from repro.relation import Attribute, AttributeType, Relation, Schema

    schema = Schema(
        [
            Attribute("name", AttributeType.TEXT),
            Attribute("address", AttributeType.TEXT),
            Attribute("zip", AttributeType.CATEGORICAL),
            Attribute("city", AttributeType.CATEGORICAL),
        ]
    )
    rel = Relation.from_rows(
        schema,
        [
            ("Grand Hotel", "1 Main St", "10001", "New York"),
            ("Grand Htl", "1 Main St", "99999", "Newark"),
            ("Plaza", "5 Side Ave", "10001", "New York"),
            ("Plazza", "5 Side Ave", "10001", "NYC"),
        ],
    )
    cfds = [CFD("zip", "city")]
    mds = [MD({"address": 0}, "zip")]

    # CFD repair alone cannot fix t2 (wrong zip is self-consistent).
    cfd_only, __ = repair_fds(rel, [FD("zip", "city")])
    assert cfd_only.value_at(1, "zip") == "99999"

    cleaned, trace = benchmark(lambda: interactive_clean(rel, cfds, mds))
    assert FD("address", "zip").holds(cleaned)
    assert CFD("zip", "city").holds(cleaned)
    assert cleaned.value_at(1, "zip") == "10001"
    assert cleaned.value_at(1, "city") == "New York"

    write_artifact(
        "perf3b_interaction",
        "Perf-3b — matching + repairing interaction (Section 3.7.4)\n\n"
        f"rounds: {len(trace.rounds)}; total cell changes: "
        f"{trace.total_changes()}\n"
        "CFD repair alone: wrong zip survives (self-consistent record)\n"
        "interactive clean: zip identified via MD, then city repaired "
        "via CFD — both rules hold.",
    )
