"""Table 7 / Section 4: every numerical-data rule on r7.

Regenerates ofd1, od1, dc1, sd1 (gaps 180/170/160) and sd2, and
benchmarks the order/sequence checks.
"""

import pytest

from repro import CSD, DC, OD, OFD, SD, hotel_r7, pred2
from _harness import format_rows, write_artifact


@pytest.fixture(scope="module")
def r7():
    return hotel_r7()


def test_table7_order_rules(benchmark, r7):
    ofd1 = OFD("subtotal", "taxes")
    od1 = OD([("nights", "<=")], [("avg/night", ">=")])
    dc1 = DC([pred2("subtotal", "<"), pred2("taxes", ">")])

    def check_all():
        return ofd1.holds(r7), od1.holds(r7), dc1.holds(r7)

    results = benchmark(check_all)
    assert all(results)

    rows = [
        ["ofd1: " + str(ofd1), "holds", str(results[0])],
        ["od1: " + str(od1), "holds", str(results[1])],
        ["dc1: " + str(dc1), "holds", str(results[2])],
    ]
    write_artifact(
        "table7_order_rules",
        "Table 7 / Section 4 — order rules on r7\n\n"
        + format_rows(["rule", "paper", "measured"], rows),
    )


def test_table7_sequential_rules(benchmark, r7):
    sd1 = SD("nights", "subtotal", (100, 200))
    sd2 = SD("nights", "avg/night", (None, 0))

    gaps = benchmark(
        lambda: [g for __, __, g in sd1.consecutive_gaps(r7)]
    )
    assert gaps == [180.0, 170.0, 160.0]
    assert sd1.holds(r7) and sd2.holds(r7)

    csd = CSD.from_sd(sd1)
    assert csd.holds(r7)

    write_artifact(
        "table7_sequential",
        "Table 7 / Section 4.4 — sequential rules on r7\n\n"
        f"sd1: {sd1}\n"
        f"  consecutive subtotal gaps: {gaps}  (paper: 180, 170, 160)\n"
        f"  holds? {sd1.holds(r7)}\n"
        f"sd2: {sd2}\n"
        f"  holds? {sd2.holds(r7)}  (od1 rewritten as an SD, Sec. 4.4.2)\n"
        f"csd (full-range tableau): holds? {csd.holds(r7)}",
    )
