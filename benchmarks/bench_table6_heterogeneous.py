"""Table 6 / Section 3: every heterogeneous-data rule on r6.

Regenerates mfd1, ned1, dd1/dd2, cd1 (on the Section 3.4.1 dataspace),
pac1 (confidence 8/11), ffd1's conflict, and md1 — and benchmarks the
pairwise metric checking they share.
"""

import pytest

from repro import (
    CD,
    DD,
    FFD,
    MD,
    MFD,
    NED,
    PAC,
    SimilarityFunction,
    dataspace_person,
    hotel_r6,
)
from repro.metrics import crisp_equal, reciprocal_equal
from _harness import format_rows, write_artifact


@pytest.fixture(scope="module")
def r6():
    return hotel_r6()


def test_table6_metric_rules(benchmark, r6):
    mfd1 = MFD(["name", "region"], "price", 500)
    ned1 = NED({"name": 1, "address": 5}, {"street": 5})
    dd1 = DD({"name": 1, "street": 5}, {"address": 5})
    dd2 = DD({"street": (">=", 10)}, {"address": (">", 5)})
    md1 = MD({"street": 5, "region": 2}, "zip")

    def check_all():
        return (
            mfd1.holds(r6),
            ned1.holds(r6),
            dd1.holds(r6),
            dd2.holds(r6),
            md1.holds(r6),
        )

    results = benchmark(check_all)
    assert all(results)

    rows = [
        ["mfd1: " + str(mfd1), "holds", str(results[0])],
        ["ned1: " + str(ned1), "holds", str(results[1])],
        ["dd1: " + str(dd1), "holds", str(results[2])],
        ["dd2: " + str(dd2), "holds", str(results[3])],
        ["md1: " + str(md1), "holds", str(results[4])],
    ]
    write_artifact(
        "table6_metric_rules",
        "Table 6 / Section 3 — metric rules on r6\n\n"
        + format_rows(["rule", "paper", "measured"], rows),
    )


def test_table6_pac1(benchmark, r6):
    pac1 = PAC({"price": 100}, {"tax": 10}, 0.9)

    close, good = benchmark(lambda: pac1.pair_counts(r6))
    assert (close, good) == (11, 8)
    assert pac1.measure(r6) == pytest.approx(8 / 11)
    assert not pac1.holds(r6)

    write_artifact(
        "table6_pac1",
        "Section 3.5.1 — pac1: price_100 ->^0.9 tax_10 on r6\n\n"
        f"pairs within 100 on price: {close}  (paper: 11)\n"
        f"of those, within 10 on tax: {good}  (paper: 8)\n"
        f"confidence: {good}/{close} = {good / close:.3f}  (paper: 0.727)\n"
        f"pac1 holds at delta=0.9? {pac1.holds(r6)}  (paper: no)",
    )


def test_table6_ffd1_conflict(benchmark, r6):
    ffd1 = FFD(
        ["name", "price"],
        "tax",
        {
            "name": crisp_equal,
            "price": reciprocal_equal(1),
            "tax": reciprocal_equal(10),
        },
    )

    violations = benchmark(lambda: ffd1.violations(r6))
    pairs = {v.tuples for v in violations}
    assert (0, 1) in pairs  # the paper's worked (t1, t2) conflict

    write_artifact(
        "table6_ffd1",
        "Section 3.6.1 — ffd1: name, price ~> tax on r6\n\n"
        f"mu_EQ(299, 300) = {ffd1.mu('price', 299, 300):.3f} (paper: 1/2)\n"
        f"mu_EQ(29, 20)  = {ffd1.mu('tax', 29, 20):.5f} (paper: 1/91)\n"
        f"conflicting pairs (1-based): "
        f"{sorted((a + 1, b + 1) for a, b in pairs)}\n"
        "paper's conflict (t1, t2): reproduced",
    )


def test_section34_cd1_dataspace(benchmark):
    ds = dataspace_person()
    theta1 = SimilarityFunction("region", "city", 5, 5, 5)
    theta2_paper = SimilarityFunction("addr", "post", 7, 9, 5)
    theta2_fixed = SimilarityFunction("addr", "post", 7, 9, 6)
    cd_paper = CD([theta1], theta2_paper)
    cd_fixed = CD([theta1], theta2_fixed)

    holds_fixed = benchmark(lambda: cd_fixed.holds(ds))
    assert holds_fixed
    assert {v.tuples for v in cd_paper.violations(ds)} == {(1, 2)}

    write_artifact(
        "table6_cd1",
        "Section 3.4.1 — cd1 on the person dataspace\n\n"
        "paper thresholds  (post <= 5): violated by (t2, t3) — the\n"
        "  paper hand-counts edit('#7 T Avenue', 'No 7 T Ave') as 5;\n"
        "  standard Levenshtein gives 6 (see EXPERIMENTS.md)\n"
        "adjusted thresholds (post <= 6): cd1 holds — the paper's\n"
        "  intended conclusion, reproduced",
    )
