"""Perf-1: FD discovery scalability — TANE vs FastFD (rows vs columns).

The classic trade-off the two algorithms embody: TANE's cost follows
the attribute-lattice (columns), FastFD's follows tuple pairs (rows).
The sweep regenerates that shape; absolute times are machine-local.
"""

import time

import pytest

from repro.datasets import random_relation
from repro.discovery import fastfd, tane
from _harness import format_rows, write_artifact


@pytest.mark.parametrize("rows", [100, 400])
def test_tane_row_sweep(benchmark, rows):
    r = random_relation(rows, 5, domain_size=6, seed=1)
    result = benchmark(lambda: tane(r))
    assert len(result) >= 0


@pytest.mark.parametrize("cols", [4, 6])
def test_tane_column_sweep(benchmark, cols):
    r = random_relation(120, cols, domain_size=4, seed=2)
    result = benchmark(lambda: tane(r))
    assert len(result) >= 0


@pytest.mark.parametrize("rows", [60, 180])
def test_fastfd_row_sweep(benchmark, rows):
    r = random_relation(rows, 5, domain_size=6, seed=3)
    result = benchmark(lambda: fastfd(r))
    assert len(result) >= 0


def test_row_column_tradeoff_shape(benchmark):
    """TANE degrades with columns, FastFD with rows — the published
    qualitative comparison, reproduced as measured growth factors."""

    def timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    # Benchmark the small fixed-size kernel; the sweep below uses
    # one-shot timers (growth factors, not absolute times).
    benchmark(lambda: tane(random_relation(60, 4, 5, seed=4)))

    # Row scaling at fixed columns.
    t_tane_rows = [
        timed(lambda n=n: tane(random_relation(n, 4, 5, seed=4)))
        for n in (100, 400)
    ]
    t_fastfd_rows = [
        timed(lambda n=n: fastfd(random_relation(n, 4, 5, seed=4)))
        for n in (100, 400)
    ]
    # Column scaling at fixed rows.
    t_tane_cols = [
        timed(lambda c=c: tane(random_relation(80, c, 3, seed=5)))
        for c in (4, 7)
    ]
    t_fastfd_cols = [
        timed(lambda c=c: fastfd(random_relation(80, c, 3, seed=5)))
        for c in (4, 7)
    ]

    fastfd_row_growth = t_fastfd_rows[1] / max(t_fastfd_rows[0], 1e-9)
    tane_row_growth = t_tane_rows[1] / max(t_tane_rows[0], 1e-9)

    rows = [
        ["TANE", "rows 100->400", f"{tane_row_growth:.1f}x"],
        ["FastFD", "rows 60->240 (x4)", f"{fastfd_row_growth:.1f}x"],
        ["TANE", "cols 4->7",
         f"{t_tane_cols[1] / max(t_tane_cols[0], 1e-9):.1f}x"],
        ["FastFD", "cols 4->7",
         f"{t_fastfd_cols[1] / max(t_fastfd_cols[0], 1e-9):.1f}x"],
    ]
    write_artifact(
        "perf1_fd_discovery",
        "Perf-1 — TANE vs FastFD scaling shape\n\n"
        + format_rows(["algorithm", "sweep", "growth"], rows)
        + "\n\nexpected shape: FastFD's row growth exceeds TANE's "
        "(quadratic pairs vs partition passes).",
    )
    # The published qualitative claim: FastFD is the more row-sensitive.
    assert fastfd_row_growth > tane_row_growth


def test_naive_vs_encoded_substrate():
    """Discovery-level effect of the dictionary-encoded substrate.

    One-shot timings of TANE and FastFD under both substrate modes on
    the 1k-row generator workload; FastFD — whose difference-set phase
    is pair-quadratic in the naive path — must clear the same ≥3× floor
    the primitive benchmarks enforce.  TANE's end-to-end win is smaller
    (lattice bookkeeping is mode-independent) and is only reported.
    """
    from repro.datasets import fd_workload
    from repro.relation import substrate_mode

    def timed(fn):
        start = time.perf_counter()
        out = fn()
        return time.perf_counter() - start, out

    r = fd_workload(1000, 50, seed=11).relation
    with substrate_mode("naive"):
        t_tane_naive, fds_naive = timed(lambda: tane(r, max_lhs_size=2))
        t_fastfd_naive, ffd_naive = timed(lambda: fastfd(r))
    # Fresh relation: the naive pass must not pre-warm encoded caches.
    r = fd_workload(1000, 50, seed=11).relation
    with substrate_mode("encoded"):
        t_tane_enc, fds_enc = timed(lambda: tane(r, max_lhs_size=2))
        t_fastfd_enc, ffd_enc = timed(lambda: fastfd(r))

    assert sorted(map(str, fds_naive)) == sorted(map(str, fds_enc))
    assert sorted(map(str, ffd_naive)) == sorted(map(str, ffd_enc))

    tane_speedup = t_tane_naive / max(t_tane_enc, 1e-9)
    fastfd_speedup = t_fastfd_naive / max(t_fastfd_enc, 1e-9)
    rows = [
        ["TANE", f"{t_tane_naive * 1e3:.1f}ms", f"{t_tane_enc * 1e3:.1f}ms",
         f"{tane_speedup:.1f}x"],
        ["FastFD", f"{t_fastfd_naive * 1e3:.1f}ms",
         f"{t_fastfd_enc * 1e3:.1f}ms", f"{fastfd_speedup:.1f}x"],
    ]
    write_artifact(
        "perf1_substrate_modes",
        "Perf-1b — naive vs dictionary-encoded substrate "
        "(fd_workload, 1000 rows)\n\n"
        + format_rows(["algorithm", "naive", "encoded", "speedup"], rows)
        + "\n\nTANE cold-start pays the one-time codebook build; its "
        "partitions compose via the shared cache either way, so the "
        "encoded win shows at larger row counts and on any reuse of "
        "the relation (profiler, detection, repair).",
    )
    assert fastfd_speedup >= 3.0
