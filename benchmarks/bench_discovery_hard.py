"""Perf-2: the hard-discovery side — FASTDC, tableau search, MD search.

Measures how the NP-hard-problem heuristics behave as their real cost
drivers grow: FASTDC with predicate-space size, the greedy CFD tableau
with candidate patterns, MD discovery with threshold-grid size.
"""

import pytest

from repro import FD
from repro.datasets import heterogeneous_workload, random_relation
from repro.discovery import (
    build_predicate_space,
    discover_dcs,
    discover_mds,
    evidence_sets,
    greedy_tableau,
)
from _harness import format_rows, write_artifact


@pytest.mark.parametrize("rows", [20, 40])
def test_fastdc_row_scaling(benchmark, rows):
    r = random_relation(rows, 3, domain_size=6, seed=7, numerical=True)
    result = benchmark(lambda: discover_dcs(r, max_predicates=2))
    assert all(dc.holds(r) for dc in result)


@pytest.mark.parametrize("cols", [2, 4])
def test_fastdc_predicate_space_scaling(benchmark, cols):
    r = random_relation(25, cols, domain_size=6, seed=8, numerical=True)
    space = build_predicate_space(r)
    assert len(space) == 6 * cols
    result = benchmark(lambda: discover_dcs(r, max_predicates=2))
    assert len(result) >= 0


def test_evidence_set_counts(benchmark):
    """Evidence-set dedup is FASTDC's working-set saver: distinct sets
    are far fewer than ordered pairs on low-entropy data."""
    r = random_relation(40, 3, domain_size=3, seed=9, numerical=True)
    space = build_predicate_space(r)
    ev = benchmark(lambda: evidence_sets(r, space))
    pairs = len(r) * (len(r) - 1)
    assert sum(ev.values()) == pairs
    assert len(ev) < pairs
    write_artifact(
        "perf2_evidence_sets",
        "Perf-2 — FASTDC evidence-set compression\n\n"
        + format_rows(
            ["quantity", "value"],
            [
                ["ordered tuple pairs", str(pairs)],
                ["distinct evidence sets", str(len(ev))],
                ["compression", f"{pairs / len(ev):.1f}x"],
            ],
        ),
    )


@pytest.mark.parametrize("constants", [1, 2])
def test_greedy_tableau_scaling(benchmark, constants):
    r = random_relation(60, 3, domain_size=4, seed=10)
    fd = FD(("A0", "A1"), ("A2",))
    tab = benchmark(
        lambda: greedy_tableau(
            r, fd, support_target=0.6, min_confidence=1.0,
            max_constants=constants,
        )
    )
    assert tab.holds(r)


def test_md_discovery(benchmark):
    w = heterogeneous_workload(12, 3, 0.4, 0.0, seed=11)
    result = benchmark(
        lambda: discover_mds(
            w.relation, "city", ["address", "name"],
            min_support=0.001, min_confidence=0.9, max_lhs_attrs=1,
        )
    )
    for md in result:
        assert md.confidence(w.relation) >= 0.9
