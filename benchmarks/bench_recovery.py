"""Recovery benchmark: WAL replay rate, snapshot+tail restart, fsync cost.

Three contracts from the durability layer (results land in
``BENCH_recovery.json`` at the repo root):

* **Replay beats live ingest ≥10x.**  Live ingest pays HTTP framing,
  request parsing, WAL encoding, and response serialization per batch;
  replay reads the already-framed records straight off disk and feeds
  the detector.  The workload is a trickle stream (5-row batches, the
  per-event shape a changefeed consumer actually sees) — recovery must
  sustain at least 10x the end-to-end live row rate, or restarts would
  lag further behind the very traffic that produced the log.
* **Snapshot + tail recovery of a 10^5-row tenant under 5 s.**
  Periodic snapshots bound replay: recovery loads the newest verified
  snapshot and replays only the WAL tail past its ``seq``.
* **fsync=batch costs < 25% vs fsync=off.**  Measured on a bulk
  workload (50-row batches) where the sync cost is actually visible;
  the default grouped-fsync policy must stay below a quarter overhead,
  or durability-by-default is not an honest default.
"""

import http.client
import json
import shutil
import time
from pathlib import Path

import pytest

from repro.server import OverloadConfig, ReproApp

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_recovery.json"

MIN_REPLAY_SPEEDUP = 10.0
MAX_RECOVERY_S = 5.0
MAX_FSYNC_BATCH_OVERHEAD = 0.25

SCHEMA = [
    {"name": "k", "type": "categorical"},
    {"name": "city", "type": "categorical"},
    {"name": "zip", "type": "categorical"},
    {"name": "price", "type": "numerical"},
]
RULES = {"rules": [{"kind": "FD", "lhs": ["zip"], "rhs": ["city"]}]}

#: Trickle workload for the replay contract (HTTP, WAL-only — few
#: enough batches that the default snapshot cadence never fires, so
#: replay covers every batch).
TRICKLE_BATCHES = 800
TRICKLE_ROWS = 5

#: Bulk workload for the fsync-overhead contract.
BULK_BATCHES = 120
BULK_ROWS = 50

#: Snapshot + tail workload (direct ``apply_batch``, 10^5 rows).
BIG_BATCHES = 200
BIG_ROWS = 500
BIG_SNAPSHOT_EVERY = 64


def _rows(b, n):
    """``n`` rows for batch ``b``; the first two conflict on a fresh zip."""
    out = []
    for i in range(n):
        k = b * n + i
        if i < 2:
            city, zip_ = ("Alba", "Bravo")[i], f"bad-{b}"
        else:
            city, zip_ = f"city-{k % 5000}", f"z{k % 5000}"
        out.append(
            {"k": f"r{k}", "city": city, "zip": zip_,
             "price": float(k % 97)}
        )
    return out


def _app(data_dir, fsync, **kw):
    return ReproApp(
        data_dir=data_dir,
        fsync=fsync,
        overload=OverloadConfig(max_inflight_per_tenant=0),
        **kw,
    )


def _live_ingest(data_dir, fsync, batches, rows):
    """End-to-end HTTP ingest; returns (rows/s, final violation total)."""
    app = _app(data_dir, fsync)
    handle = app.run_in_thread()
    conn = http.client.HTTPConnection(handle.host, handle.port, timeout=60)

    def req(method, path, body):
        conn.request(method, path, body=json.dumps(body))
        resp = conn.getresponse()
        payload = json.loads(resp.read())
        assert resp.status in (200, 201), payload
        return payload

    try:
        req("POST", "/tenants", {"tenant": "bench", "schema": SCHEMA})
        req("PUT", "/tenants/bench/rules", RULES)
        last = None
        start = time.perf_counter()
        for b in range(batches):
            last = req(
                "POST",
                "/tenants/bench/batches",
                {"insert": _rows(b, rows)},
            )
        elapsed = time.perf_counter() - start
    finally:
        conn.close()
        handle.stop()
        app.shutdown()
    assert last["rows"] == batches * rows
    return batches * rows / elapsed, last["total_violations"]


def _recover(data_dir):
    """Restart against ``data_dir``; returns (app, wall seconds)."""
    start = time.perf_counter()
    app = _app(data_dir, "off", recover=True)
    return app, time.perf_counter() - start


@pytest.fixture(scope="module")
def measurements(tmp_path_factory):
    root = tmp_path_factory.mktemp("bench_recovery")

    # -- trickle ingest + full-WAL replay of the same tenant ----------
    trickle_dir = root / "trickle"
    live_rate, live_violations = _live_ingest(
        trickle_dir, "off", TRICKLE_BATCHES, TRICKLE_ROWS
    )
    replay_rows = TRICKLE_BATCHES * TRICKLE_ROWS
    replay_s = None
    for _ in range(3):  # replay is idempotent; best-of-3 tames jitter
        app, _ = _recover(trickle_dir)
        report = app.recovery_report
        tenant = app.tenants.get("bench")
        assert report is not None and report.describe()["tenants"] == 1
        assert len(tenant.relation) == replay_rows
        assert len(tenant.detector.violations()) == live_violations
        seconds = max(report.describe()["seconds"], 1e-9)
        replay_s = seconds if replay_s is None else min(replay_s, seconds)
        app.shutdown()
    replay_rate = replay_rows / replay_s

    # -- bulk ingest, fsync=off vs fsync=batch ------------------------
    bulk_off, _ = _live_ingest(
        root / "bulk-off", "off", BULK_BATCHES, BULK_ROWS
    )
    bulk_batch, _ = _live_ingest(
        root / "bulk-batch", "batch", BULK_BATCHES, BULK_ROWS
    )
    fsync_overhead = bulk_off / bulk_batch - 1.0

    # -- snapshot + tail recovery of a 10^5-row tenant ----------------
    big_dir = root / "big"
    from repro.analysis import lint_entries
    from repro.incremental import IncrementalDetector
    from repro.rules_io import parse_rules_with_meta
    from repro.server.state import parse_schema

    seed = _app(big_dir, "off", snapshot_every=BIG_SNAPSHOT_EVERY)
    t = seed.tenants.register("big", parse_schema({"attributes": SCHEMA}))
    seed.durability.log_register(t)
    entries = parse_rules_with_meta(RULES, source="bench")
    lint_entries(entries, schema=t.schema)
    with t.lock:
        seed.durability.log_rules(t, RULES)
        t.rule_entries = list(entries)
        t.rules_payload = RULES
        t.detector = IncrementalDetector(
            [e.dependency for e in entries], t.relation
        )
    for b in range(BIG_BATCHES):
        seed.apply_batch(t, {"insert": _rows(b, BIG_ROWS)})
    big_rows = len(t.detector.relation)
    big_violations = len(t.detector.violations())
    seed.shutdown()
    assert big_rows == BIG_BATCHES * BIG_ROWS == 100_000

    app2, recovery_s = _recover(big_dir)
    t2 = app2.tenants.get("big")
    desc = app2.recovery_report.describe()
    assert len(t2.relation) == big_rows
    assert len(t2.detector.violations()) == big_violations
    # Snapshots really bounded the tail: far fewer batches replayed
    # than ingested.
    assert 0 < desc["batches_replayed"] <= BIG_SNAPSHOT_EVERY
    app2.shutdown()

    results = {
        "live_ingest_rows_per_s": round(live_rate, 1),
        "replay_rows": replay_rows,
        "replay_seconds": round(replay_s, 4),
        "replay_rows_per_s": round(replay_rate, 1),
        "replay_speedup_vs_live": round(replay_rate / live_rate, 2),
        "bulk_rows_per_s_fsync_off": round(bulk_off, 1),
        "bulk_rows_per_s_fsync_batch": round(bulk_batch, 1),
        "fsync_batch_overhead": round(fsync_overhead, 4),
        "snapshot_tail_rows": big_rows,
        "snapshot_tail_batches_replayed": desc["batches_replayed"],
        "snapshot_tail_recovery_s": round(recovery_s, 4),
    }
    BENCH_JSON.write_text(
        json.dumps(
            {
                "workload": (
                    f"trickle: {TRICKLE_BATCHES}x{TRICKLE_ROWS}-row HTTP "
                    f"batches (FD rule); bulk: {BULK_BATCHES}x{BULK_ROWS}; "
                    f"big: {BIG_BATCHES}x{BIG_ROWS}-row batches, snapshot "
                    f"every {BIG_SNAPSHOT_EVERY}"
                ),
                "min_replay_speedup": MIN_REPLAY_SPEEDUP,
                "max_recovery_s": MAX_RECOVERY_S,
                "max_fsync_batch_overhead": MAX_FSYNC_BATCH_OVERHEAD,
                "results": results,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    shutil.rmtree(root, ignore_errors=True)
    return results


class TestRecoveryContracts:
    def test_replay_at_least_10x_live_ingest(self, measurements):
        assert (
            measurements["replay_speedup_vs_live"] >= MIN_REPLAY_SPEEDUP
        )

    def test_big_tenant_recovers_under_5s(self, measurements):
        assert (
            measurements["snapshot_tail_recovery_s"] < MAX_RECOVERY_S
        )

    def test_fsync_batch_overhead_under_25_percent(self, measurements):
        assert (
            measurements["fsync_batch_overhead"]
            < MAX_FSYNC_BATCH_OVERHEAD
        )

    def test_trajectory_file_written(self, measurements):
        payload = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        assert payload["min_replay_speedup"] == MIN_REPLAY_SPEEDUP
        assert payload["results"]["replay_rows_per_s"] > 0
