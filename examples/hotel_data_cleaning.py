#!/usr/bin/env python3
"""Data-cleaning pipeline on a dirty heterogeneous hotel feed.

The survey's central application (Table 3): rule discovery ->
violation detection -> repair -> deduplication, on generated data with
known ground truth so every stage reports its measured quality.

Run:  python examples/hotel_data_cleaning.py
"""

from repro import DD, FD, MD
from repro.datasets import heterogeneous_workload
from repro.discovery import tane
from repro.quality import Deduplicator, Detector, repair_fds, verify_repair


def main() -> None:
    w = heterogeneous_workload(
        n_entities=40,
        records_per_entity=3,
        variant_rate=0.35,
        error_rate=0.08,
        seed=42,
    )
    print(
        f"workload: {len(w.relation)} records, "
        f"{len(w.error_tuples)} injected errors, "
        f"{len(w.variant_tuples)} format variants (not errors)"
    )

    # -- 1. Discover rules from the dirty data itself ------------------
    discovered = tane(w.relation, epsilon=0.25, max_lhs_size=1)
    print(f"\nAFD discovery (g3 <= 0.25): {len(discovered)} rules, e.g.")
    for dep in list(discovered)[:4]:
        print(f"  {dep}")

    # -- 2. Detect with the strict FD vs the metric DD ------------------
    fd = FD("address", "city")
    dd = DD({"address": 0}, {"city": 4})
    for rule, label in ((fd, "strict FD"), (dd, "metric DD")):
        quality = Detector([rule]).score(w.relation, w.error_tuples)
        print(
            f"\n{label}: {rule}\n  detection vs injected errors: {quality}"
        )
    print(
        "-> the DD keeps recall 1.0 but stops flagging format variants,"
        " so precision rises (the paper's Section 1.2 point)."
    )

    # -- 3. Repair the true errors with the FD engine -------------------
    repaired, log = repair_fds(w.relation, [fd])
    print(f"\nFD repair: {log.cost()} cell edits")
    print(f"  all rules hold after repair? {verify_repair(repaired, [fd])}")
    restored = sum(
        1
        for i in w.error_tuples
        if repaired.value_at(i, "city").startswith(
            w.clean.value_at(i, "city")
        )
    )
    print(
        f"  errors restored to the (possibly variant-formatted) truth: "
        f"{restored}/{len(w.error_tuples)}"
    )

    # -- 4. Deduplicate with a matching dependency ------------------------
    md = MD({"address": 0, "name": 7}, "city")
    dedup = Deduplicator([md])
    clusters = dedup.duplicates(repaired)
    quality = dedup.score(repaired, w.duplicate_pairs)
    print(f"\nMD dedup: {md}")
    print(
        f"  {len(clusters)} entity clusters; pair quality: "
        f"precision={quality.precision:.3f} recall={quality.recall:.3f}"
    )

    # -- 5. Enforce identification (the matching operator) ----------------
    identified = dedup.identify(repaired)
    print(
        f"  after identification, FD address -> city holds? "
        f"{FD('address', 'city').holds(identified)}"
    )


if __name__ == "__main__":
    main()
