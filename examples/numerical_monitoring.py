#!/usr/bin/env python3
"""Numerical-data monitoring with ODs, DCs, SDs and speed constraints.

The survey's Section 4 scenario: a stream of measurements whose order
and rate of change encode the integrity semantics — plus the Section
5.3 future-work pilot (SCREEN speed-constraint repair).

Run:  python examples/numerical_monitoring.py
"""

from repro import DC, OD, SD, pred2
from repro.datasets import hotel_r7, ordered_workload
from repro.discovery import discover_csd_tableau, discover_pairwise_ods
from repro.frontier import SpeedConstraint, repair_distance, screen_repair
from repro.quality import Detector, repair_dcs, verify_repair


def main() -> None:
    r7 = hotel_r7()
    print("Table 7 — hotel rates:")
    print(r7.to_text())

    # -- ODs: the pricing policy ------------------------------------
    od1 = OD([("nights", "<=")], [("avg/night", ">=")])
    print(f"\nod1: {od1} — holds? {od1.holds(r7)}")
    print("all pairwise ODs discovered on r7:")
    for dep in discover_pairwise_ods(r7):
        print(f"  {dep}")

    # -- DCs: repair an order violation ---------------------------------
    dc1 = DC([pred2("subtotal", "<"), pred2("taxes", ">")])
    broken = r7.with_value(0, "taxes", 999)
    print(f"\ndc1: {dc1}")
    print(f"  holds on r7? {dc1.holds(r7)}; after corrupting t1? "
          f"{dc1.holds(broken)}")
    repaired, log = repair_dcs(broken, [dc1])
    print(f"  holistic repair: {log.summary()}")
    print(
        f"  dc1 holds after repair? "
        f"{verify_repair(repaired, [dc1], ignore_tuples=log.quarantined)}"
    )

    # -- SDs: the polling monitor (Section 4.4.4) -----------------------
    sd1 = SD("nights", "subtotal", (100, 200))
    print(f"\nsd1: {sd1} — holds? {sd1.holds(r7)}")
    gaps = [g for __, __, g in sd1.consecutive_gaps(r7)]
    print(f"  consecutive subtotal gaps: {gaps}")

    # -- CSDs on a glitched series ------------------------------------------
    w = ordered_workload(80, glitch_rate=0.06, seed=3)
    sd = SD("t", "value", (0, 50))
    quality = Detector([sd]).score(w.relation, w.error_tuples)
    print(
        f"\nglitched series ({len(w.error_tuples)} glitches): "
        f"SD detection {quality}"
    )
    csd = discover_csd_tableau(w.relation, sd, min_confidence=1.0)
    print(f"  CSD tableau (quadratic DP): {csd}")

    # -- speed constraints (Section 5.3 pilot) --------------------------------
    series = [
        (float(w.relation.value_at(i, "t")),
         float(w.relation.value_at(i, "value")))
        for i in range(len(w.relation))
    ]
    sc = SpeedConstraint(0.0, 50.0, window=10)
    repaired_series = screen_repair(series, sc)
    print(
        f"\nSCREEN speed-constraint repair: constraint satisfied after? "
        f"{sc.satisfied(repaired_series)}; total value change "
        f"{repair_distance(series, repaired_series):.1f}"
    )


if __name__ == "__main__":
    main()
