#!/usr/bin/env python3
"""Quickstart: the paper's Section 1 walkthrough in ten minutes.

Declares fd1: address -> region over the hotel relation of Table 1,
shows the veracity/variety gap (true violation caught, format variant
falsely flagged, variant-key error missed), then fixes each gap with
the right member of the family tree — exactly the survey's pitch.

Run:  python examples/quickstart.py
"""

from repro import (
    DD,
    FD,
    MD,
    MFD,
    DEFAULT_TREE,
    hotel_r1,
)


def main() -> None:
    r1 = hotel_r1()
    print("Table 1 — the hotel relation r1:")
    print(r1.to_text())

    # -- 1. The conventional FD and its blind spots -----------------
    fd1 = FD("address", "region")
    print(f"\nfd1: {fd1}")
    print(f"holds on r1? {fd1.holds(r1)}")
    print("violations (0-based tuple indices):")
    for v in fd1.violations(r1):
        print(f"  {v}")
    print(
        "\n-> (t3, t4) is a real error (Boston vs 'Chicago, MA'): good.\n"
        "-> (t5, t6) is only format variety ('Chicago' vs 'Chicago, IL'):"
        " a false positive.\n"
        "-> (t7, t8) is a real error the FD misses (addresses are similar,"
        " not equal)."
    )

    # -- 2. Tolerate variety on the dependent side: MFD ----------------
    mfd = MFD("address", "region", 4)  # edit distance <= 4 on region
    flagged = mfd.violations(r1).tuple_indices()
    print(f"\nmfd: {mfd}")
    print(f"  still flags the real error t3/t4? {bool({2, 3} & flagged)}")
    print(f"  stops flagging the variants t5/t6? {not ({4, 5} & flagged)}")

    # -- 3. Tolerate variety on both sides: DD ------------------------
    dd = DD({"address": 3}, {"region": 4})
    flagged = dd.violations(r1).tuple_indices()
    print(f"\ndd: {dd}")
    print(f"  catches the missed error t7/t8? {bool({6, 7} & flagged)}")

    # -- 4. Matching rules identify duplicates: MD ----------------------
    md = MD({"name": 6, "address": 3}, "region")
    print(f"\nmd: {md}")
    print("  pairs the rule says denote one hotel:")
    for i, j in md.matches(r1):
        print(
            f"    t{i + 1} ({r1.value_at(i, 'name')!r}) ~ "
            f"t{j + 1} ({r1.value_at(j, 'name')!r})"
        )

    # -- 5. The family tree that organizes all of this -----------------
    print("\n" + DEFAULT_TREE.to_text())
    print(
        "\nExpressive power is ordered by the arrows: e.g. DCs subsume "
        f"{', '.join(DEFAULT_TREE.specializations('DC'))}."
    )


if __name__ == "__main__":
    main()
