#!/usr/bin/env python3
"""Explore and *verify* the family tree of extensions (Fig. 1A).

For every arrow of the paper's Fig. 1, rewrite a sample dependency into
the more general formalism via the edge's embedding and empirically
check the claimed relationship (equivalence, or implication for the
FD -> MVD and OD -> SD arrows) on random relations.

Run:  python examples/family_tree_explorer.py
"""

from repro import (
    CFD,
    DD,
    ECFD,
    FD,
    MD,
    MFD,
    MVD,
    NED,
    OD,
    OFD,
    SD,
    DEFAULT_TREE,
    verify_edge,
)
from repro.datasets import random_relation
from repro.survey import render_fig1b, render_fig2, render_fig3

SAMPLES = {
    "FD": FD(("A0", "A1"), ("A2",)),
    "CFD": CFD(("A0", "A1"), ("A2",), {"A0": 1}),
    "MVD": MVD(("A0",), ("A1",)),
    "MFD": MFD(("A0",), ("A1",), 1.0),
    "NED": NED({"A0": 1}, {"A1": 2}),
    "DD": DD({"A0": 1}, {"A1": 2}),
    "MD": MD({"A0": 1.0}, "A1"),
    "OFD": OFD(("A0",), ("A1",)),
    "OD": OD([("A0", "<=")], [("A1", ">=")]),
    "eCFD": ECFD(("A0", "A1"), ("A2",), {"A0": ("<=", 2)}),
    "SD": SD("A0", "A1", (0, None)),
}

NUMERICAL_SOURCES = {"MFD", "NED", "DD", "MD", "OFD", "OD", "eCFD", "SD"}


def main() -> None:
    print(DEFAULT_TREE.to_text())

    print("\nEmpirical verification of every arrow (random relations):")
    for edge in DEFAULT_TREE.edges:
        numerical = edge.source in NUMERICAL_SOURCES
        relations = [
            random_relation(
                n, 4, 5 if numerical else 3, seed=s, numerical=numerical
            )
            for s in range(10)
            for n in (5, 9)
        ]
        result = verify_edge(edge, SAMPLES[edge.source], relations)
        status = "ok" if result.passed else "FAIL"
        rel = "equivalence" if edge.equivalence else "implication"
        print(
            f"  [{status}] {edge.source:>5} -> {edge.target:<5} "
            f"({rel}, {result.agreements}/{result.checked} relations)"
        )

    print("\nQuerying the tree:")
    print(f"  roots (most special): {DEFAULT_TREE.roots()}")
    print(f"  maximal (most expressive): {DEFAULT_TREE.maximal()}")
    print(
        "  chain from FD to DC: "
        + " -> ".join(DEFAULT_TREE.extension_path("FD", "DC"))
    )
    dep = FD("A0", "A1")
    embedded = DEFAULT_TREE.embed_along_path(
        dep, DEFAULT_TREE.extension_path("FD", "DC")
    )
    print(f"  FD {dep} rewritten as a DC: {embedded}")

    print("\n" + render_fig1b())
    print("\n" + render_fig2())
    print("\n" + render_fig3())


if __name__ == "__main__":
    main()
