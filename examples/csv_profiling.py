#!/usr/bin/env python3
"""Profile your own CSV: discovery + checking through the public API.

Writes the paper's Table 1 to a temporary CSV (stand-in for "your
data"), profiles it with the one-call profiler, declares a rule, checks
it, and runs the interactive match+repair cleaner — the downstream-user
workflow, end to end.  The same operations are available on the shell:

    repro profile hotels.csv
    repro check hotels.csv --fd "address->region"
    repro tree

Run:  python examples/csv_profiling.py
"""

import tempfile
from pathlib import Path

from repro import CFD, FD, MD, hotel_r1
from repro.cli import load_relation
from repro.profiler import profile_relation
from repro.quality import interactive_clean
from repro.relation.io import write_csv


def main() -> None:
    # Pretend Table 1 is the user's CSV export.
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "hotels.csv"
        write_csv(hotel_r1(), csv_path)

        # -- load with type auto-detection -------------------------------
        relation = load_relation(str(csv_path))
        print(f"loaded {csv_path.name}: {len(relation)} rows")
        print(
            "detected numerical columns:",
            [a.name for a in relation.schema.numerical_attributes()],
        )

        # -- one-call profiling -----------------------------------------
        report = profile_relation(relation, epsilon=0.3, max_lhs_size=1)
        print("\n" + report.render(max_per_category=5))

        # -- declare and check a business rule ------------------------------
        rule = FD("address", "region")
        print(f"\nchecking declared rule {rule}:")
        violations = rule.violations(relation)
        print(violations.summary())

        # -- clean with matching + repairing interaction ------------------
        mds = [MD({"address": 3, "name": 7}, "region")]
        cfds = [CFD("address", "region")]
        cleaned, trace = interactive_clean(relation, cfds, mds)
        print(
            f"\ninteractive clean: {trace.total_changes()} cell changes "
            f"over {len(trace.rounds)} round(s); converged="
            f"{trace.converged}"
        )
        print(f"rule holds after cleaning? {rule.holds(cleaned)}")
        print("\ncleaned relation:")
        print(cleaned.to_text())


if __name__ == "__main__":
    main()
