#!/usr/bin/env python3
"""Discovery tour: every major algorithm of the survey's column (c).

Runs TANE, FastFD, CORDS, PFD discovery, constant/variable CFD mining,
the greedy CFD tableau, MVD search, MFD threshold discovery, DD and MD
discovery, OD discovery, FASTDC, and the polynomial CSD tableau DP —
each on an appropriate workload, printing what it found and what it
cost.

Run:  python examples/dependency_discovery.py
"""

from repro import FD, SD
from repro.datasets import (
    fd_workload,
    hotel_r5,
    hotel_r6,
    hotel_r7,
    ordered_workload,
)
from repro.discovery import (
    cords,
    discover_constant_cfds,
    discover_csd_tableau,
    discover_dcs,
    discover_dds,
    discover_general_cfds,
    discover_mds,
    discover_mfds,
    discover_mvds_topdown,
    discover_pairwise_ods,
    discover_pfds,
    discover_sds,
    fastfd,
    greedy_tableau,
    tane,
)


def show(title: str, result, limit: int = 5) -> None:
    print(f"\n== {title} ==")
    print(f"   {result.summary()}")
    for dep in list(result)[:limit]:
        print(f"   {dep}")
    if len(result) > limit:
        print(f"   ... and {len(result) - limit} more")


def main() -> None:
    r5, r6, r7 = hotel_r5(), hotel_r6(), hotel_r7()

    # -- exact and approximate FDs -------------------------------------
    show("TANE on r5 (exact minimal FDs)", tane(r5))
    show("FastFD on r5 (same output, difference-set search)", fastfd(r5))
    dirty = fd_workload(200, 20, error_rate=0.05, seed=7)
    show(
        "TANE in AFD mode on a 5%-dirty workload (g3 <= 0.1)",
        tane(dirty.relation, epsilon=0.1, max_lhs_size=1),
    )

    # -- statistical rules --------------------------------------------------
    show(
        "CORDS soft FDs (sampled, strength >= 0.95)",
        cords(dirty.relation, strength_threshold=0.95, sample_size=150),
    )
    show(
        "PFD discovery (probability >= 0.9)",
        discover_pfds(dirty.relation, probability_threshold=0.9,
                      max_lhs_size=1),
    )

    # -- conditional rules ---------------------------------------------------
    show("Constant CFDs on r5 (CFDMiner)", discover_constant_cfds(r5))
    show("General CFDs on r5 (CTANE-lite)", discover_general_cfds(r5))
    tableau = greedy_tableau(
        r5, FD(["region", "name"], "address"), support_target=0.9
    )
    print("\n== Greedy near-optimal CFD tableau (Golab et al.) ==")
    print(f"   {tableau}")
    print(f"   support: {tableau.support(r5):.2f}")

    # -- tuple-generating rules -------------------------------------------
    show("MVD discovery on r5 (top-down)", discover_mvds_topdown(r5))

    # -- metric rules ----------------------------------------------------------
    show("MFDs on r6 (minimal deltas <= 100)", discover_mfds(r6, 100.0))
    show(
        "DDs on r6 (data-driven thresholds)",
        discover_dds(r6, ["name", "street"], ["address"]),
    )
    show(
        "MDs on r6 targeting zip (support/confidence search)",
        discover_mds(r6, "zip", ["street", "region"],
                     min_support=0.01, min_confidence=1.0),
    )

    # -- order rules ------------------------------------------------------
    show("Pairwise ODs on r7", discover_pairwise_ods(r7), limit=8)
    show("FASTDC on r7 (DCs of width <= 2)", discover_dcs(r7, 2), limit=4)
    show("SDs with fitted gap intervals on r7", discover_sds(r7))

    # -- the tractable one: CSD tableau via DP (Fig. 3's PTIME island) --
    glitched = ordered_workload(60, glitch_rate=0.08, seed=3)
    sd = SD("t", "value", (0, 50))
    csd = discover_csd_tableau(glitched.relation, sd, min_confidence=1.0)
    print("\n== CSD tableau discovery (polynomial DP) ==")
    print(f"   base SD: {sd} — holds globally? {sd.holds(glitched.relation)}")
    print(f"   discovered: {csd}")
    print(f"   holds on its tableau? {csd.holds(glitched.relation)}")


if __name__ == "__main__":
    main()
